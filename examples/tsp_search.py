"""Scenario: parallel branch-and-bound search with a shared work pool.

The paper's traveling-salesman benchmark as a standalone application:
the graph, the branch pool, and the incumbent best tour all live in the
shared virtual memory; workers on every processor take branches under a
shared binary lock and prune against the racing incumbent.  Shows the
search anomalies the paper cites: the number of nodes expanded varies
with the schedule, while the optimal answer never does.

Run:  python examples/tsp_search.py
"""

from repro.apps.tsp import TspApp
from repro.metrics.report import ascii_table
from repro.metrics.speedup import run_app

CITIES = 12
SEED = 33


def main() -> None:
    print(f"TSP branch-and-bound: {CITIES} cities, random symmetric weights\n")
    optimal = TspApp(1, ncities=CITIES, seed=SEED).golden()
    rows = []
    base_time = None
    for p in (1, 2, 4, 8):
        r = run_app(lambda q: TspApp(q, ncities=CITIES, seed=SEED), p)
        if base_time is None:
            base_time = r.time_ns
        rows.append(
            [
                p,
                f"{r.time_ns / 1e9:.3f}s",
                f"{base_time / r.time_ns:.2f}",
                r.counters["tsp_nodes_expanded"],
                r.counters["tsp_incumbent_updates"],
                f"{r.result:.2f}",
            ]
        )
    print(
        ascii_table(
            ["procs", "sim time", "speedup", "nodes expanded", "incumbent updates", "best tour"],
            rows,
        )
    )
    print(f"\nexact optimum (Held-Karp): {optimal:.2f} — every row matches it.")
    print("Node counts differ run to run: the search anomalies of [19].")


if __name__ == "__main__":
    main()
