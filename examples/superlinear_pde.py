"""Scenario: the famous super-linear speedup (Figure 4 / Table 1 story).

A 3-D PDE whose data set is bigger than one workstation's physical
memory.  Alone, the machine thrashes its paging disk every iteration;
with even one more workstation, the shared virtual memory spreads the
pages over the combined memories and the disk traffic dies out — so two
machines are *more than twice* as fast.

Run:  python examples/superlinear_pde.py
"""

from repro.api.ivy import Ivy
from repro.apps.pde3d import Pde3dApp
from repro.exps.presets import pde_capacity
from repro.metrics.collect import EpochLog
from repro.metrics.report import ascii_table


def main() -> None:
    factory, config = pde_capacity(full=False)
    sample = factory(1)
    frames = config.memory.frames
    dataset_pages = 3 * ((sample.m**3 * 8 + 1023) // 1024)
    print(
        f"3-D PDE, {sample.m}^3 grid: data set ~{dataset_pages} pages, "
        f"per-node memory {frames} frames\n"
    )

    rows = []
    base_time = None
    for p in (1, 2, 4):
        ivy = Ivy(config.replace(nodes=p))
        log = EpochLog([node.counters for node in ivy.cluster.nodes])
        app = factory(p)
        app.epoch_log = log
        result = ivy.run(app.main)
        app.check(result)
        if base_time is None:
            base_time = ivy.time_ns
        transfers = [
            r + w
            for (_, r), (_, w) in zip(
                log.series("disk_reads"), log.series("disk_writes")
            )
        ][: app.iters]
        rows.append(
            [
                p,
                f"{ivy.time_ns / 1e9:.2f}s",
                f"{base_time / ivy.time_ns:.2f}",
                " ".join(str(t) for t in transfers),
            ]
        )
    print(
        ascii_table(
            ["procs", "sim time", "speedup", "disk transfers per iteration"], rows
        )
    )
    print(
        "\nSpeedup above p is the paper's point: the combined physical memories"
        "\neliminate the paging a single node cannot avoid."
    )


if __name__ == "__main__":
    main()
