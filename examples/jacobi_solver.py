"""Scenario: solving a dense linear system across a workstation cluster.

The paper's first benchmark, end to end: a diagonally dominant system
``Ax = b`` solved by parallel Jacobi iteration, with the rows of ``A``
partitioned over one lightweight process per workstation and iterations
synchronised by an eventcount barrier.  Prints the speedup curve and
the coherence traffic behind it.

Run:  python examples/jacobi_solver.py
"""

import numpy as np

from repro.apps.jacobi import JacobiApp
from repro.metrics.report import ascii_table
from repro.metrics.speedup import measure_speedups

N = 256
ITERS = 12


def main() -> None:
    print(f"Jacobi solver: {N}x{N} dense system, {ITERS} iterations\n")
    result = measure_speedups(
        lambda p: JacobiApp(p, n=N, iters=ITERS), procs=(1, 2, 4, 8)
    )
    rows = []
    for run in result.runs:
        rows.append(
            [
                run.nprocs,
                f"{run.time_ns / 1e9:.3f}s",
                f"{result.speedup(run.nprocs):.2f}",
                run.counters["read_faults"],
                run.counters["write_faults"],
                run.counters["invalidations_sent"],
            ]
        )
    print(
        ascii_table(
            ["procs", "sim time", "speedup", "read faults", "write faults", "invalidations"],
            rows,
        )
    )
    # Prove the answer is right: residual of the parallel solution.
    app = JacobiApp(1, n=N, iters=ITERS)
    x = result.runs[-1].result
    residual = float(np.linalg.norm(app.A @ x - app.b))
    print(f"\n||Ax - b|| after {ITERS} iterations (8-proc run): {residual:.3e}")
    print("(each run's solution vector is checked against the sequential golden)")


if __name__ == "__main__":
    main()
