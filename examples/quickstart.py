"""Quickstart: a parallel sum over IVY's shared virtual memory.

Boots a four-workstation cluster, puts a vector in the shared address
space, spawns one lightweight process per processor to sum a slice
(each writes its partial into a shared slot), and synchronises with an
eventcount — the complete IVY programming model in ~40 lines of
application code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, Ivy
from repro.sync.eventcount import EC_RECORD_BYTES

N = 40_000
NODES = 4


def worker(ctx, vec_addr, out_addr, k, lo, hi, done_ec):
    """Sum my slice; pages fault over from node 0 on first touch."""
    values = yield from ctx.mem.fetch_array(vec_addr + 8 * lo, np.float64, hi - lo)
    yield ctx.flops(hi - lo)
    yield from ctx.write_f64(out_addr + 8 * k, float(values.sum()))
    yield from ctx.ec_advance(done_ec)


def main(ctx):
    # Shared allocations: the vector, the partial-sum slots, an eventcount.
    vec_addr = yield from ctx.malloc(8 * N)
    out_addr = yield from ctx.malloc(8 * NODES)
    done_ec = yield from ctx.malloc(EC_RECORD_BYTES)
    yield from ctx.ec_init(done_ec)

    data = np.linspace(0.0, 1.0, N)
    yield from ctx.write_array(vec_addr, data)

    chunk = N // NODES
    for k in range(NODES):
        lo, hi = k * chunk, (k + 1) * chunk if k < NODES - 1 else N
        yield from ctx.spawn(worker, vec_addr, out_addr, k, lo, hi, done_ec, on=k)

    yield from ctx.ec_wait(done_ec, NODES)  # Wait(ec, value): block till all done
    partials = yield from ctx.read_array(out_addr, np.float64, NODES)
    return float(partials.sum()), data.sum()


if __name__ == "__main__":
    ivy = Ivy(ClusterConfig(nodes=NODES))
    (parallel, sequential) = ivy.run(main)
    total = ivy.cluster.total_counters()
    print(f"parallel sum        : {parallel:.6f}")
    print(f"numpy (golden)      : {sequential:.6f}")
    print(f"match               : {abs(parallel - sequential) < 1e-9}")
    print(f"simulated time      : {ivy.time_ns / 1e6:.2f} ms")
    print(f"page faults serviced: {total['read_faults']} reads, {total['write_faults']} writes")
    print(f"ring messages       : {ivy.cluster.ring.stats.messages}")
