"""Scenario: process migration and passive load balancing.

Demonstrates the part of IVY the paper calls "quite a gain": processes
migrate between workstations with nothing but a PCB transfer and stack
page-ownership handoff, because everything they touch lives in the one
shared address space.

Part 1 — manual migration: a process walks the whole ring, carrying a
counter it keeps in shared memory (every access transparently resolves
against whichever node it currently runs on).

Part 2 — passive balancing: a burst of jobs born on node 0; idle nodes
announce themselves, pull work, and the burst finishes ~Nx faster.

Run:  python examples/migration_demo.py
"""

from repro import ClusterConfig, Ivy
from repro.sync.eventcount import EC_RECORD_BYTES

NODES = 4


def walking_process(ctx, counter_addr, done_ec):
    ctx.set_migratable(True)
    visited = []
    for hop in range(ctx.nnodes):
        target = (ctx.node_id + 1) % ctx.nnodes
        yield from ctx.migrate_to(target)
        visited.append(ctx.node_id)
        value = yield from ctx.read_i64(counter_addr)
        yield from ctx.write_i64(counter_addr, value + 1)
    print(f"  walker visited processors: {visited}")
    yield from ctx.ec_advance(done_ec)


def part1(ctx):
    counter = yield from ctx.malloc(8)
    yield from ctx.write_i64(counter, 0)
    done = yield from ctx.malloc(EC_RECORD_BYTES)
    yield from ctx.ec_init(done)
    yield from ctx.spawn(walking_process, counter, done)
    yield from ctx.ec_wait(done, 1)
    count = yield from ctx.read_i64(counter)
    return count


def burst_job(ctx, done_ec):
    for _ in range(12):
        yield ctx.compute(25_000_000)  # 25 ms of work
        yield ctx.yield_cpu()
    yield from ctx.ec_advance(done_ec)


def part2(ctx):
    done = yield from ctx.malloc(EC_RECORD_BYTES)
    yield from ctx.ec_init(done)
    jobs = 3 * ctx.nnodes
    for _ in range(jobs):
        yield from ctx.spawn(burst_job, done)  # all born here, on node 0
    yield from ctx.ec_wait(done, jobs)
    return jobs


def main() -> None:
    print("Part 1 — a process migrates around the ring")
    ivy = Ivy(ClusterConfig(nodes=NODES))
    count = ivy.run(part1)
    moved = sum(n.counters["processes_migrated_out"] for n in ivy.cluster.nodes)
    print(f"  increments observed : {count} (one per hop)")
    print(f"  migrations performed: {moved}")
    print(f"  ownership transfers : "
          f"{sum(n.counters['ownership_transfers'] for n in ivy.cluster.nodes)}"
          " (upper stack pages move without their bytes)\n")

    print("Part 2 — passive load balancing of a burst born on node 0")
    for balancing in (False, True):
        config = ClusterConfig(nodes=NODES).with_sched(
            load_balancing=balancing, null_timeout=50_000_000,
            lower_threshold=1, upper_threshold=2,
        )
        ivy = Ivy(config)
        jobs = ivy.run(part2)
        migrations = sum(
            n.counters["processes_migrated_out"] for n in ivy.cluster.nodes
        )
        label = "balancing on " if balancing else "balancing off"
        print(
            f"  {label}: {jobs} jobs in {ivy.time_ns / 1e9:.3f}s"
            f" ({migrations} migrations)"
        )


if __name__ == "__main__":
    main()
