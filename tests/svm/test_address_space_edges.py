"""Edge-case tests for the shared address space API."""

import numpy as np
import pytest

from tests.svm.conftest import base, make_cluster, run_task


def test_zero_length_operations_are_noops():
    cluster = make_cluster(nodes=2)
    addr = base(cluster)

    def job():
        out = yield from cluster.node(0).mem.read_bytes(addr, 0)
        yield from cluster.node(0).mem.write_bytes(addr, b"")
        arr = yield from cluster.node(0).mem.read_array(addr, np.float64, 0)
        return len(out), len(arr)

    assert run_task(cluster, job(), "zero") == (0, 0)


def test_scalar_straddling_a_page_boundary():
    cluster = make_cluster(nodes=2, page_size=256)
    addr = base(cluster) + 252  # 4 bytes in page 0, 4 in page 1

    def writer():
        yield from cluster.node(0).mem.write_f64(addr, 3.5)

    def reader():
        v = yield from cluster.node(1).mem.read_f64(addr)
        return v

    run_task(cluster, writer(), "w")
    assert run_task(cluster, reader(), "r") == 3.5
    # Both pages moved.
    assert cluster.node(1).counters["read_faults"] == 2


def test_out_of_range_access_rejected():
    cluster = make_cluster(nodes=1)
    mem = cluster.node(0).mem
    end = cluster.config.svm.shared_base + cluster.config.svm.shared_size

    def bad_read():
        yield from mem.read_bytes(end - 4, 8)

    with pytest.raises(Exception, match="outside shared space"):
        run_task(cluster, bad_read(), "bad")

    def below_base():
        yield from mem.read_i64(cluster.config.svm.shared_base - 8)

    with pytest.raises(Exception, match="outside shared space"):
        run_task(cluster, below_base(), "bad2")


def test_atomic_update_rejects_multi_page_ranges():
    cluster = make_cluster(nodes=1, page_size=256)
    mem = cluster.node(0).mem
    addr = base(cluster) + 250

    def job():
        yield from mem.atomic_update(addr, 16, lambda v: None)

    with pytest.raises(Exception, match="spans"):
        run_task(cluster, job(), "atomic")


def test_write_bytes_accepts_bytes_bytearray_and_arrays():
    cluster = make_cluster(nodes=1)
    mem = cluster.node(0).mem
    addr = base(cluster)

    def job():
        yield from mem.write_bytes(addr, b"\x01\x02\x03")
        yield from mem.write_bytes(addr + 3, bytearray([4, 5]))
        yield from mem.write_bytes(addr + 5, np.array([6, 7], dtype=np.uint8))
        out = yield from mem.read_bytes(addr, 7)
        return out.tolist()

    assert run_task(cluster, job(), "kinds") == [1, 2, 3, 4, 5, 6, 7]


def test_typed_roundtrip_for_various_dtypes():
    cluster = make_cluster(nodes=2)
    addr = base(cluster)
    cases = [
        np.arange(10, dtype=np.int32),
        np.arange(5, dtype=np.float32) * 1.5,
        np.array([2**62, -(2**62)], dtype=np.int64),
        np.arange(7, dtype=np.uint16),
    ]

    def job():
        offset = 0
        results = []
        for arr in cases:
            yield from cluster.node(0).mem.write_array(addr + offset, arr)
            got = yield from cluster.node(1).mem.read_array(
                addr + offset, arr.dtype, len(arr)
            )
            results.append(np.array_equal(got, arr))
            offset += arr.nbytes + 16
        return results

    assert all(run_task(cluster, job(), "dtypes"))


def test_app_level_determinism():
    """Two identical full-stack runs produce bit-identical simulated
    times and counters (the repository's determinism contract)."""
    from repro.apps.jacobi import JacobiApp
    from repro.metrics.speedup import run_app

    runs = [run_app(lambda p: JacobiApp(p, n=64, iters=3), 3) for _ in range(2)]
    assert runs[0].time_ns == runs[1].time_ns
    assert runs[0].counters.snapshot() == runs[1].counters.snapshot()
    assert runs[0].ring_stats == runs[1].ring_stats
