"""Tests for the protocol extensions: broadcast owner location, the
dynamic manager's periodic hint broadcast, and data-less ownership
transfer (chown, the migration substrate)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, MILLISECOND
from repro.api.cluster import Cluster
from repro.machine.mmu import Access

from tests.svm.conftest import base, make_cluster, run_task


def test_broadcast_manager_finds_owner_with_one_broadcast():
    cluster = make_cluster(nodes=4, algorithm="broadcast")
    addr = base(cluster)

    def write(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)

    def read(node):
        v = yield from cluster.node(node).mem.read_i64(addr)
        return v

    run_task(cluster, write(1, 77), "w1")
    bcasts_before = cluster.ring.stats.broadcasts
    assert run_task(cluster, read(3), "r3") == 77
    # One location broadcast, answered only by the owner.
    assert cluster.ring.stats.broadcasts == bcasts_before + 1
    replies = sum(t.stats.replies_sent for t in
                  [cluster.node(n).transport for n in range(4)])
    cluster.check_coherence_invariants()


def test_broadcast_manager_never_forwards():
    cluster = make_cluster(nodes=4, algorithm="broadcast")
    addr = base(cluster)

    def churn():
        for node, value in [(1, 1), (2, 2), (3, 3), (0, 4), (2, 5)]:
            yield from cluster.node(node).mem.write_i64(addr, value)

    run_task(cluster, churn(), "churn")
    total = sum(cluster.node(n).counters["faults_forwarded"] for n in range(4))
    assert total == 0
    cluster.check_coherence_invariants()


def test_broadcast_fault_survives_ownership_handoff_window():
    """Two concurrent write faults: one lands while ownership is mid-
    transfer, gets silence from everyone, and must recover by
    retransmission (NO_REPLY answers are not cached as final)."""
    config = (
        ClusterConfig(nodes=3)
        .with_svm(algorithm="broadcast", page_size=256, shared_size=256 * 1024)
        .replace(retransmit_timeout=5 * MILLISECOND)
    )
    cluster = Cluster(config)
    addr = config.svm.shared_base

    def writer(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)

    cluster.spawn_system(writer(1, 11), "w1")
    cluster.spawn_system(writer(2, 22), "w2")
    cluster.run()

    def read():
        v = yield from cluster.node(0).mem.read_i64(addr)
        return v

    assert run_task(cluster, read(), "r") in (11, 22)
    cluster.check_coherence_invariants()


def test_dynamic_hint_broadcast_refreshes_stale_chains():
    cluster = make_cluster(nodes=4, algorithm="dynamic")
    # Enable the refinement: broadcast on every transfer (period 1).
    for node in cluster.nodes:
        node.protocol.broadcast_period = 1
    addr = base(cluster)
    page = cluster.layout.page_of(addr)

    def write(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)
        # Allow the fire-and-forget hint broadcast to land everywhere.

    for node, value in [(1, 1), (2, 2), (3, 3)]:
        run_task(cluster, write(node, value), f"w{node}")

    # Node 0 heard every refresh: its hint points at the *current* owner
    # even though it never took part in any transfer.
    assert cluster.node(0).table.entry(page).prob_owner == 3
    assert cluster.node(3).counters["hint_broadcasts"] >= 1
    # A fault from node 0 now reaches the owner without any forwarding.
    before = sum(cluster.node(n).counters["faults_forwarded"] for n in range(4))

    def read0():
        v = yield from cluster.node(0).mem.read_i64(addr)
        return v

    assert run_task(cluster, read0(), "r0") == 3
    after = sum(cluster.node(n).counters["faults_forwarded"] for n in range(4))
    assert after == before
    cluster.check_coherence_invariants()


def test_hint_broadcast_off_by_default():
    cluster = make_cluster(nodes=3, algorithm="dynamic")
    addr = base(cluster)

    def write(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)

    for node in (1, 2):
        run_task(cluster, write(node, node), f"w{node}")
    assert all(
        cluster.node(n).counters["hint_broadcasts"] == 0 for n in range(3)
    )


@pytest.mark.parametrize("algorithm", ["centralized", "fixed", "dynamic", "broadcast"])
def test_take_ownership_moves_no_page_bytes(algorithm):
    cluster = make_cluster(nodes=2, algorithm=algorithm)
    addr = base(cluster)
    page = cluster.layout.page_of(addr)

    def init():
        yield from cluster.node(0).mem.write_i64(addr, 99)

    run_task(cluster, init(), "init")
    bytes_before = cluster.ring.stats.bytes_sent

    def chown():
        yield from cluster.node(1).protocol.take_ownership(page)

    run_task(cluster, chown(), "chown")
    moved = cluster.ring.stats.bytes_sent - bytes_before
    page_size = cluster.config.svm.page_size
    assert moved < page_size, f"chown shipped {moved} bytes (a page is {page_size})"
    entry0 = cluster.node(0).table.entry(page)
    entry1 = cluster.node(1).table.entry(page)
    assert entry1.is_owner and entry1.access is Access.WRITE
    assert not entry0.is_owner and entry0.access is Access.NIL
    # Content is declared dead by the caller: reads now see zeros.
    def read1():
        v = yield from cluster.node(1).mem.read_i64(addr)
        return v

    assert run_task(cluster, read1(), "r1") == 0
    cluster.check_coherence_invariants()


def test_xfer_count_travels_with_ownership():
    cluster = make_cluster(nodes=3, algorithm="dynamic")
    addr = base(cluster)
    page = cluster.layout.page_of(addr)

    def write(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)

    for i, node in enumerate([1, 2, 1, 0]):
        run_task(cluster, write(node, i), f"w{i}")
    assert cluster.node(0).table.entry(page).xfer_count == 4
