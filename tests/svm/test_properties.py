"""Property-based coherence stress tests (hypothesis).

Strategy: generate a random little parallel program — per node, a
sequence of reads/writes/atomic-increments over a handful of hot pages —
run it on a small cluster, and check:

1. **No torn data / lost updates**: atomic increments over all nodes sum
   exactly; full-cell writes are observed untorn.
2. **Final-state agreement**: after quiescence every node reads the same
   bytes for every cell, equal to the owner's frame content.
3. **Global invariants**: exactly one owner per page, writable implies
   sole copy, copy sets cover readers (``check_coherence_invariants``).
4. **No deadlock**: the simulator raises if the event queue drains with
   blocked tasks, so a protocol deadlock fails the test (shrinkably)
   instead of hanging.

The same program is replayed under frame pressure (tiny frame pools +
disk paging) and under 15% frame loss (retransmission/dedup paths),
because those are exactly the regimes where protocol races live.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.svm.conftest import base, make_cluster, run_task

PAGE = 256
NCELLS = 6  # one i64 cell per page, in the first NCELLS pages


def cell_addr(cluster, cell):
    return base(cluster) + cell * PAGE


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "incr"]),
        st.integers(min_value=0, max_value=NCELLS - 1),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=12,
)

program_strategy = st.lists(ops_strategy, min_size=2, max_size=4)  # one per node


def bump_cell(view):
    cell = view.view(np.int64)
    cell[0] += 1
    return int(cell[0])


def run_program(cluster, program):
    """Run one op-list per node concurrently; return observations."""
    increments = sum(op[0] == "incr" for ops in program for op in ops)

    def worker(node_id, ops):
        mem = cluster.node(node_id).mem
        for kind, cell, value in ops:
            addr = cell_addr(cluster, cell)
            if kind == "read":
                got = yield from mem.read_i64(addr)
                assert got >= 0  # cells only ever hold non-negative values
            elif kind == "write":
                yield from mem.write_i64(addr, value)
            else:
                yield from mem.atomic_update(addr, 8, bump_cell)

    tasks = [
        cluster.spawn_system(worker(n, ops), f"prog{n}")
        for n, ops in enumerate(program)
    ]
    cluster.run()
    for t in tasks:
        if t.error is not None:
            raise t.error
    return increments


def final_states(cluster, nnodes):
    """Every node's view of every cell after quiescence."""
    views = []
    for node in range(nnodes):
        def reader(node=node):
            out = []
            for cell in range(NCELLS):
                v = yield from cluster.node(node).mem.read_i64(cell_addr(cluster, cell))
                out.append(v)
            return out

        views.append(run_task(cluster, reader(), f"final{node}"))
    return views


def check_everything(cluster, program):
    nnodes = len(program)
    run_program(cluster, program)
    cluster.check_coherence_invariants()
    views = final_states(cluster, nnodes)
    for view in views[1:]:
        assert view == views[0], f"nodes disagree: {views}"
    cluster.check_coherence_invariants()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy, algorithm=st.sampled_from(["centralized", "fixed", "dynamic", "broadcast"]))
def test_random_programs_stay_coherent(program, algorithm):
    cluster = make_cluster(nodes=len(program), algorithm=algorithm, page_size=PAGE)
    check_everything(cluster, program)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy, algorithm=st.sampled_from(["centralized", "fixed", "dynamic", "broadcast"]))
def test_random_programs_under_frame_pressure(program, algorithm):
    cluster = make_cluster(
        nodes=len(program), algorithm=algorithm, page_size=PAGE, frames=2
    )
    check_everything(cluster, program)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program=program_strategy,
    algorithm=st.sampled_from(["centralized", "fixed", "dynamic", "broadcast"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_programs_under_frame_loss(program, algorithm, seed):
    from repro.api.cluster import Cluster
    from repro.config import ClusterConfig, MILLISECOND

    config = (
        ClusterConfig(nodes=len(program), seed=seed)
        .with_svm(algorithm=algorithm, page_size=PAGE, shared_size=PAGE * 4096)
        .with_ring(loss_rate=0.15)
        .replace(retransmit_timeout=20 * MILLISECOND)
    )
    cluster = Cluster(config)
    check_everything(cluster, program)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    counts=st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=4),
    algorithm=st.sampled_from(["centralized", "fixed", "dynamic", "broadcast"]),
)
def test_atomic_increments_never_lose_updates(counts, algorithm):
    cluster = make_cluster(nodes=len(counts), algorithm=algorithm, page_size=PAGE)
    addr = cell_addr(cluster, 0)

    def worker(node_id, times):
        mem = cluster.node(node_id).mem
        for _ in range(times):
            yield from mem.atomic_update(addr, 8, bump_cell)

    for n, times in enumerate(counts):
        cluster.spawn_system(worker(n, times), f"inc{n}")
    cluster.run()

    def read():
        v = yield from cluster.node(0).mem.read_i64(addr)
        return v

    assert run_task(cluster, read(), "sum") == sum(counts)
    cluster.check_coherence_invariants()
