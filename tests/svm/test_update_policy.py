"""Tests for the write-update coherence extension.

Invariant set differs from invalidation: read copies stay alive and are
refreshed on every store, so the checks are (a) no copy is ever stale
after quiescence, (b) values read anywhere equal the last write, and
(c) no invalidations are sent for data pages.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.cluster import Cluster
from repro.config import ClusterConfig
from repro.machine.mmu import Access

from tests.svm.conftest import run_task


def bump_cell(view):
    cell = view.view(np.int64)
    cell[0] += 1
    return int(cell[0])


PAGE = 256


def make_update_cluster(nodes=3, algorithm="dynamic", frames=None):
    config = (
        ClusterConfig(nodes=nodes)
        .with_svm(
            algorithm=algorithm,
            page_size=PAGE,
            shared_size=PAGE * 4096,
            write_policy="update",
        )
        .with_memory(frames=frames)
    )
    return Cluster(config)


def addr_of(cluster, cell=0):
    return cluster.config.svm.shared_base + cell * PAGE


def test_copies_survive_writes_and_stay_fresh():
    cluster = make_update_cluster(nodes=4)
    addr = addr_of(cluster)
    page = cluster.layout.page_of(addr)

    def seq():
        yield from cluster.node(0).mem.write_i64(addr, 1)
        for reader in (1, 2, 3):
            v = yield from cluster.node(reader).mem.read_i64(addr)
            assert v == 1
        # Owner writes again: copies must be refreshed, not destroyed.
        yield from cluster.node(0).mem.write_i64(addr, 2)

    run_task(cluster, seq(), "seq")
    for reader in (1, 2, 3):
        entry = cluster.node(reader).table.entry(page)
        assert entry.access is Access.READ, f"copy at {reader} was invalidated"
        local = cluster.node(reader).memory.data(page)[:8].view(np.int64)[0]
        assert local == 2, f"stale copy at node {reader}"
    assert cluster.node(0).counters["invalidations_sent"] == 0
    assert cluster.node(0).counters["updates_sent"] == 3
    cluster.check_coherence_invariants()


def test_cached_reads_after_update_need_no_messages():
    cluster = make_update_cluster(nodes=2)
    addr = addr_of(cluster)

    def seq():
        yield from cluster.node(0).mem.write_i64(addr, 1)
        yield from cluster.node(1).mem.read_i64(addr)
        yield from cluster.node(0).mem.write_i64(addr, 2)
        before = cluster.ring.stats.messages
        v = yield from cluster.node(1).mem.read_i64(addr)  # hits the copy
        return v, cluster.ring.stats.messages - before

    value, messages = run_task(cluster, seq(), "seq")
    assert value == 2
    assert messages == 0  # the update already delivered the fresh bytes


def test_ownership_transfer_demotes_old_owner_to_reader():
    cluster = make_update_cluster(nodes=3)
    addr = addr_of(cluster)
    page = cluster.layout.page_of(addr)

    def seq():
        yield from cluster.node(0).mem.write_i64(addr, 10)
        yield from cluster.node(1).mem.write_i64(addr, 20)  # takes ownership
        v0 = yield from cluster.node(0).mem.read_i64(addr)
        return v0

    v0 = run_task(cluster, seq(), "seq")
    assert v0 == 20
    entry0 = cluster.node(0).table.entry(page)
    entry1 = cluster.node(1).table.entry(page)
    assert entry1.is_owner
    assert not entry0.is_owner and entry0.access is Access.READ
    assert 0 in entry1.copy_set
    cluster.check_coherence_invariants()


def test_atomic_sections_push_updates():
    cluster = make_update_cluster(nodes=3)
    addr = addr_of(cluster)

    def bump(view):
        cell = view.view(np.int64)
        cell[0] += 1
        return int(cell[0])

    def seq():
        yield from cluster.node(0).mem.write_i64(addr, 0)
        yield from cluster.node(1).mem.read_i64(addr)  # node 1 holds a copy
        yield from cluster.node(0).mem.atomic_update(addr, 8, bump)
        local = cluster.node(1).memory.data(cluster.layout.page_of(addr))
        return int(local[:8].view(np.int64)[0])

    assert run_task(cluster, seq(), "seq") == 1


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "incr"]),
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=10,
        ),
        min_size=2,
        max_size=4,
    ),
    algorithm=st.sampled_from(["centralized", "dynamic"]),
    frames=st.sampled_from([None, 3]),
)
def test_random_programs_stay_coherent_under_update_policy(program, algorithm, frames):
    cluster = make_update_cluster(nodes=len(program), algorithm=algorithm, frames=frames)

    def worker(node_id, ops):
        mem = cluster.node(node_id).mem
        for kind, cell, value in ops:
            addr = addr_of(cluster, cell)
            if kind == "read":
                yield from mem.read_i64(addr)
            elif kind == "write":
                yield from mem.write_i64(addr, value)
            else:
                yield from mem.atomic_update(addr, 8, bump_cell)

    tasks = [
        cluster.spawn_system(worker(n, ops), f"prog{n}")
        for n, ops in enumerate(program)
    ]
    cluster.run()
    for t in tasks:
        if t.error is not None:
            raise t.error
    # Final agreement: every node reads the same value for every cell.
    views = []
    for n in range(len(program)):
        def reader(n=n):
            out = []
            for cell in range(5):
                v = yield from cluster.node(n).mem.read_i64(addr_of(cluster, cell))
                out.append(v)
            return out

        views.append(run_task(cluster, reader(), f"final{n}"))
    for view in views[1:]:
        assert view == views[0], f"nodes disagree: {views}"
    cluster.check_coherence_invariants()


def test_apps_work_under_update_policy():
    from repro.apps.jacobi import JacobiApp
    from repro.metrics.speedup import run_app

    config = ClusterConfig().with_svm(write_policy="update")
    run_app(lambda p: JacobiApp(p, n=48, iters=3), 3, config=config)
