"""SVM + pager interaction: bounded frames, disk traffic, owner page-outs.

These behaviours are what produce the paper's Figure 4 (super-linear
speedup from aggregated physical memory) and Table 1 (disk transfers).
"""

import numpy as np

from tests.svm.conftest import base, make_cluster, run_task

PAGE = 256


def test_working_set_larger_than_memory_thrashes_disk():
    cluster = make_cluster(nodes=1, algorithm="dynamic", page_size=PAGE, frames=4)
    node = cluster.node(0)
    naddr = base(cluster)

    def job():
        # Touch 12 pages round-robin twice: must page in/out repeatedly.
        for sweep in range(2):
            for p in range(12):
                yield from node.mem.write_i64(naddr + p * PAGE, sweep * 100 + p)

    run_task(cluster, job(), "thrash")
    assert node.counters["disk_writes"] > 0
    assert node.counters["disk_reads"] > 0
    assert node.counters["evictions"] >= 8

    def check():
        values = []
        for p in range(12):
            v = yield from node.mem.read_i64(naddr + p * PAGE)
            values.append(v)
        return values

    assert run_task(cluster, check(), "check") == [100 + p for p in range(12)]


def test_data_spreads_across_cluster_memories():
    """With two nodes, pages migrate to the accessing node and the
    aggregate memory holds the working set without further disk traffic."""
    cluster = make_cluster(nodes=2, algorithm="dynamic", page_size=PAGE, frames=8)
    addr = base(cluster)
    npages = 12

    def init():
        for p in range(npages):
            yield from cluster.node(0).mem.write_i64(addr + p * PAGE, p)

    run_task(cluster, init(), "init")
    # Node 0 alone cannot hold 12 pages: it paged to disk.
    assert cluster.node(0).counters["disk_writes"] > 0

    def consumer():
        total = 0
        for p in range(6, npages):  # node 1 takes *ownership* of half
            v = yield from cluster.node(1).mem.read_i64(addr + p * PAGE)
            yield from cluster.node(1).mem.write_i64(addr + p * PAGE, v)
            total += v
        return total

    assert run_task(cluster, consumer(), "consume") == sum(range(6, npages))

    def steady():
        # Each node re-reads its half: everything is resident, no disk IO.
        for p in range(6):
            yield from cluster.node(0).mem.read_i64(addr + p * PAGE)
        for p in range(6, npages):
            yield from cluster.node(1).mem.read_i64(addr + p * PAGE)

    run_task(cluster, steady(), "warmup")  # faults the stragglers back in
    disk = lambda n: (
        cluster.node(n).counters["disk_reads"] + cluster.node(n).counters["disk_writes"]
    )
    before = disk(0) + disk(1)
    run_task(cluster, steady(), "steady")
    after = disk(0) + disk(1)
    assert after == before, "steady-state reads must not touch the disk"


def test_owner_serves_page_from_disk():
    cluster = make_cluster(nodes=2, algorithm="dynamic", page_size=PAGE, frames=4)
    addr = base(cluster)

    def init():
        for p in range(8):  # overflow node 0's 4 frames
            yield from cluster.node(0).mem.write_i64(addr + p * PAGE, 7000 + p)

    run_task(cluster, init(), "init")

    def remote_read():
        # Page 0 was evicted to node 0's disk; node 1's fault makes the
        # owner page it back in before replying.
        v = yield from cluster.node(1).mem.read_i64(addr)
        return v

    reads_before = cluster.node(0).counters["disk_reads"]
    assert run_task(cluster, remote_read(), "rr") == 7000
    assert cluster.node(0).counters["disk_reads"] == reads_before + 1


def test_read_copy_eviction_is_silent():
    cluster = make_cluster(nodes=2, algorithm="dynamic", page_size=PAGE, frames=4)
    addr = base(cluster)

    def init():
        for p in range(4):
            yield from cluster.node(0).mem.write_i64(addr + p * PAGE, p)

    run_task(cluster, init(), "init")

    def reader():
        # Node 1 reads copies of 4 owned pages, then 4 fresh pages it
        # will own; the copies get dropped without disk traffic.
        for p in range(4):
            yield from cluster.node(1).mem.read_i64(addr + p * PAGE)
        for p in range(4, 8):
            yield from cluster.node(1).mem.write_i64(addr + p * PAGE, p)

    run_task(cluster, reader(), "reader")
    assert cluster.node(1).counters["copy_drops"] > 0
    assert cluster.node(1).counters["disk_writes"] == 0

    def reread():
        v = yield from cluster.node(1).mem.read_i64(addr)
        return v

    assert run_task(cluster, reread(), "reread") == 0


def test_ownership_transfer_discards_stale_disk_image():
    cluster = make_cluster(nodes=2, algorithm="dynamic", page_size=PAGE, frames=4)
    addr = base(cluster)

    def init():
        for p in range(8):
            yield from cluster.node(0).mem.write_i64(addr + p * PAGE, p)

    run_task(cluster, init(), "init")
    assert cluster.node(0).disk.holds(0)

    def take():
        yield from cluster.node(1).mem.write_i64(addr, 999)

    run_task(cluster, take(), "take")
    # Node 0 no longer owns page 0: its disk image must be gone so a
    # stale copy can never resurface.
    assert not cluster.node(0).disk.holds(0)

    def reread():
        v = yield from cluster.node(0).mem.read_i64(addr)
        return v

    assert run_task(cluster, reread(), "rr") == 999
