"""Functional coherence tests across all three manager algorithms.

The data plane is real: every test moves actual bytes between simulated
nodes and checks values, so an incorrect protocol produces wrong data,
not just wrong statistics.
"""

import numpy as np
import pytest

from repro.machine.mmu import Access

from tests.svm.conftest import base, make_cluster, run_task


def test_write_then_remote_read(algorithm):
    cluster = make_cluster(nodes=3, algorithm=algorithm)
    addr = base(cluster)
    payload = np.arange(100, dtype=np.float64)

    def writer():
        yield from cluster.node(1).mem.write_array(addr, payload)

    def reader():
        got = yield from cluster.node(2).mem.read_array(addr, np.float64, 100)
        return got

    run_task(cluster, writer(), "writer")
    got = run_task(cluster, reader(), "reader")
    assert np.array_equal(got, payload)
    cluster.check_coherence_invariants()


def test_read_after_successive_writers(algorithm):
    cluster = make_cluster(nodes=4, algorithm=algorithm)
    addr = base(cluster) + 512

    def write(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)

    def read(node):
        value = yield from cluster.node(node).mem.read_i64(addr)
        return value

    for i, node in enumerate([1, 2, 3, 1, 0, 2]):
        run_task(cluster, write(node, 1000 + i), f"w{i}")
    for node in range(4):
        assert run_task(cluster, read(node), f"r{node}") == 1005
    cluster.check_coherence_invariants()


def test_multiple_read_copies_coexist(algorithm):
    cluster = make_cluster(nodes=4, algorithm=algorithm)
    addr = base(cluster)

    def writer():
        yield from cluster.node(0).mem.write_f64(addr, 3.25)

    run_task(cluster, writer(), "w")

    def reader(node):
        value = yield from cluster.node(node).mem.read_f64(addr)
        return value

    for node in (1, 2, 3):
        assert run_task(cluster, reader(node), f"r{node}") == 3.25
    page = cluster.layout.page_of(addr)
    owner_entry = cluster.node(0).table.entry(page)
    assert owner_entry.is_owner
    assert owner_entry.copy_set == {1, 2, 3}
    assert owner_entry.access is Access.READ  # owner downgraded
    cluster.check_coherence_invariants()


def test_write_invalidates_all_read_copies(algorithm):
    cluster = make_cluster(nodes=4, algorithm=algorithm)
    addr = base(cluster)

    def do(node, fn, *args):
        def gen():
            result = yield from getattr(cluster.node(node).mem, fn)(*args)
            return result

        return run_task(cluster, gen(), f"{fn}@{node}")

    do(0, "write_f64", addr, 1.0)
    for node in (1, 2, 3):
        do(node, "read_f64", addr)
    do(2, "write_f64", addr, 2.0)  # node 2 becomes owner, invalidates others
    page = cluster.layout.page_of(addr)
    for node in (0, 1, 3):
        entry = cluster.node(node).table.entry(page)
        assert entry.access is Access.NIL
        assert not entry.is_owner
        assert entry.prob_owner == 2
    new_owner = cluster.node(2).table.entry(page)
    assert new_owner.is_owner
    assert new_owner.access is Access.WRITE
    assert new_owner.copy_set == set()
    # And the data is correct everywhere afterwards.
    for node in range(4):
        assert do(node, "read_f64", addr) == 2.0
    cluster.check_coherence_invariants()


def test_cross_page_array_roundtrip(algorithm):
    cluster = make_cluster(nodes=2, algorithm=algorithm, page_size=256)
    addr = base(cluster) + 200  # straddles several 256-byte pages
    payload = np.arange(300, dtype=np.float64)  # 2400 bytes, ~10 pages

    def writer():
        yield from cluster.node(0).mem.write_array(addr, payload)

    def reader():
        got = yield from cluster.node(1).mem.read_array(addr, np.float64, 300)
        return got

    run_task(cluster, writer(), "w")
    got = run_task(cluster, reader(), "r")
    assert np.array_equal(got, payload)


def test_interleaved_writers_on_disjoint_pages(algorithm):
    cluster = make_cluster(nodes=4, algorithm=algorithm)
    page_size = cluster.config.svm.page_size

    def worker(node):
        addr = base(cluster) + node * page_size
        yield from cluster.node(node).mem.write_i64(addr, node * 11)
        value = yield from cluster.node(node).mem.read_i64(addr)
        assert value == node * 11

    tasks = [cluster.spawn_system(worker(n), f"w{n}") for n in range(4)]
    cluster.run()
    assert all(t.error is None for t in tasks)
    cluster.check_coherence_invariants()


def test_concurrent_writers_same_page_serialise(algorithm):
    """All nodes increment a shared counter location concurrently via
    atomic updates; the final value must equal the total increments."""
    cluster = make_cluster(nodes=4, algorithm=algorithm)
    addr = base(cluster)

    def bump(view):
        cell = view.view(np.int64)
        value = int(cell[0])
        cell[0] = value + 1
        return value

    def worker(node, times):
        mem = cluster.node(node).mem
        for _ in range(times):
            yield from mem.atomic_update(addr, 8, bump)

    for n in range(4):
        cluster.spawn_system(worker(n, 10), f"inc{n}")
    cluster.run()

    def read():
        value = yield from cluster.node(0).mem.read_i64(addr)
        return value

    assert run_task(cluster, read(), "check") == 40
    cluster.check_coherence_invariants()


def test_concurrent_mixed_readers_and_writers(algorithm):
    """Stress overlapping reads/writes to the same small region; the final
    state must reflect some serial order of full-block writes."""
    cluster = make_cluster(nodes=4, algorithm=algorithm)
    addr = base(cluster)
    count = 16

    def writer(node, rounds):
        mem = cluster.node(node).mem
        for r in range(rounds):
            block = np.full(count, node * 1000 + r, dtype=np.int64)
            yield from mem.write_array(addr, block)

    def reader(node, rounds):
        mem = cluster.node(node).mem
        for _ in range(rounds):
            block = yield from mem.read_array(addr, np.int64, count)
            # Single-page block write is atomic w.r.t. page ownership:
            # a read must never observe a torn block.
            assert len(set(block.tolist())) == 1, f"torn read: {block}"

    for n in (0, 1):
        cluster.spawn_system(writer(n, 8), f"w{n}")
    for n in (2, 3):
        cluster.spawn_system(reader(n, 8), f"r{n}")
    cluster.run()
    cluster.check_coherence_invariants()


def test_single_node_cluster_needs_no_messages(algorithm):
    cluster = make_cluster(nodes=1, algorithm=algorithm)
    addr = base(cluster)

    def job():
        yield from cluster.node(0).mem.write_array(
            addr, np.arange(64, dtype=np.int64)
        )
        got = yield from cluster.node(0).mem.read_array(addr, np.int64, 64)
        return got

    got = run_task(cluster, job(), "solo")
    assert np.array_equal(got, np.arange(64))
    assert cluster.ring.stats.messages == 0


def test_ownership_forwarding_chain_under_dynamic():
    """After a chain of ownership moves, a stale hint still finds the
    owner by chasing probOwner, and hints are updated along the way."""
    cluster = make_cluster(nodes=4, algorithm="dynamic")
    addr = base(cluster)
    page = cluster.layout.page_of(addr)

    def write(node, value):
        yield from cluster.node(node).mem.write_i64(addr, value)

    # Ownership walks 0 -> 1 -> 2 -> 3; node 0 never hears about 2 or 3.
    for node, value in [(1, 11), (2, 22), (3, 33)]:
        run_task(cluster, write(node, value), f"w{node}")

    # Node 0's hint is stale (it points at 1); the fault must chase it.
    def read0():
        value = yield from cluster.node(0).mem.read_i64(addr)
        return value

    assert run_task(cluster, read0(), "r0") == 33
    assert cluster.node(0).table.entry(page).prob_owner == 3
    cluster.check_coherence_invariants()


def test_fixed_manager_distribution():
    cluster = make_cluster(nodes=3, algorithm="fixed")
    proto = cluster.node(0).protocol
    assert [proto.manager_of(p) for p in range(6)] == [0, 1, 2, 0, 1, 2]


def test_faults_counted(algorithm):
    cluster = make_cluster(nodes=2, algorithm=algorithm)
    addr = base(cluster)

    def writer():
        yield from cluster.node(0).mem.write_i64(addr, 5)

    def reader():
        value = yield from cluster.node(1).mem.read_i64(addr)
        return value

    run_task(cluster, writer(), "w")
    run_task(cluster, reader(), "r")
    assert cluster.node(1).counters["read_faults"] == 1
    assert cluster.node(0).counters["page_copies_sent"] == 1

    def writer1():
        yield from cluster.node(1).mem.write_i64(addr, 6)

    run_task(cluster, writer1(), "w1")
    assert cluster.node(1).counters["write_faults"] == 1
