"""Trace-based protocol tests: assert the *message sequences* each
manager algorithm produces for a fault, not just the end state.

These encode Li & Hudak's cost analysis as executable documentation:
how many hops a fault takes under each algorithm, and who talks to whom.
"""

from repro.api.cluster import Cluster
from repro.config import ClusterConfig
from repro.sim.trace import TraceRecorder

from tests.svm.conftest import run_task

PAGE = 256


def traced_cluster(nodes=4, algorithm="dynamic"):
    trace = TraceRecorder()
    config = ClusterConfig(nodes=nodes).with_svm(
        algorithm=algorithm, page_size=PAGE, shared_size=PAGE * 1024
    )
    return Cluster(config, trace=trace), trace


def addr(cluster):
    return cluster.config.svm.shared_base


def prime_owner(cluster, node, value=1):
    """Give `node` ownership of page 0 with real content."""

    def w():
        yield from cluster.node(node).mem.write_i64(addr(cluster), value)

    run_task(cluster, w(), f"prime{node}")


def test_centralized_read_fault_is_request_forward_reply():
    cluster, trace = traced_cluster(algorithm="centralized")
    prime_owner(cluster, 1)  # owner 1, manager 0
    trace.events.clear()

    def r():
        v = yield from cluster.node(2).mem.read_i64(addr(cluster))
        return v

    assert run_task(cluster, r(), "r") == 1
    # Faulting node 2 asks manager 0; manager forwards to owner 1.
    requests = trace.select("remoteop.request", op="svm.read")
    assert [(e["src"], e["dst"]) for e in requests] == [(2, 0)]
    forwards = trace.select("remoteop.forward", op="svm.read")
    assert [(e["node"], e["dst"]) for e in forwards] == [(0, 1)]


def test_centralized_fault_when_manager_owns_needs_no_forward():
    cluster, trace = traced_cluster(algorithm="centralized")
    # Page is owned by the manager (node 0) from initialisation.
    prime_owner(cluster, 0)
    trace.events.clear()

    def r():
        v = yield from cluster.node(3).mem.read_i64(addr(cluster))
        return v

    assert run_task(cluster, r(), "r") == 1
    assert trace.count("remoteop.forward", op="svm.read") == 0


def test_fixed_manager_is_per_page():
    cluster, trace = traced_cluster(algorithm="fixed")
    page1_addr = addr(cluster) + PAGE  # page 1 -> manager H(1) = 1

    def w():
        yield from cluster.node(2).mem.write_i64(page1_addr, 9)

    run_task(cluster, w(), "w")
    requests = trace.select("remoteop.request", op="svm.write")
    # The write fault went to page 1's manager, node 1 (not node 0).
    assert (2, 1) in [(e["src"], e["dst"]) for e in requests]


def test_dynamic_chain_shortens_after_first_chase():
    cluster, trace = traced_cluster(algorithm="dynamic")
    # Ownership walks 0 -> 1 -> 2 -> 3.  Node 1 relinquished to 2 long
    # ago, so its hint is stale ("2"); a read from node 1 must chase
    # 1 -> 2 -> 3.  (Node 0's hint is *fresh* despite never reading: the
    # later transfers' requests were forwarded through it, and
    # forwarding updates the hint — the algorithm learning en passant.)
    for node in (1, 2, 3):
        prime_owner(cluster, node, value=node)
    page = cluster.layout.page_of(addr(cluster))
    assert cluster.node(1).table.entry(page).prob_owner == 2  # stale
    trace.events.clear()

    def first_read():
        v = yield from cluster.node(1).mem.read_i64(addr(cluster))
        return v

    assert run_task(cluster, first_read(), "r1") == 3
    forwards = trace.select("remoteop.forward", op="svm.read")
    assert [(e["node"], e["dst"]) for e in forwards] == [(2, 3)]

    # The chase taught node 1 the true owner: a later re-fault (after
    # its copy is invalidated by a new write) goes direct, no forwards.
    def rewrite():
        yield from cluster.node(3).mem.write_i64(addr(cluster), 7)

    run_task(cluster, rewrite(), "w")
    trace.events.clear()

    def second_read():
        v = yield from cluster.node(1).mem.read_i64(addr(cluster))
        return v

    assert run_task(cluster, second_read(), "r2") == 7
    assert trace.count("remoteop.forward", op="svm.read") == 0


def test_write_fault_invalidates_each_copy_holder_once():
    cluster, trace = traced_cluster(algorithm="dynamic")
    prime_owner(cluster, 0)

    def readers():
        for n in (1, 2):
            yield from cluster.node(n).mem.read_i64(addr(cluster))

    run_task(cluster, readers(), "readers")
    trace.events.clear()

    def writer():
        yield from cluster.node(3).mem.write_i64(addr(cluster), 5)

    run_task(cluster, writer(), "writer")
    invs = trace.select("svm.invalidate")
    assert len(invs) == 1
    assert invs[0]["node"] == 3
    assert tuple(sorted(invs[0]["targets"])) == (1, 2)
    # One ring multicast carried it, not one message per holder.
    assert trace.count("remoteop.multicast", op="svm.inv") == 1


def test_broadcast_algorithm_emits_locate_broadcasts():
    cluster, trace = traced_cluster(algorithm="broadcast")
    prime_owner(cluster, 1)
    trace.events.clear()

    def r():
        v = yield from cluster.node(2).mem.read_i64(addr(cluster))
        return v

    assert run_task(cluster, r(), "r") == 1
    assert trace.count("remoteop.broadcast", op="svm.locate") == 1
    # The transfer itself is point-to-point to the located owner.
    reads = trace.select("remoteop.request", op="svm.read")
    assert [(e["src"], e["dst"]) for e in reads] == [(2, 1)]
    assert trace.count("remoteop.forward") == 0
