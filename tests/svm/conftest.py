"""Fixtures for SVM tests: small clusters under each coherence algorithm."""

import pytest

from repro.api.cluster import Cluster
from repro.config import ClusterConfig

ALGORITHMS = ("centralized", "fixed", "dynamic", "broadcast")


def make_cluster(nodes=3, algorithm="dynamic", page_size=256, frames=None, **extra):
    config = (
        ClusterConfig(nodes=nodes)
        .with_svm(algorithm=algorithm, page_size=page_size, shared_size=page_size * 4096)
        .with_memory(frames=frames)
    )
    for key, value in extra.items():
        config = config.replace(**{key: value})
    return Cluster(config)


@pytest.fixture(params=ALGORITHMS)
def algorithm(request):
    return request.param


def run_task(cluster, gen, name="t"):
    task = cluster.spawn_system(gen, name)
    cluster.run()
    if task.error is not None:
        raise task.error
    return task.result


def base(cluster):
    return cluster.config.svm.shared_base
