"""Unit tests for the cluster-level invariant checker itself — the tool
the rest of the suite trusts must fail loudly on corrupted state."""

import numpy as np
import pytest

from repro.machine.mmu import Access

from tests.svm.conftest import base, make_cluster, run_task


def settled_cluster():
    cluster = make_cluster(nodes=3)
    addr = base(cluster)

    def setup():
        yield from cluster.node(0).mem.write_i64(addr, 1)
        yield from cluster.node(1).mem.read_i64(addr)

    run_task(cluster, setup(), "setup")
    page = cluster.layout.page_of(addr)
    return cluster, page


def test_checker_accepts_settled_state():
    cluster, _ = settled_cluster()
    cluster.check_coherence_invariants()  # must not raise


def test_checker_detects_two_owners():
    cluster, page = settled_cluster()
    cluster.node(2).table.entry(page).is_owner = True
    with pytest.raises(AssertionError, match="owners"):
        cluster.check_coherence_invariants()


def test_checker_detects_no_owner():
    cluster, page = settled_cluster()
    cluster.node(0).table.entry(page).is_owner = False
    with pytest.raises(AssertionError, match="owners"):
        cluster.check_coherence_invariants()


def test_checker_detects_writable_owner_with_copies():
    cluster, page = settled_cluster()
    # Owner 0 currently READ (copy at 1); force WRITE to corrupt.
    cluster.node(0).table.entry(page).access = Access.WRITE
    with pytest.raises(AssertionError, match="writable but copies"):
        cluster.check_coherence_invariants()


def test_checker_detects_reader_missing_from_copy_set():
    cluster, page = settled_cluster()
    cluster.node(0).table.entry(page).copy_set.discard(1)
    with pytest.raises(AssertionError, match="not covered"):
        cluster.check_coherence_invariants()


def test_checker_detects_stale_copy_under_update_policy():
    from repro.api.cluster import Cluster
    from repro.config import ClusterConfig

    config = ClusterConfig(nodes=2).with_svm(
        page_size=256, shared_size=256 * 1024, write_policy="update"
    )
    cluster = Cluster(config)
    addr = config.svm.shared_base

    def setup():
        yield from cluster.node(0).mem.write_i64(addr, 1)
        yield from cluster.node(1).mem.read_i64(addr)

    run_task(cluster, setup(), "setup")
    cluster.check_coherence_invariants()
    # Corrupt the copy's bytes behind the protocol's back.
    page = cluster.layout.page_of(addr)
    cluster.node(1).memory.data(page)[0] ^= 0xFF
    with pytest.raises(AssertionError, match="stale copy"):
        cluster.check_coherence_invariants()


def test_resident_bytes_reports_spread():
    cluster, page = settled_cluster()
    spread = cluster.resident_bytes()
    assert spread[0] > 0 and spread[1] > 0
    assert set(spread) == {0, 1, 2}
