"""Integration tests for the IVY client interface: programs composed of
lightweight processes, shared memory, allocation and synchronisation."""

import numpy as np
import pytest

from repro import ClusterConfig, Ivy
from repro.sync.eventcount import EC_RECORD_BYTES


def make_ivy(nodes=4, **kw):
    config = ClusterConfig(nodes=nodes).with_svm(page_size=1024)
    for key, value in kw.items():
        config = config.replace(**{key: value})
    return Ivy(config)


def test_malloc_write_read_roundtrip():
    ivy = make_ivy(nodes=2)

    def main(ctx):
        addr = yield from ctx.malloc(8 * 100)
        yield from ctx.write_array(addr, np.arange(100, dtype=np.float64))
        out = yield from ctx.read_array(addr, np.float64, 100)
        return out

    out = ivy.run(main)
    assert np.array_equal(out, np.arange(100))
    assert ivy.time_ns > 0


def test_allocations_are_page_aligned_and_disjoint():
    ivy = make_ivy(nodes=2)

    def main(ctx):
        addrs = []
        for size in (1, 1000, 1025, 4096):
            addr = yield from ctx.malloc(size)
            addrs.append(addr)
        return addrs

    addrs = ivy.run(main)
    page = ivy.config.svm.page_size
    assert all(addr % page == 0 for addr in addrs)
    assert len(set(addrs)) == len(addrs)


def test_free_and_reuse():
    ivy = make_ivy(nodes=1)

    def main(ctx):
        a = yield from ctx.malloc(1024)
        yield from ctx.free(a)
        b = yield from ctx.malloc(1024)
        return a, b

    a, b = ivy.run(main)
    assert a == b  # first fit reuses the freed hole


def test_spawn_runs_child_processes_on_named_nodes():
    ivy = make_ivy(nodes=4)

    def child(ctx, slot_addr, value):
        # Record which processor we actually ran on.
        yield from ctx.write_i64(slot_addr, ctx.node_id * 100 + value)

    def main(ctx):
        slots = yield from ctx.malloc(8 * 4)
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)

        def wrapped(cctx, slot, value):
            yield from child(cctx, slot, value)
            yield from cctx.ec_advance(ec)

        for n in range(4):
            yield from ctx.spawn(wrapped, slots + 8 * n, n, on=n)
        yield from ctx.ec_wait(ec, 4)
        out = yield from ctx.read_array(slots, np.int64, 4)
        return out

    out = ivy.run(main)
    assert out.tolist() == [0, 101, 202, 303]


def test_eventcount_wait_before_advance_blocks():
    ivy = make_ivy(nodes=2)

    def advancer(ctx, ec, times):
        for _ in range(times):
            yield ctx.compute(1_000_000)
            yield from ctx.ec_advance(ec)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        yield from ctx.spawn(advancer, ec, 3, on=1)
        value = yield from ctx.ec_wait(ec, 3)
        final = yield from ctx.ec_read(ec)
        return value, final

    value, final = ivy.run(main)
    assert value >= 3
    assert final == 3


def test_eventcount_becomes_local_after_first_use():
    """The paper's locality claim: once the eventcount page migrates to a
    processor, further operations there cause no network traffic."""
    ivy = make_ivy(nodes=2)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        yield from ctx.ec_advance(ec)  # page now owned by node 0
        before = ivy.cluster.ring.stats.messages
        for _ in range(5):
            yield from ctx.ec_advance(ec)
        after = ivy.cluster.ring.stats.messages
        return before, after

    before, after = ivy.run(main)
    assert after == before


def test_shared_lock_mutual_exclusion_across_nodes():
    ivy = make_ivy(nodes=4)

    def worker(ctx, lock, cell, rounds, done_ec):
        for _ in range(rounds):
            yield from ctx.lock_acquire(lock)
            v = yield from ctx.read_i64(cell)
            yield ctx.compute(50_000)  # widen the race window
            yield from ctx.write_i64(cell, v + 1)
            yield from ctx.lock_release(lock)
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        lock = yield from ctx.malloc(1024)
        cell = yield from ctx.malloc(8)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.lock_init(lock)
        yield from ctx.ec_init(done)
        yield from ctx.write_i64(cell, 0)
        for n in range(4):
            yield from ctx.spawn(worker, lock, cell, 5, done, on=n)
        yield from ctx.ec_wait(done, 4)
        total = yield from ctx.read_i64(cell)
        return total

    assert ivy.run(main) == 20


def test_sequencer_issues_unique_tickets():
    ivy = make_ivy(nodes=3)

    def worker(ctx, seq, out_addr, slot, done_ec):
        tickets = []
        for i in range(4):
            t = yield from ctx.seq_ticket(seq)
            tickets.append(t)
        yield from ctx.write_array(
            out_addr + slot * 32, np.array(tickets, dtype=np.int64)
        )
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        seq = yield from ctx.malloc(8)
        out = yield from ctx.malloc(32 * 3)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.seq_init(seq)
        yield from ctx.ec_init(done)
        for n in range(3):
            yield from ctx.spawn(worker, seq, out, n, done, on=n)
        yield from ctx.ec_wait(done, 3)
        tickets = yield from ctx.read_array(out, np.int64, 12)
        return tickets

    tickets = ivy.run(main)
    assert sorted(tickets.tolist()) == list(range(12))


def test_barrier_synchronises_iterations():
    ivy = make_ivy(nodes=3)
    rounds = 4

    def worker(ctx, bar, log_addr, slot, done_ec):
        from repro.sync.barrier import Barrier

        barrier = ctx.barrier(bar, 3)
        for r in range(rounds):
            yield ctx.compute((slot + 1) * 250_000)  # skewed work
            yield from ctx.write_i64(log_addr + (r * 3 + slot) * 8, r)
            yield from barrier.arrive(ctx)
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        bar = yield from ctx.malloc(1024)
        log = yield from ctx.malloc(8 * 3 * rounds)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        barrier = ctx.barrier(bar, 3)
        yield from barrier.init(ctx)
        yield from ctx.ec_init(done)
        for n in range(3):
            yield from ctx.spawn(worker, bar, log, n, done, on=n)
        yield from ctx.ec_wait(done, 3)
        log_out = yield from ctx.read_array(log, np.int64, 3 * rounds)
        return log_out

    log = ivy.run(main)
    # Every round's slots completed before the next round began.
    for r in range(rounds):
        assert log[r * 3 : (r + 1) * 3].tolist() == [r, r, r]


def test_main_process_failure_propagates():
    ivy = make_ivy(nodes=1)

    def main(ctx):
        yield ctx.compute(10)
        raise RuntimeError("app bug")

    with pytest.raises(Exception) as exc_info:
        ivy.run(main)
    assert "app bug" in str(exc_info.value.__cause__)


def test_deterministic_given_seed():
    def program(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)

        def child(cctx, n):
            yield cctx.compute(1000 * n)
            yield from cctx.ec_advance(ec)

        for n in range(3):
            yield from ctx.spawn(child, n, on=n % ctx.nnodes)
        yield from ctx.ec_wait(ec, 3)
        return True

    times = []
    for _ in range(2):
        ivy = make_ivy(nodes=3, seed=77)
        ivy.run(program)
        times.append(ivy.time_ns)
    assert times[0] == times[1]
