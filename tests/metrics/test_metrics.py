"""Unit tests for counters, epoch logs, the speedup harness and reports."""

import pytest

from repro.apps.jacobi import JacobiApp
from repro.metrics.collect import Counters, EpochLog
from repro.metrics.report import ascii_table, format_series, format_speedup_table
from repro.metrics.speedup import SpeedupResult, RunResult, measure_speedups


def test_counters_basic():
    c = Counters()
    c.inc("a")
    c.inc("a", 4)
    assert c["a"] == 5
    assert c["missing"] == 0
    assert c.snapshot() == {"a": 5}


def test_counters_merge():
    a, b = Counters(), Counters()
    a.inc("x", 2)
    b.inc("x", 3)
    b.inc("y")
    merged = Counters.merge([a, b])
    assert merged["x"] == 5 and merged["y"] == 1
    # Merge is a snapshot, not a live view.
    a.inc("x")
    assert merged["x"] == 5


def test_epoch_log_deltas_and_series():
    a, b = Counters(), Counters()
    log = EpochLog([a, b])
    a.inc("disk", 3)
    assert log.mark("e1") == {"disk": 3}
    b.inc("disk", 2)
    a.inc("other", 1)
    assert log.mark("e2") == {"disk": 2, "other": 1}
    assert log.mark("e3") == {}
    assert log.series("disk") == [("e1", 3), ("e2", 2), ("e3", 0)]


def test_ascii_table_alignment():
    out = ascii_table(["name", "v"], [["a", 1], ["long", 22]], title="T")
    lines = out.split("\n")
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])
    assert format_series("S", [1, 2], [3, 4], "x", "y").startswith("S")


def test_speedup_result_math():
    res = SpeedupResult(
        app_name="x",
        runs=[
            RunResult(1, 1000, Counters(), {}),
            RunResult(2, 400, Counters(), {}),
        ],
    )
    assert res.base_time == 1000
    assert res.speedup(2) == pytest.approx(2.5)
    assert res.curve() == [(1, 1.0), (2, 2.5)]
    with pytest.raises(KeyError):
        res.speedup(4)


def test_speedup_result_requires_base_run():
    res = SpeedupResult(app_name="x", runs=[RunResult(2, 400, Counters(), {})])
    with pytest.raises(ValueError):
        res.base_time


def test_measure_speedups_checks_every_run():
    class Lying(JacobiApp):
        def check(self, result):
            raise AssertionError("always wrong")

    with pytest.raises(AssertionError, match="always wrong"):
        measure_speedups(lambda p: Lying(p, n=16, iters=1), procs=(1,))


def test_format_speedup_table_rows():
    res = measure_speedups(lambda p: JacobiApp(p, n=32, iters=2), procs=(1, 2))
    table = format_speedup_table([res])
    assert "jacobi" in table and "p=2" in table
