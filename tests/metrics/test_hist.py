"""Histogram / gauge / metrics-registry unit tests, including the
percentile edge cases the reports depend on (empty, single-sample) and
the log-bucket backend's relative-error guarantee."""

import pytest

from repro.metrics.hist import (
    HIST_BACKENDS,
    Gauge,
    Histogram,
    LogBucketHistogram,
    Metrics,
    make_histogram,
)


def test_empty_histogram_reports_none_everywhere():
    h = Histogram("empty")
    assert h.count == 0 and h.total == 0
    assert h.min is None and h.max is None and h.mean() is None
    for q in (0, 50, 95, 99, 100):
        assert h.percentile(q) is None
    summary = h.summary()
    assert summary["count"] == 0 and summary["p50"] is None


def test_single_sample_is_every_percentile():
    h = Histogram("one")
    h.observe(42)
    for q in (0, 1, 50, 95, 99, 100):
        assert h.percentile(q) == 42
    assert h.min == h.max == h.mean() == 42


def test_percentiles_are_nearest_rank_not_interpolated():
    h = Histogram("ranks")
    for v in (10, 20, 30, 40):
        h.observe(v)
    # ceil(q*n/100) ranks: every answer is an observed value.
    assert h.percentile(0) == 10
    assert h.percentile(25) == 10
    assert h.percentile(26) == 20
    assert h.percentile(50) == 20
    assert h.percentile(75) == 30
    assert h.percentile(99) == 40
    assert h.percentile(100) == 40


def test_percentile_rejects_out_of_range_q():
    h = Histogram("x")
    h.observe(1)
    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(100.5)


def test_out_of_order_observations_still_rank_correctly():
    h = Histogram("shuffle")
    for v in (30, 10, 40, 20):
        h.observe(v)
    assert h.percentile(50) == 20
    assert h.max == 40
    # Observing after a percentile query re-sorts lazily.
    h.observe(5)
    assert h.percentile(0) == 5
    assert h.values() == sorted(h.values())


def test_gauge_tracks_latest_and_peak():
    g = Gauge("frames")
    assert g.value is None and g.peak is None
    g.set(4)
    g.set(9)
    g.set(2)
    assert g.value == 2 and g.peak == 9 and g.updates == 3


def test_metrics_registry_reuses_instruments():
    m = Metrics()
    m.observe("lat", 5)
    m.observe("lat", 7)
    m.gauge("level", 3)
    assert m.histogram("lat") is m.histograms["lat"]
    assert m.histograms["lat"].count == 2
    snap = m.snapshot()
    assert snap["lat"]["count"] == 2 and snap["lat"]["p50"] == 5
    assert snap["level"] == {"value": 3, "peak": 3, "updates": 1}


def test_metrics_merge_pools_histograms_and_keeps_gauge_peaks():
    a, b = Metrics(), Metrics()
    a.observe("lat", 1)
    a.observe("lat", 3)
    b.observe("lat", 2)
    a.gauge("level", 10)
    b.gauge("level", 4)
    b.gauge("only_b", 7)
    merged = Metrics.merge([a, b])
    assert merged.histograms["lat"].count == 3
    assert merged.histograms["lat"].percentile(50) == 2
    # Gauges keep the largest peak — levels on different nodes don't sum.
    assert merged.gauges["level"].peak == 10
    assert merged.gauges["level"].updates == 2
    assert merged.gauges["only_b"].value == 7
    # Merge is a snapshot, not a live view.
    a.observe("lat", 99)
    assert merged.histograms["lat"].count == 3


# ---------------------------------------------------------------------------
# log-bucket (DDSketch-style) backend


def _lat_samples():
    """A deterministic heavy-tailed latency-ish sequence (ns scale)."""
    out = []
    v = 100.0
    for i in range(2000):
        v = v * 1.01 if i % 7 else v * 0.55
        out.append(int(v) + i % 13)
    out.extend(range(1, 50))  # a low head
    out.extend((10_000_000, 25_000_000, 99_000_000))  # a far tail
    return out


@pytest.mark.parametrize("alpha", [0.01, 0.05])
@pytest.mark.parametrize("q", [50, 90, 95, 99, 100])
def test_logbucket_percentile_relative_error_is_bounded(alpha, q):
    # The satellite's contract: every reported quantile is within
    # `alpha` relative error of the exact nearest-rank answer.
    exact = Histogram("exact")
    sketch = LogBucketHistogram("sketch", alpha=alpha)
    for v in _lat_samples():
        exact.observe(v)
        sketch.observe(v)
    truth = exact.percentile(q)
    got = sketch.percentile(q)
    assert truth is not None and got is not None
    assert abs(got - truth) / truth <= alpha, (q, got, truth)


def test_logbucket_memory_is_bounded_by_range_not_count():
    sketch = LogBucketHistogram("mem", alpha=0.01)
    for i in range(50_000):
        sketch.observe(100 + (i * 37) % 10_000)
    assert sketch.count == 50_000
    # ln(10100/100)/ln(gamma) buckets at most — far below the count.
    assert sketch.nbuckets < 300


def test_logbucket_empty_single_and_nonpositive():
    sketch = LogBucketHistogram("edge", alpha=0.02)
    assert sketch.count == 0 and sketch.percentile(50) is None
    sketch.observe(0)
    sketch.observe(-5)
    # Non-positive values land in the exact zero bucket.
    assert sketch.count == 2
    assert sketch.percentile(50) == 0
    sketch.observe(42)
    assert sketch.min == -5 and sketch.max == 42
    assert sketch.percentile(100) == 42  # clamped to the observed max


def test_logbucket_min_max_total_are_exact():
    sketch = LogBucketHistogram("exactish", alpha=0.01)
    for v in (5, 17, 900):
        sketch.observe(v)
    assert sketch.min == 5 and sketch.max == 900
    assert sketch.total == 922
    assert sketch.mean() == pytest.approx(922 / 3)


def test_logbucket_merge_same_alpha_is_bucketwise():
    a = LogBucketHistogram("a", alpha=0.01)
    b = LogBucketHistogram("b", alpha=0.01)
    for v in (10, 100, 1000):
        a.observe(v)
    for v in (20, 200):
        b.observe(v)
    a.merge_from(b)
    assert a.count == 5
    assert a.max == 1000 and a.min == 10
    p50 = a.percentile(50)
    assert p50 is not None and abs(p50 - 100) / 100 <= 0.01


def test_make_histogram_selects_backend():
    assert isinstance(make_histogram("x", "exact"), Histogram)
    assert isinstance(make_histogram("x", "logbucket", 0.03), LogBucketHistogram)
    with pytest.raises(ValueError):
        make_histogram("x", "tdigest")
    assert set(HIST_BACKENDS) == {"exact", "logbucket"}


def test_metrics_registry_backend_selection_per_instrument():
    m = Metrics(default_backend="exact")
    m.set_backend("fault.read_ns", "logbucket")
    m.observe("fault.read_ns", 100)
    m.observe("other", 5)
    assert isinstance(m.histograms["fault.read_ns"], LogBucketHistogram)
    assert isinstance(m.histograms["other"], Histogram)
    # Too late once the instrument exists — the data is already bucketed.
    with pytest.raises(ValueError):
        m.set_backend("other", "logbucket")
    with pytest.raises(ValueError):
        Metrics(default_backend="nope")


def test_metrics_merge_preserves_logbucket_backend():
    a = Metrics(default_backend="logbucket", alpha=0.02)
    b = Metrics(default_backend="logbucket", alpha=0.02)
    for v in (10, 20, 30):
        a.observe("lat", v)
    b.observe("lat", 40)
    merged = Metrics.merge([a, b])
    assert isinstance(merged.histograms["lat"], LogBucketHistogram)
    assert merged.histograms["lat"].count == 4


def test_format_instruments_renders_percentile_columns():
    from repro.metrics.report import format_instruments

    m = Metrics()
    for v in range(1, 101):
        m.observe("fault.read_ns", v)
    m.gauge("frames.resident", 12)
    table = format_instruments(m)
    assert "fault.read_ns" in table
    assert "p50" in table and "p95" in table and "p99" in table
    assert "frames.resident (gauge)" in table
    empty = format_instruments(Metrics())
    assert "(no observations)" in empty
