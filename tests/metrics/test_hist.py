"""Histogram / gauge / metrics-registry unit tests, including the
percentile edge cases the reports depend on (empty, single-sample)."""

import pytest

from repro.metrics.hist import Gauge, Histogram, Metrics


def test_empty_histogram_reports_none_everywhere():
    h = Histogram("empty")
    assert h.count == 0 and h.total == 0
    assert h.min is None and h.max is None and h.mean() is None
    for q in (0, 50, 95, 99, 100):
        assert h.percentile(q) is None
    summary = h.summary()
    assert summary["count"] == 0 and summary["p50"] is None


def test_single_sample_is_every_percentile():
    h = Histogram("one")
    h.observe(42)
    for q in (0, 1, 50, 95, 99, 100):
        assert h.percentile(q) == 42
    assert h.min == h.max == h.mean() == 42


def test_percentiles_are_nearest_rank_not_interpolated():
    h = Histogram("ranks")
    for v in (10, 20, 30, 40):
        h.observe(v)
    # ceil(q*n/100) ranks: every answer is an observed value.
    assert h.percentile(0) == 10
    assert h.percentile(25) == 10
    assert h.percentile(26) == 20
    assert h.percentile(50) == 20
    assert h.percentile(75) == 30
    assert h.percentile(99) == 40
    assert h.percentile(100) == 40


def test_percentile_rejects_out_of_range_q():
    h = Histogram("x")
    h.observe(1)
    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(100.5)


def test_out_of_order_observations_still_rank_correctly():
    h = Histogram("shuffle")
    for v in (30, 10, 40, 20):
        h.observe(v)
    assert h.percentile(50) == 20
    assert h.max == 40
    # Observing after a percentile query re-sorts lazily.
    h.observe(5)
    assert h.percentile(0) == 5
    assert h.values() == sorted(h.values())


def test_gauge_tracks_latest_and_peak():
    g = Gauge("frames")
    assert g.value is None and g.peak is None
    g.set(4)
    g.set(9)
    g.set(2)
    assert g.value == 2 and g.peak == 9 and g.updates == 3


def test_metrics_registry_reuses_instruments():
    m = Metrics()
    m.observe("lat", 5)
    m.observe("lat", 7)
    m.gauge("level", 3)
    assert m.histogram("lat") is m.histograms["lat"]
    assert m.histograms["lat"].count == 2
    snap = m.snapshot()
    assert snap["lat"]["count"] == 2 and snap["lat"]["p50"] == 5
    assert snap["level"] == {"value": 3, "peak": 3, "updates": 1}


def test_metrics_merge_pools_histograms_and_keeps_gauge_peaks():
    a, b = Metrics(), Metrics()
    a.observe("lat", 1)
    a.observe("lat", 3)
    b.observe("lat", 2)
    a.gauge("level", 10)
    b.gauge("level", 4)
    b.gauge("only_b", 7)
    merged = Metrics.merge([a, b])
    assert merged.histograms["lat"].count == 3
    assert merged.histograms["lat"].percentile(50) == 2
    # Gauges keep the largest peak — levels on different nodes don't sum.
    assert merged.gauges["level"].peak == 10
    assert merged.gauges["level"].updates == 2
    assert merged.gauges["only_b"].value == 7
    # Merge is a snapshot, not a live view.
    a.observe("lat", 99)
    assert merged.histograms["lat"].count == 3


def test_format_instruments_renders_percentile_columns():
    from repro.metrics.report import format_instruments

    m = Metrics()
    for v in range(1, 101):
        m.observe("fault.read_ns", v)
    m.gauge("frames.resident", 12)
    table = format_instruments(m)
    assert "fault.read_ns" in table
    assert "p50" in table and "p95" in table and "p99" in table
    assert "frames.resident (gauge)" in table
    empty = format_instruments(Metrics())
    assert "(no observations)" in empty
