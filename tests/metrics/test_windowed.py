"""Windowed-instrument tests: bucketing, sparse storage, accessors."""

import pytest

from repro.metrics.windowed import (
    WindowedCounter,
    WindowedGauge,
    WindowedMetrics,
)


def test_window_width_must_be_positive():
    with pytest.raises(ValueError):
        WindowedMetrics(0)
    with pytest.raises(ValueError):
        WindowedMetrics(-5)


def test_window_of_is_floor_division():
    wm = WindowedMetrics(100)
    assert wm.window_of(0) == 0
    assert wm.window_of(99) == 0
    assert wm.window_of(100) == 1
    assert wm.window_of(250) == 2


def test_counter_buckets_and_totals():
    wm = WindowedMetrics(100)
    wm.count("faults", t=10)
    wm.count("faults", t=90, by=2)
    wm.count("faults", t=250)
    assert wm.counter_window("faults", 0) == 3
    assert wm.counter_window("faults", 1) == 0  # quiet window costs nothing
    assert wm.counter_window("faults", 2) == 1
    assert wm.counters["faults"].total == 4
    assert set(wm.counters["faults"].windows) == {0, 2}


def test_counter_window_of_unknown_instrument_is_zero():
    wm = WindowedMetrics(100)
    assert wm.counter_window("nope", 0) == 0


def test_gauge_tracks_last_and_peak_per_window():
    wm = WindowedMetrics(100)
    wm.gauge("backlog", t=10, value=5.0)
    wm.gauge("backlog", t=20, value=9.0)
    wm.gauge("backlog", t=30, value=2.0)
    wm.gauge("backlog", t=150, value=1.0)
    assert wm.gauge_window("backlog", 0) == (2.0, 9.0)
    assert wm.gauge_window("backlog", 1) == (1.0, 1.0)
    assert wm.gauge_window("backlog", 2) is None
    assert wm.gauge_window("nope", 0) is None


def test_histogram_is_per_window():
    wm = WindowedMetrics(100)
    wm.observe("lat", t=10, value=5)
    wm.observe("lat", t=20, value=15)
    wm.observe("lat", t=150, value=1000)
    h0 = wm.hist_window("lat", 0)
    h1 = wm.hist_window("lat", 1)
    assert h0 is not None and h0.count == 2 and h0.max == 15
    assert h1 is not None and h1.count == 1 and h1.max == 1000
    assert wm.hist_window("lat", 2) is None


def test_histogram_backend_is_inherited_from_registry():
    from repro.metrics.hist import LogBucketHistogram

    wm = WindowedMetrics(100, hist_backend="logbucket", alpha=0.05)
    wm.observe("lat", t=10, value=123)
    hist = wm.hist_window("lat", 0)
    assert isinstance(hist, LogBucketHistogram)
    assert hist.alpha == 0.05


def test_max_window_spans_all_instrument_kinds():
    wm = WindowedMetrics(100)
    assert wm.max_window() == -1
    wm.count("c", t=150)
    assert wm.max_window() == 1
    wm.gauge("g", t=450, value=1.0)
    assert wm.max_window() == 4
    wm.observe("h", t=960, value=1)
    assert wm.max_window() == 9


def test_standalone_counter_and_gauge():
    c = WindowedCounter("c")
    c.add(3)
    c.add(3, by=4)
    assert c.windows == {3: 5}
    assert c.total == 5
    g = WindowedGauge("g")
    g.set(0, 7.0)
    g.set(0, 3.0)
    assert g.windows[0] == (3.0, 7.0)
