"""Unit tests for the transport's sticky forwarding — the dedup rule that
keeps retransmitted fault requests on their original path.

Rationale (see `Transport.forward`): a retransmitted duplicate must NOT
be re-routed through the handler, because the first pass updated routing
hints — including, under the dynamic manager, hints that point back at
the (still blocked) origin.
"""

import pytest

from repro.config import MILLISECOND
from repro.net.remoteop import Forward, Reply
from repro.sim.process import Compute

from tests.net.conftest import NetRig


def make_lossy_rig(loss_rate, seed=5, timeout_ms=5):
    rig = NetRig(nnodes=4, loss_rate=loss_rate, seed=seed)
    for t in rig.transports:
        t.config = t.config.replace(retransmit_timeout=timeout_ms * MILLISECOND)
    return rig


def test_duplicate_of_forwarded_request_retraces_original_hop():
    """Even if the forwarder's routing state changes after the first
    pass, a duplicate is re-sent to the *recorded* destination."""
    rig = NetRig(nnodes=4)
    route = {"next": 2}
    handled = []

    def forwarder(origin, payload):
        # Reads mutable routing state — a stand-in for probOwner hints.
        return Forward(route["next"])
        yield  # pragma: no cover

    def executor_at(n):
        def handler(origin, payload):
            handled.append(n)
            yield Compute(10)
            return f"done-at-{n}"

        return handler

    rig.ops[1].register("op", forwarder)
    rig.ops[2].register("op", executor_at(2))
    rig.ops[3].register("op", executor_at(3))

    def client():
        value = yield from rig.ops[0].request(1, "op", None)
        return value

    task = rig.spawn(client())

    # Once the first forward leaves node 1, poison the routing state; a
    # duplicate must STILL go to node 2 (the recorded hop).
    captured = []
    original_send = rig.ring.send

    def capturing_send(msg):
        captured.append(msg)
        if msg.src == 1 and msg.kind == "req":
            route.update(next=3)
        original_send(msg)

    rig.ring.send = capturing_send

    # Inject a duplicate of the original request at node 1 (as a lost-
    # reply retransmission would).
    def replay():
        sent = [m for m in captured if m.kind == "req" and m.dst == 1]
        if sent:
            rig.transports[1]._on_message(sent[0])
    rig.sim.schedule(5_000_000, replay)
    rig.run()
    assert task.result == "done-at-2"
    assert handled == [2]  # the duplicate did not reach node 3


def test_lost_forward_leg_recovered_by_origin_retransmission():
    # Drop exactly the first forwarded message (node1 -> node2).
    rig = make_lossy_rig(loss_rate=0.0)
    dropped = {"count": 0}
    original_send = rig.ring.send

    def dropping_send(msg):
        if msg.src == 1 and msg.dst == 2 and dropped["count"] == 0:
            dropped["count"] += 1
            rig.ring.stats.lost_frames += 1
            return  # swallowed by the wire
        original_send(msg)

    rig.ring.send = dropping_send

    def forwarder(origin, payload):
        return Forward(2)
        yield  # pragma: no cover

    def executor(origin, payload):
        yield Compute(10)
        return "ok"

    rig.ops[1].register("op", forwarder)
    rig.ops[2].register("op", executor)

    def client():
        value = yield from rig.ops[0].request(1, "op", None)
        return value

    task = rig.spawn(client())
    rig.run()
    assert task.result == "ok"
    assert dropped["count"] == 1
    assert rig.transports[0].stats.retransmits >= 1


def test_forwarding_chain_under_heavy_loss_terminates_correctly():
    rig = make_lossy_rig(loss_rate=0.35, seed=11)
    executions = []

    def fwd(nxt):
        def handler(origin, payload):
            return Forward(nxt)
            yield  # pragma: no cover

        return handler

    def executor(origin, payload):
        executions.append(payload)
        yield Compute(10)
        return payload * 2

    rig.ops[1].register("op", fwd(2))
    rig.ops[2].register("op", fwd(3))
    rig.ops[3].register("op", executor)

    def client():
        out = []
        for i in range(10):
            value = yield from rig.ops[0].request(1, "op", i)
            out.append(value)
        return out

    task = rig.spawn(client())
    rig.run()
    assert task.result == [i * 2 for i in range(10)]
    # At-most-once execution despite the drops and re-forwards.
    assert executions == list(range(10))
