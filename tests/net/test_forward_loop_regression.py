"""Regression test for the sticky-forwarding routing loop.

Found by hypothesis (fixed manager, 15% loss, seed 60): node 1's read
fault was forwarded by manager node 2 to the then-owner node 0; the
forward leg was lost; meanwhile node 2 itself became the page's owner.
From then on every retransmission bounced 1 -> 2 -> 0 -> 2 -> 0 ...
between the two nodes' stale "forwarded" dedup entries — node 2's stale
route shadowed the fact that it could now serve the request — until the
origin gave up after 64 retries.

The fix: on a duplicate of a forwarded request, the transport first asks
the protocol whether this node would now execute the operation locally
(`RemoteOp.register_local_probe`); only if not does it re-send along the
recorded hop.
"""

from repro.api.cluster import Cluster
from repro.config import ClusterConfig, MILLISECOND

PAGE = 256


def run_program(program, algorithm, seed, loss):
    config = (
        ClusterConfig(nodes=len(program), seed=seed)
        .with_svm(algorithm=algorithm, page_size=PAGE, shared_size=PAGE * 4096)
        .with_ring(loss_rate=loss)
        .replace(retransmit_timeout=20 * MILLISECOND)
    )
    cluster = Cluster(config)
    base = config.svm.shared_base

    def worker(node_id, ops):
        mem = cluster.node(node_id).mem
        for kind, cell, value in ops:
            addr = base + cell * PAGE
            if kind == "read":
                yield from mem.read_i64(addr)
            else:
                yield from mem.write_i64(addr, value)

    tasks = [
        cluster.spawn_system(worker(n, ops), f"prog{n}")
        for n, ops in enumerate(program)
    ]
    cluster.run()
    for t in tasks:
        if t.error is not None:
            raise t.error
    cluster.check_coherence_invariants()
    return cluster


def test_hypothesis_seed60_fixed_manager_loop():
    program = [
        [("read", 0, 0)],
        [("read", 2, 0)],
        [("read", 0, 0), ("read", 1, 0), ("write", 2, 0)],
    ]
    cluster = run_program(program, "fixed", seed=60, loss=0.15)
    # The fault must resolve promptly, not after a retransmission storm.
    assert cluster.sim.now < 500 * MILLISECOND
    retransmits = sum(t.stats.retransmits for t in
                      [cluster.node(n).transport for n in range(3)])
    assert retransmits < 10


def test_ownership_moves_to_forwarder_under_loss_many_seeds():
    """The same contention pattern across seeds and both manager
    families that use forwarding."""
    program = [
        [("write", 0, 1)],
        [("read", 0, 0), ("write", 0, 2)],
        [("read", 0, 0), ("write", 0, 3), ("read", 0, 0)],
    ]
    for algorithm in ("fixed", "centralized", "dynamic"):
        for seed in (1, 60, 1234, 9999):
            run_program(program, algorithm, seed=seed, loss=0.2)
