"""Shared fixtures: a small cluster of transport + remote-op endpoints."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.net.remoteop import RemoteOp
from repro.net.ring import TokenRing
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.sim.process import SimDriver


class NetRig:
    """A bare network: sim + ring + one transport/remoteop per node."""

    def __init__(self, nnodes=3, config=None, loss_rate=0.0, seed=7):
        self.config = (config or ClusterConfig(nodes=nnodes)).replace(nodes=nnodes)
        if loss_rate:
            self.config = self.config.with_ring(loss_rate=loss_rate)
        self.sim = Simulator()
        self.driver = SimDriver(self.sim)
        self.ring = TokenRing(
            self.sim, self.config.ring, nnodes, rng=np.random.default_rng(seed)
        )
        self.transports = [
            Transport(self.sim, self.driver, self.ring, n, self.config)
            for n in range(nnodes)
        ]
        self.ops = [
            RemoteOp(t, self.driver, self.config) for t in self.transports
        ]

    def spawn(self, gen, name="t"):
        return self.driver.spawn(gen, name)

    def run(self, **kw):
        return self.sim.run(**kw)


@pytest.fixture
def rig():
    return NetRig()
