"""Integration tests for transport + remote operations.

Covers the features the paper calls out explicitly: request/reply,
forwarding chains with a single final reply, broadcast with the three
reply schemes, reply-only retransmission under frame loss, and
piggybacked load hints.
"""

import pytest

from repro.net.remoteop import Forward, Reply
from repro.net.transport import TransportError
from repro.sim.process import Compute

from tests.net.conftest import NetRig


def echo_handler(origin, payload):
    yield Compute(1_000)
    return ("echo", origin, payload)


def test_request_reply_roundtrip(rig):
    rig.ops[1].register("echo", echo_handler)

    def client():
        value = yield from rig.ops[0].request(1, "echo", {"x": 42})
        return value

    task = rig.spawn(client())
    rig.run()
    assert task.result == ("echo", 0, {"x": 42})


def test_local_request_skips_the_ring(rig):
    rig.ops[0].register("echo", echo_handler)

    def client():
        value = yield from rig.ops[0].request(0, "echo", "self")
        return value

    task = rig.spawn(client())
    rig.run()
    assert task.result == ("echo", 0, "self")
    assert rig.ring.stats.messages == 0


def test_forwarding_chain_single_reply_to_origin():
    rig = NetRig(nnodes=4)
    hops = []

    def forwarder(next_node):
        def handler(origin, payload):
            hops.append(rig_node_of(handler))
            return Forward(next_node)
            yield  # pragma: no cover

        return handler

    # Track which node each handler instance lives on via closure.
    node_of = {}

    def rig_node_of(h):
        return node_of[h]

    h1 = forwarder(2)
    h2 = forwarder(3)
    node_of[h1] = 1
    node_of[h2] = 2
    rig.ops[1].register("find", h1)
    rig.ops[2].register("find", h2)

    def executor(origin, payload):
        yield Compute(500)
        return Reply(("found-at", 3), nbytes=64)

    rig.ops[3].register("find", executor)

    def client():
        value = yield from rig.ops[0].request(1, "find", None)
        return value

    task = rig.spawn(client())
    rig.run()
    assert task.result == ("found-at", 3)
    assert hops == [1, 2]
    # 0->1 req, 1->2 fwd, 2->3 fwd, 3->0 reply: exactly four ring messages.
    assert rig.ring.stats.messages == 4


def test_broadcast_all_collects_reply_from_every_station():
    rig = NetRig(nnodes=4)
    for n in (1, 2, 3):
        rig.ops[n].register("poll", lambda origin, payload, n=n: iter_reply(n))

    def iter_reply(n):
        yield Compute(100)
        return n * 10

    def client():
        replies = yield from rig.ops[0].broadcast("poll", scheme="all")
        return replies

    task = rig.spawn(client())
    rig.run()
    assert task.result == {1: 10, 2: 20, 3: 30}


def test_broadcast_any_returns_first_reply():
    rig = NetRig(nnodes=4)

    def slow(origin, payload):
        yield Compute(50_000_000)
        return "slow"

    def fast(origin, payload):
        yield Compute(10)
        return "fast"

    rig.ops[1].register("race", slow)
    rig.ops[2].register("race", fast)
    rig.ops[3].register("race", slow)

    def client():
        value = yield from rig.ops[0].broadcast("race", scheme="any")
        return value

    task = rig.spawn(client())
    rig.run()
    assert task.result == "fast"


def test_broadcast_none_fires_and_forgets():
    rig = NetRig(nnodes=3)
    seen = []

    def sink(origin, payload):
        seen.append((origin, payload))
        return None
        yield  # pragma: no cover

    rig.ops[1].register("notify", sink)
    rig.ops[2].register("notify", sink)

    def client():
        result = yield from rig.ops[0].broadcast("notify", "hint", scheme="none")
        return result

    task = rig.spawn(client())
    rig.run()
    assert task.result is None
    assert sorted(seen) == [(0, "hint"), (0, "hint")]
    # No replies were generated at all.
    assert all(t.stats.replies_sent == 0 for t in rig.transports)


def test_broadcast_all_on_single_node_cluster_returns_empty():
    rig = NetRig(nnodes=1)

    def client():
        replies = yield from rig.ops[0].broadcast("poll", scheme="all")
        return replies

    task = rig.spawn(client())
    rig.run()
    assert task.result == {}


def test_handlers_can_issue_nested_requests():
    rig = NetRig(nnodes=3)

    def leaf(origin, payload):
        yield Compute(10)
        return payload + 1

    def middle(origin, payload):
        value = yield from rig.ops[1].request(2, "leaf", payload * 2)
        return value

    rig.ops[2].register("leaf", leaf)
    rig.ops[1].register("middle", middle)

    def client():
        value = yield from rig.ops[0].request(1, "middle", 5)
        return value

    task = rig.spawn(client())
    rig.run()
    assert task.result == 11


def test_retransmission_recovers_from_frame_loss():
    # 30% loss: requests and replies get dropped; retransmits recover.
    rig = NetRig(nnodes=2, loss_rate=0.30, seed=123)
    calls = []

    def handler(origin, payload):
        calls.append(payload)
        yield Compute(100)
        return payload

    rig.ops[1].register("op", handler)

    def client():
        results = []
        for i in range(20):
            value = yield from rig.ops[0].request(1, "op", i)
            results.append(value)
        return results

    task = rig.spawn(client())
    rig.run()
    assert task.result == list(range(20))
    # At-most-once execution: duplicates answered from the reply cache.
    assert calls == list(range(20))
    total_retransmits = sum(t.stats.retransmits for t in rig.transports)
    assert total_retransmits > 0


def test_unreachable_peer_gives_up_with_transport_error():
    rig = NetRig(nnodes=2, loss_rate=1.0)
    rig.config = rig.config.replace(max_retransmits=3)
    # Rebuild with the tightened budget.
    rig = NetRig(nnodes=2, loss_rate=1.0)
    for t in rig.transports:
        t.config = t.config.replace(max_retransmits=3)

    rig.ops[1].register("op", echo_handler)

    def client():
        yield from rig.ops[0].request(1, "op", None)

    task = rig.spawn(client())
    with pytest.raises(Exception) as exc_info:
        rig.run()
    assert isinstance(exc_info.value.__cause__, TransportError)


def test_load_hints_piggyback_on_every_message():
    rig = NetRig(nnodes=2)
    hints = {}
    rig.transports[0].load_provider = lambda: 7
    rig.transports[1].hint_sink = lambda src, load: hints.update({src: load})
    rig.ops[1].register("op", echo_handler)

    def client():
        yield from rig.ops[0].request(1, "op", None)

    rig.spawn(client())
    rig.run()
    assert hints == {0: 7}


def test_duplicate_request_not_reexecuted():
    rig = NetRig(nnodes=2)
    calls = []

    def handler(origin, payload):
        calls.append(payload)
        yield Compute(100)
        return "ok"

    rig.ops[1].register("op", handler)

    def client():
        value = yield from rig.ops[0].request(1, "op", "x")
        return value

    task = rig.spawn(client())
    rig.run()
    # Replay the exact request message (simulating a duplicate in flight).
    sent = task.result
    assert sent == "ok"
    assert calls == ["x"]
