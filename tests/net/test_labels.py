"""Delivery-label grammar and footprint-extractor error accounting.

``delivery_label`` (formatter) and ``parse_delivery_label`` (the single
parser, which the explorer imports instead of re-deriving the grammar)
live side by side in :mod:`repro.net.packet`; the property test pins
them together so they cannot drift."""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import (
    DeliveryLabel,
    Message,
    annotate_op,
    delivery_label,
    extractor_errors,
    op_page,
    parse_delivery_label,
    reset_extractor_errors,
)

ops = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)*", fullmatch=True)
ids = st.integers(min_value=0, max_value=10**6)


@pytest.fixture(autouse=True)
def _clean_error_counts():
    reset_extractor_errors()
    yield
    reset_extractor_errors()


class TestLabelGrammar:
    @given(
        target=ids,
        page=st.one_of(st.none(), ids),
        kind=st.sampled_from(["req", "bcast"]),
        op=ops,
        origin=ids,
        msg_id=ids,
    )
    def test_round_trip(self, target, page, kind, op, origin, msg_id):
        ptag = "p?" if page is None else f"p{page}"
        label = f"deliver:n{target}:{ptag}:{kind}:{op}:o{origin}.{msg_id}"
        assert parse_delivery_label(label) == DeliveryLabel(
            target, page, kind, op, origin, msg_id
        )

    @given(op=ops, page=ids, target=ids, origin=ids, msg_id=ids)
    def test_formatter_output_parses(self, op, page, target, origin, msg_id):
        op = f"t.{op}"  # keep the real ops' extractor registry untouched
        annotate_op(op, lambda payload: payload)
        msg = Message(0, target, "req", op, origin, msg_id, page, nbytes=32)
        parsed = parse_delivery_label(delivery_label(target, msg))
        assert parsed == DeliveryLabel(target, page, "req", op, origin, msg_id)

    def test_replies_are_never_page_attributed(self):
        annotate_op("t.owner", lambda payload: payload)
        msg = Message(0, 1, "rep", "t.owner", 2, 7, 3, nbytes=32)
        assert parse_delivery_label(delivery_label(1, msg)) == DeliveryLabel(
            1, None, "rep", "t.owner", 2, 7
        )

    def test_non_delivery_labels_rejected(self):
        for label in (None, "", "compute:n0", "deliver:n0:p1:req:op",
                      "deliver:nx:p1:req:op:o0.1"):
            assert parse_delivery_label(label) is None


class TestExtractorErrors:
    def test_raising_extractor_counts_and_warns_once(self):
        annotate_op("t.bad", lambda payload: payload["page"])
        with pytest.warns(RuntimeWarning, match="t.bad"):
            assert op_page("t.bad", (1, 2)) is None
        # Second failure: counted, but no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert op_page("t.bad", (1, 2)) is None
        assert extractor_errors() == {"t.bad": 2}

    def test_non_int_result_counts(self):
        annotate_op("t.str", lambda payload: str(payload))
        with pytest.warns(RuntimeWarning, match="non-page"):
            assert op_page("t.str", 5) is None
        assert extractor_errors() == {"t.str": 1}

    def test_bool_is_not_a_page(self):
        # True is an ack value; silently reading it as page 1 would let
        # the explorer commute deliveries it has no proof about.
        annotate_op("t.ack", lambda payload: payload)
        with pytest.warns(RuntimeWarning):
            assert op_page("t.ack", True) is None

    def test_healthy_extractor_is_silent(self):
        annotate_op("t.ok", lambda payload: payload)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert op_page("t.ok", 9) == 9
        assert extractor_errors() == {}

    def test_reset_clears_the_warn_latch(self):
        annotate_op("t.again", lambda payload: payload / 0)
        with pytest.warns(RuntimeWarning):
            op_page("t.again", 1)
        reset_extractor_errors()
        with pytest.warns(RuntimeWarning):
            op_page("t.again", 1)
        assert extractor_errors() == {"t.again": 1}

    def test_explorer_delta_only_counts_new_failures(self):
        # The explorer snapshots the registry before exploring and
        # reports only the failures its own runs produced.
        from repro.analysis.explore import _extractor_error_delta

        annotate_op("t.flaky", lambda payload: payload["page"])
        with pytest.warns(RuntimeWarning):
            op_page("t.flaky", ())
        before = extractor_errors()
        assert _extractor_error_delta(before) == {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            op_page("t.flaky", ())
            op_page("t.flaky", ())
        assert _extractor_error_delta(before) == {"t.flaky": 2}
