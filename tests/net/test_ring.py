"""Unit tests for the token-ring medium model."""

import numpy as np
import pytest

from repro.config import RingConfig
from repro.net.packet import BROADCAST, Message
from repro.net.ring import TokenRing
from repro.sim.kernel import Simulator


def make_ring(nnodes=3, **cfg):
    sim = Simulator()
    config = RingConfig(**cfg)
    ring = TokenRing(sim, config, nnodes)
    inboxes = {n: [] for n in range(nnodes)}
    for n in range(nnodes):
        ring.attach(n, lambda m, n=n: inboxes[n].append(m))
    return sim, ring, inboxes


def msg(src, dst, nbytes=100, op="ping"):
    return Message(
        src=src, dst=dst, kind="req", op=op, origin=src, msg_id=1,
        payload=None, nbytes=nbytes,
    )


def test_occupancy_includes_overhead_and_wire_time():
    _, ring, _ = make_ring(bandwidth_bps=12_000_000, frame_overhead=150_000)
    # 1200 bytes -> one extra fragment (max frame 2048 keeps it at 1) and
    # 1200*8 bits / 12 Mbit/s = 800 microseconds of wire time.
    assert ring.occupancy_ns(1200) == 150_000 + 800_000


def test_large_messages_fragment():
    _, ring, _ = make_ring(frame_overhead=100_000, max_frame_bytes=1024)
    one = ring.occupancy_ns(1024)
    two = ring.occupancy_ns(1025)
    assert two - one == pytest.approx(100_000, abs=1_000)


def test_point_to_point_delivery():
    sim, ring, inboxes = make_ring()
    ring.send(msg(0, 1))
    sim.run()
    assert len(inboxes[1]) == 1
    assert inboxes[0] == [] and inboxes[2] == []


def test_transmissions_serialise_on_the_shared_medium():
    sim, ring, inboxes = make_ring(frame_overhead=100_000, delivery_latency=0)
    # Two sends at t=0: the second waits for the medium.
    ring.send(msg(0, 2, nbytes=0))
    ring.send(msg(1, 2, nbytes=0))
    occupancy = ring.occupancy_ns(32)  # header-only floor is 32B
    sim.run()
    assert sim.now >= 2 * occupancy - 1


def test_broadcast_heard_by_all_other_stations():
    sim, ring, inboxes = make_ring(nnodes=4)
    ring.send(msg(2, BROADCAST))
    sim.run()
    assert [len(inboxes[n]) for n in range(4)] == [1, 1, 0, 1]
    assert ring.stats.broadcasts == 1


def test_self_send_rejected():
    _, ring, _ = make_ring()
    with pytest.raises(ValueError):
        ring.send(msg(1, 1))


def test_unknown_destination_rejected():
    _, ring, _ = make_ring()
    with pytest.raises(ValueError):
        ring.send(msg(0, 7))


def test_loss_rate_drops_frames_deterministically():
    sim = Simulator()
    ring = TokenRing(
        sim, RingConfig(loss_rate=1.0), 2, rng=np.random.default_rng(0)
    )
    got = []
    ring.attach(0, got.append)
    ring.attach(1, got.append)
    ring.send(msg(0, 1))
    sim.run()
    assert got == []
    assert ring.stats.lost_frames == 1


def test_stats_accumulate():
    sim, ring, _ = make_ring()
    ring.send(msg(0, 1, nbytes=500))
    ring.send(msg(1, 0, nbytes=700))
    sim.run()
    assert ring.stats.messages == 2
    assert ring.stats.bytes_sent == 1200
    assert ring.stats.busy_ns == ring.occupancy_ns(500) + ring.occupancy_ns(700)


def test_double_attach_rejected():
    _, ring, _ = make_ring()
    with pytest.raises(ValueError):
        ring.attach(0, lambda m: None)
