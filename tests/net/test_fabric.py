"""The fabric abstraction: backend registry, switched medium model,
per-link stats, and ring/switched behavioural parity at the interface."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ConfigError, FabricConfig
from repro.net.fabric import FABRIC_BACKENDS, Fabric, LinkStats, make_fabric
from repro.net.fabric.switched import SwitchedFabric
from repro.net.packet import BROADCAST, Message
from repro.net.ring import TokenRing
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


def msg(src, dst, nbytes=100, op="ping"):
    return Message(
        src=src, dst=dst, kind="req", op=op, origin=src, msg_id=1,
        payload=None, nbytes=nbytes,
    )


def make_switched(nnodes=4, **cfg):
    sim = Simulator()
    config = FabricConfig(backend="switched", **cfg)
    fabric = SwitchedFabric(sim, config, nnodes)
    inboxes = {n: [] for n in range(nnodes)}
    arrivals = {n: [] for n in range(nnodes)}
    for n in range(nnodes):
        def receive(m, n=n):
            inboxes[n].append(m)
            arrivals[n].append(sim.now)
        fabric.attach(n, receive)
    return sim, fabric, inboxes, arrivals


# ----------------------------------------------------------------------
# backend registry


def _mk(config):
    return make_fabric(Simulator(), config, RngStreams(config.seed))


def test_make_fabric_dispatches_on_backend_name():
    assert isinstance(_mk(ClusterConfig(nodes=3)), TokenRing)
    assert isinstance(
        _mk(ClusterConfig(nodes=3).with_fabric(backend="switched")),
        SwitchedFabric,
    )


def test_backends_carry_their_registry_name():
    for backend in FABRIC_BACKENDS:
        fabric = _mk(ClusterConfig(nodes=2).with_fabric(backend=backend))
        assert fabric.name == backend
        assert isinstance(fabric, Fabric)


def test_unknown_backend_raises_structured_config_error():
    config = ClusterConfig(nodes=2).with_fabric(backend="switchd")
    with pytest.raises(ConfigError) as excinfo:
        _mk(config)
    err = excinfo.value
    assert err.field == "fabric.backend"
    assert err.value == "switchd"
    assert err.known == ("ring", "switched")
    assert err.suggestion == "switched"
    assert "did you mean 'switched'?" in str(err)


def test_unrelated_backend_name_gets_no_suggestion():
    with pytest.raises(ConfigError) as excinfo:
        _mk(ClusterConfig(nodes=2).with_fabric(backend="carrier-pigeon"))
    assert excinfo.value.suggestion is None
    assert "did you mean" not in str(excinfo.value)


def test_cluster_raises_config_error_for_unknown_backend():
    from repro.api.cluster import Cluster

    with pytest.raises(ConfigError):
        Cluster(ClusterConfig(nodes=2).with_fabric(backend="rnig"))


# ----------------------------------------------------------------------
# switched medium model: timing


def test_switched_occupancy_includes_overhead_and_wire_time():
    _, fabric, _, _ = make_switched(
        link_bandwidth_bps=100_000_000, link_overhead=30_000
    )
    # 1250 bytes -> 1250*8 bits / 100 Mbit/s = 100 microseconds of wire.
    assert fabric.occupancy_ns(1250) == 30_000 + 100_000


def test_switched_unicast_hop_timing():
    sim, fabric, _, arrivals = make_switched(
        switch_latency=10_000, delivery_latency=20_000
    )
    occ = fabric.occupancy_ns(100)
    fabric.send(msg(0, 1))
    sim.run()
    # egress occupancy + crossbar + ingress occupancy + receiver DMA.
    assert arrivals[1] == [2 * occ + 10_000 + 20_000]


def test_disjoint_pairs_transmit_concurrently():
    sim, fabric, _, arrivals = make_switched(nnodes=4)
    fabric.send(msg(0, 1))
    fabric.send(msg(2, 3))
    sim.run()
    # Unlike the shared ring, the second pair does not queue behind the
    # first: both deliveries land at the identical time.
    assert arrivals[1] == arrivals[3]


def test_same_source_sends_queue_fifo_on_the_egress_port():
    sim, fabric, _, arrivals = make_switched(nnodes=4)
    occ = fabric.occupancy_ns(100)
    fabric.send(msg(0, 1))
    fabric.send(msg(0, 2))
    sim.run()
    assert arrivals[2][0] - arrivals[1][0] == occ


def test_same_destination_sends_queue_fifo_on_the_ingress_port():
    sim, fabric, _, arrivals = make_switched(nnodes=4)
    occ = fabric.occupancy_ns(100)
    fabric.send(msg(0, 2))
    fabric.send(msg(1, 2))
    sim.run()
    assert len(arrivals[2]) == 2
    assert arrivals[2][1] - arrivals[2][0] == occ


def test_switched_self_send_and_out_of_range_rejected():
    _, fabric, _, _ = make_switched()
    with pytest.raises(ValueError):
        fabric.send(msg(1, 1))
    with pytest.raises(ValueError):
        fabric.send(msg(0, 9))


# ----------------------------------------------------------------------
# broadcast as a multicast tree


def test_broadcast_reaches_every_other_station_exactly_once():
    sim, fabric, inboxes, _ = make_switched(nnodes=8, multicast_fanout=2)
    fabric.send(msg(3, BROADCAST))
    sim.run()
    assert [len(inboxes[n]) for n in range(8)] == [1, 1, 1, 0, 1, 1, 1, 1]
    assert fabric.stats.broadcasts == 1


def test_multicast_tree_counts_relay_transmissions():
    sim, fabric, _, _ = make_switched(nnodes=8, multicast_fanout=2)
    fabric.send(msg(0, BROADCAST, nbytes=1000))
    sim.run()
    # 7 targets, fan-out 2: the source feeds 2, relays feed the other 5.
    assert fabric.stats.relays == 5
    # Every tree edge carries the full message — real fan-out cost.
    assert fabric.stats.bytes_sent == 7 * 1000


def test_multicast_relay_hops_arrive_later_than_root_fed_targets():
    sim, fabric, _, arrivals = make_switched(
        nnodes=8, multicast_fanout=2, relay_cost=40_000
    )
    fabric.send(msg(0, BROADCAST))
    sim.run()
    root_fed = max(arrivals[1][0], arrivals[2][0])   # tree positions 0, 1
    relay_fed = min(arrivals[n][0] for n in (3, 4, 5, 6, 7))
    assert relay_fed > root_fed


def test_broadcast_cost_scales_with_fanout():
    def total_time(k):
        sim, fabric, _, _ = make_switched(nnodes=16, multicast_fanout=k)
        fabric.send(msg(0, BROADCAST))
        return sim.run()

    # A wider tree is shallower: later leaves arrive sooner.
    assert total_time(8) < total_time(2)


# ----------------------------------------------------------------------
# loss and the explorer's drop hook


def test_switched_loss_drops_frames_deterministically():
    sim = Simulator()
    fabric = SwitchedFabric(
        sim, FabricConfig(backend="switched", loss_rate=1.0), 2,
        rng=np.random.default_rng(0),
    )
    got = []
    fabric.attach(0, got.append)
    fabric.attach(1, got.append)
    fabric.send(msg(0, 1))
    sim.run()
    assert got == []
    assert fabric.stats.lost_frames == 1


@pytest.mark.parametrize("backend", ["ring", "switched"])
def test_drop_policy_attempt_numbering_is_identical_across_backends(backend):
    """The explorer's delay-injection strategy numbers (msg, target)
    attempts through drop_policy; both media must present the same
    deterministic sequence for a broadcast."""
    fabric = _mk(ClusterConfig(nodes=5).with_fabric(backend=backend))
    sim = fabric.sim
    for n in range(5):
        fabric.attach(n, lambda m: None)
    seen = []
    fabric.drop_policy = lambda m, target: (seen.append(target), False)[1]
    fabric.send(msg(1, BROADCAST))
    sim.run()
    assert seen == [0, 2, 3, 4]


def test_forced_drop_suppresses_only_that_target():
    sim, fabric, inboxes, _ = make_switched(nnodes=4, multicast_fanout=2)
    fabric.drop_policy = lambda m, target: target == 2
    fabric.send(msg(0, BROADCAST))
    sim.run()
    assert [len(inboxes[n]) for n in range(4)] == [0, 1, 0, 1]
    assert fabric.stats.lost_frames == 1


def test_forced_drop_does_not_change_other_targets_timing():
    """A lost frame must not perturb surviving deliveries (loss is drawn
    after all tree bookkeeping) — otherwise drop exploration would
    explore timings no real loss pattern produces."""
    sim1, fabric1, _, arrivals1 = make_switched(nnodes=8, multicast_fanout=2)
    fabric1.send(msg(0, BROADCAST))
    sim1.run()
    sim2, fabric2, _, arrivals2 = make_switched(nnodes=8, multicast_fanout=2)
    fabric2.drop_policy = lambda m, target: target == 1
    fabric2.send(msg(0, BROADCAST))
    sim2.run()
    for n in range(2, 8):
        assert arrivals1[n] == arrivals2[n]


# ----------------------------------------------------------------------
# FabricStats: per-link view on both backends


def test_ring_stats_expose_a_single_medium_link():
    sim = Simulator()
    ring = _mk(ClusterConfig(nodes=3))
    for n in range(3):
        ring.attach(n, lambda m: None)
    ring.send(msg(0, 1, nbytes=500))
    ring.send(msg(1, 2, nbytes=500))
    ring.sim.run()
    links = ring.stats.links()
    assert set(links) == {"medium"}
    assert links["medium"].messages == 2
    assert links["medium"].busy_ns == ring.stats.busy_ns
    # The second send queued behind the first: backlog was observed.
    assert links["medium"].peak_backlog_ns > 0


def test_switched_stats_expose_per_port_links():
    sim, fabric, _, _ = make_switched(nnodes=3)
    fabric.send(msg(0, 1))
    fabric.send(msg(0, 2))
    sim.run()
    links = fabric.stats.links()
    assert set(links) == {f"tx[{n}]" for n in range(3)} | {
        f"rx[{n}]" for n in range(3)
    }
    assert links["tx[0]"].messages == 2
    assert links["rx[1]"].messages == 1
    assert links["tx[1]"].messages == 0
    # The second send queued on node 0's egress port only.
    assert links["tx[0]"].peak_backlog_ns > 0
    assert links["rx[1]"].peak_backlog_ns == 0


def test_link_stats_utilisation():
    link = LinkStats()
    link.busy_ns = 250
    assert link.utilisation(1000) == 0.25
    assert link.utilisation(0) == 0.0


def test_format_fabric_stats_renders_both_backends():
    from repro.metrics.report import format_fabric_stats

    ring = _mk(ClusterConfig(nodes=2))
    ring.attach(0, lambda m: None)
    ring.attach(1, lambda m: None)
    ring.send(msg(0, 1))
    ring.sim.run()
    text = format_fabric_stats(ring.stats, ring.sim.now)
    assert "medium" in text and "messages=1" in text

    sim, fabric, _, _ = make_switched(nnodes=40)
    fabric.send(msg(0, 1))
    sim.run()
    text = format_fabric_stats(fabric.stats, sim.now, limit=4)
    assert "tx[0]" in text
    # 80 ports, 4 rows: the rest is summarised, not silently dropped.
    assert "(+76 more links)" in text


# ----------------------------------------------------------------------
# interface basics shared through the base class


def test_attach_validation_is_shared():
    _, fabric, _, _ = make_switched()
    with pytest.raises(ValueError):
        fabric.attach(0, lambda m: None)  # already attached
    with pytest.raises(ValueError):
        fabric.attach(9, lambda m: None)  # out of range


def test_fabric_base_requires_a_station():
    with pytest.raises(ValueError):
        SwitchedFabric(Simulator(), FabricConfig(backend="switched"), 0)
