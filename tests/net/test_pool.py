"""Unit tests for the message/page free-list pools (pure data structures)."""

import numpy as np
import pytest

from repro.net.packet import HEADER_BYTES, Message
from repro.net.pool import MessagePool, PagePool


def _acquire(pool, **kw):
    defaults = dict(
        src=1, dst=2, kind="req", op="svm.read", origin=1, msg_id=7,
        payload=("p", 3), nbytes=1024,
    )
    defaults.update(kw)
    return pool.acquire(**defaults)


def test_acquire_matches_constructed_message_field_for_field():
    pool = MessagePool()
    msg = _acquire(pool)
    ref = Message(1, 2, "req", "svm.read", 1, 7, ("p", 3), 1024)
    for field in ("src", "dst", "kind", "op", "origin", "msg_id", "payload",
                  "nbytes", "load_hint", "reply_scheme", "targets", "span"):
        assert getattr(msg, field) == getattr(ref, field), field
    assert msg.refs == 1
    assert pool.allocated == 1 and pool.reused == 0


def test_release_recycles_and_reuse_resets_every_field():
    pool = MessagePool()
    msg = _acquire(pool)
    msg.load_hint = 9
    first_serial = msg.serial
    pool.release(msg)
    again = _acquire(
        pool, src=5, dst=6, kind="bcast", op="svm.locate", origin=5,
        msg_id=11, payload=None, nbytes=64, reply_scheme="any",
        targets=(1, 2), span=3,
    )
    assert again is msg  # recycled, not reallocated
    assert pool.reused == 1
    assert (again.src, again.dst, again.kind, again.op) == (5, 6, "bcast", "svm.locate")
    assert (again.origin, again.msg_id, again.payload) == (5, 11, None)
    assert again.reply_scheme == "any" and again.targets == (1, 2) and again.span == 3
    assert again.load_hint == 0 and again.refs == 1
    assert again.serial != first_serial  # identity keys must see a fresh message


def test_release_clears_payload_so_recycled_envelopes_pin_nothing():
    pool = MessagePool()
    msg = _acquire(pool, payload=np.zeros(16, dtype=np.uint8), targets=(1,))
    pool.release(msg)
    assert msg.payload is None and msg.targets is None


def test_retain_release_only_last_reference_recycles():
    pool = MessagePool()
    msg = _acquire(pool)
    pool.retain(msg)  # in flight
    pool.retain(msg)  # server
    pool.release(msg)
    pool.release(msg)
    assert _acquire(pool) is not msg  # still held by the creator
    pool.release(msg)
    assert _acquire(pool) is msg


def test_over_release_raises():
    pool = MessagePool()
    msg = _acquire(pool)
    pool.release(msg)
    with pytest.raises(RuntimeError, match="over-released"):
        pool.release(msg)


def test_nbytes_floored_at_header_size_on_reuse():
    pool = MessagePool()
    pool.release(_acquire(pool))
    msg = _acquire(pool, nbytes=1)
    assert msg.nbytes == HEADER_BYTES


def test_page_pool_copies_and_reuses_by_size():
    pool = PagePool()
    frame = np.arange(64, dtype=np.uint8)
    snap = pool.copy_of(frame)
    assert snap is not frame and bytes(snap) == bytes(frame)
    frame[:] = 0
    assert snap[1] == 1  # a real copy, not a view
    pool.give(snap)
    other = np.full(64, 7, dtype=np.uint8)
    again = pool.copy_of(other)
    assert again is snap  # recycled buffer of the matching size
    assert bytes(again) == bytes(other)
    assert pool.copy_of(np.zeros(128, dtype=np.uint8)).nbytes == 128
    assert (pool.allocated, pool.reused) == (2, 1)
