"""Unit tests for multicast (the invalidation transport pattern) and the
NO_REPLY handler result."""

import pytest

from repro.net.remoteop import NO_REPLY, Reply
from repro.sim.process import Compute

from tests.net.conftest import NetRig


def test_multicast_reaches_only_targets():
    rig = NetRig(nnodes=5)
    seen = []

    def handler(n):
        def h(origin, payload):
            seen.append(n)
            yield Compute(10)
            return n

        return h

    for n in range(1, 5):
        rig.ops[n].register("op", handler(n))

    def client():
        replies = yield from rig.ops[0].multicast((1, 3), "op", "x")
        return replies

    task = rig.spawn(client())
    rig.run()
    assert task.result == {1: 1, 3: 3}
    assert sorted(seen) == [1, 3]  # 2 and 4 filtered the frame out
    # One transmission on the ring, not one per target.
    assert rig.ring.stats.broadcasts == 1


def test_multicast_empty_target_set_is_noop():
    rig = NetRig(nnodes=3)

    def client():
        replies = yield from rig.ops[0].multicast((), "op", None)
        return replies

    task = rig.spawn(client())
    rig.run()
    assert task.result == {}
    assert rig.ring.stats.messages == 0


def test_multicast_to_self_rejected():
    rig = NetRig(nnodes=3)

    def client():
        yield from rig.ops[0].multicast((0, 1), "op", None)

    rig.ops[1].register("op", lambda o, p: iter(()))
    task = rig.spawn(client())
    with pytest.raises(Exception):
        rig.run()


def test_multicast_recovers_from_loss():
    rig = NetRig(nnodes=4, loss_rate=0.3, seed=99)
    calls = []

    def handler(n):
        def h(origin, payload):
            calls.append(n)
            yield Compute(10)
            return n * 2

        return h

    for n in (1, 2, 3):
        rig.ops[n].register("op", handler(n))

    def client():
        replies = yield from rig.ops[0].multicast((1, 2, 3), "op", None)
        return replies

    task = rig.spawn(client())
    rig.run()
    assert task.result == {1: 2, 2: 4, 3: 6}
    # At-most-once execution per target despite retransmitted broadcasts.
    assert sorted(calls) == [1, 2, 3]


def test_no_reply_keeps_any_broadcast_pending_until_a_responder():
    """Nodes answering NO_REPLY stay silent and the request is forgotten,
    so a later retransmission can be answered by a node whose state
    changed — the broadcast-manager recovery path."""
    rig = NetRig(nnodes=3)
    for t in rig.transports:
        t.config = t.config.replace(retransmit_timeout=2_000_000)
    state = {"owner": None}

    def handler(n):
        def h(origin, payload):
            yield Compute(10)
            if state["owner"] == n:
                return Reply(f"owner-{n}")
            return NO_REPLY

        return h

    for n in (1, 2):
        rig.ops[n].register("op", handler(n))

    def client():
        value = yield from rig.ops[0].broadcast("op", None, scheme="any")
        return value

    task = rig.spawn(client())
    # Nobody owns at first; ownership appears before the retransmission.
    rig.sim.schedule(1_000_000, lambda: state.update(owner=2))
    rig.run()
    assert task.result == "owner-2"
    assert rig.transports[0].stats.retransmits >= 1


def test_no_reply_to_unicast_is_a_bug():
    rig = NetRig(nnodes=2)

    def handler(origin, payload):
        yield Compute(1)
        return NO_REPLY

    rig.ops[1].register("op", handler)

    def client():
        yield from rig.ops[0].request(1, "op", None)

    rig.spawn(client())
    with pytest.raises(Exception, match="NO_REPLY"):
        rig.run()
