"""Timeline unit tests: window crediting, link series, utilisation."""

import pytest

from repro.obs.timeline import Timeline
from repro.sim.trace import UNSTAMPED


def test_window_width_must_be_positive():
    with pytest.raises(ValueError):
        Timeline(0)


def test_link_busy_splits_across_window_boundaries():
    tl = Timeline(100)
    tl.link_busy("medium", 50, 250)  # crosses two edges
    assert tl.link_window("medium", 0) == 50
    assert tl.link_window("medium", 1) == 100
    assert tl.link_window("medium", 2) == 50
    assert tl.link_window("medium", 3) == 0
    # Total credited equals the interval length.
    assert sum(tl._links["medium"].values()) == 200


def test_link_busy_ignores_unstamped_and_empty_intervals():
    tl = Timeline(100)
    tl.link_busy("medium", UNSTAMPED, 50)
    tl.link_busy("medium", 10, UNSTAMPED)
    tl.link_busy("medium", 70, 70)
    assert tl.links() == []


def test_span_credits_busy_and_observes_duration_at_close():
    tl = Timeline(100)
    tl.span("fault.read", 80, 180)
    counter = tl.metrics.counters["span.fault.read.busy_ns"]
    assert counter.windows == {0: 20, 1: 80}
    hist = tl.metrics.hist_window("span.fault.read.ns", 1)
    assert hist is not None and hist.count == 1 and hist.max == 100
    # Nothing observed in the opening window's histogram.
    assert tl.metrics.hist_window("span.fault.read.ns", 0) is None


def test_span_guards_unstamped_and_negative_duration():
    tl = Timeline(100)
    tl.span("x", UNSTAMPED, 50)
    tl.span("x", 50, UNSTAMPED)
    tl.span("x", 90, 10)
    assert tl.metrics.counters == {} and tl.metrics.histograms == {}
    # Zero-length spans still count (duration 0 at the close window).
    tl.span("x", 40, 40)
    assert tl.metrics.hist_window("span.x.ns", 0).count == 1


def test_nwindows_covers_both_time_and_data():
    tl = Timeline(100)
    assert tl.nwindows(0) == 1
    assert tl.nwindows(250) == 3  # ceil
    tl.link_busy("m", 950, 980)  # data beyond total_ns
    assert tl.max_window() == 9
    assert tl.nwindows(250) == 10


def test_link_utilisation_is_the_busiest_link():
    tl = Timeline(100)
    tl.link_busy("a", 0, 30)
    tl.link_busy("b", 0, 80)
    assert tl.link_utilisation(0) == pytest.approx(0.8)
    assert tl.link_utilisation(5) == 0.0


def test_busiest_links_sorted_and_deterministic_under_ties():
    tl = Timeline(100)
    tl.link_busy("z", 0, 40)
    tl.link_busy("a", 100, 140)  # same total as z, later window
    tl.link_busy("big", 0, 250)
    rows = tl.busiest_links(total_ns=300)
    assert [name for name, _, _ in rows] == ["big", "a", "z"]
    name, busy, peak = rows[0]
    assert busy == 250 and peak == pytest.approx(1.0)
    assert tl.busiest_links(300, limit=1) == rows[:1]


def test_link_series_is_dense_over_requested_windows():
    tl = Timeline(100)
    tl.link_busy("m", 50, 120)
    series = tl.link_series(["m", "ghost"], nwindows=3)
    assert series["m"] == [50, 20, 0]
    assert series["ghost"] == [0, 0, 0]


def test_clock_bound_recording_skips_until_bound():
    tl = Timeline(100)
    tl.count("ev")  # no clock bound yet: UNSTAMPED, dropped
    assert tl.metrics.counters == {}
    now = [250]
    tl.bind_clock(lambda: now[0])
    tl.count("ev")
    tl.observe("lat", 7.0)
    tl.gauge("lvl", 3.0)
    assert tl.metrics.counter_window("ev", 2) == 1
    assert tl.metrics.hist_window("lat", 2).count == 1
    assert tl.metrics.gauge_window("lvl", 2) == (3.0, 3.0)
