"""Span tracer unit tests: the no-op fast path, clock stamping, tree
queries, and the JSONL round-trip."""

from repro.obs import NULL_OBS, NULL_SPAN, Observability
from repro.obs.span import UNSTAMPED, Span, SpanTracer


def _clocked(start: int = 0) -> tuple[SpanTracer, list[int]]:
    tracer = SpanTracer()
    now = [start]
    tracer.bind_clock(lambda: now[0])
    return tracer, now


def test_disabled_tracer_hands_back_null_span():
    tracer = SpanTracer(enabled=False)
    assert not tracer
    span = tracer.span_begin("fault.read", node=1)
    assert span is NULL_SPAN
    tracer.span_end(span)  # must not blow up or mutate NULL_SPAN
    assert NULL_SPAN.start == UNSTAMPED and NULL_SPAN.end == UNSTAMPED
    assert len(tracer) == 0


def test_null_obs_is_falsy_and_silent():
    assert not NULL_OBS
    span = NULL_OBS.span_begin("fault.read", node=0)
    assert span.sid == 0
    NULL_OBS.span_end(span)
    NULL_OBS.observe("anything", 1)
    NULL_OBS.gauge("anything", 1)
    NULL_OBS.interval(0, "compute", 0, 10)
    assert len(NULL_OBS.spans) == 0
    assert NULL_OBS.metrics.histograms == {}


def test_span_ids_and_durations():
    tracer, now = _clocked()
    root = tracer.span_begin("fault.read", node=1, page=7)
    assert root.sid == 1 and root.parent == 0
    assert root.open and root.duration is None
    now[0] = 25
    tracer.span_end(root)
    assert root.end == 25 and root.duration == 25
    assert root.attrs == {"page": 7}


def test_parent_accepts_span_id_or_none():
    tracer, _ = _clocked()
    root = tracer.span_begin("fault.read", node=1)
    by_span = tracer.span_begin("rpc:svm.read", parent=root, node=1)
    by_id = tracer.span_begin("serve:svm.read", parent=by_span.sid, node=0)
    orphan = tracer.span_begin("fault.write", parent=None, node=2)
    assert by_span.parent == root.sid
    assert by_id.parent == by_span.sid
    assert orphan.parent == 0
    assert tracer.roots() == [root, orphan]
    assert tracer.children(root) == [by_span]
    assert tracer.subtree(root) == [root, by_span, by_id]


def test_explicit_start_overrides_clock():
    # Write faults start their latency clock before the span can open.
    tracer, now = _clocked(start=100)
    span = tracer.span_begin("fault.write", node=0, start=40)
    now[0] = 140
    tracer.span_end(span)
    assert span.start == 40 and span.duration == 100


def test_unbound_clock_stamps_unstamped_not_zero():
    tracer = SpanTracer()
    span = tracer.span_begin("fault.read", node=0)
    assert span.start == UNSTAMPED
    tracer.span_end(span)
    assert span.end == UNSTAMPED and span.duration is None


def test_select_matches_attrs():
    tracer, _ = _clocked()
    tracer.span_begin("fault.read", node=0, page=1)
    wanted = tracer.span_begin("fault.read", node=1, page=2)
    assert tracer.select("fault.read", page=2) == [wanted]
    assert tracer.select("fault.read", page=9) == []


def test_save_load_roundtrip(tmp_path):
    tracer, now = _clocked()
    root = tracer.span_begin("fault.read", node=1, page=3)
    child = tracer.span_begin("rpc:svm.read", parent=root, node=1)
    now[0] = 7
    tracer.span_end(child)
    now[0] = 9
    tracer.span_end(root)
    leak = tracer.span_begin("disk.read", node=0)  # stays open
    path = tmp_path / "spans.jsonl"
    assert tracer.save(str(path)) == 3

    loaded = SpanTracer.load(str(path))
    assert len(loaded) == 3
    got = loaded.get(root.sid)
    assert got is not None
    assert (got.name, got.node, got.start, got.end) == ("fault.read", 1, 0, 9)
    assert got.attrs == {"page": 3}
    assert loaded.get(child.sid).parent == root.sid
    assert loaded.open_spans()[0].sid == leak.sid
    # Loaded tracers keep allocating past the highest loaded id.
    assert loaded.span_begin("new", node=0).sid == leak.sid + 1


def test_observability_span_stats_aggregates_by_name():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    for duration in (10, 20, 30):
        span = obs.span_begin("fault.read", node=0)
        now[0] += duration
        obs.span_end(span)
    open_span = obs.span_begin("disk.read", node=0)
    assert open_span.open  # open spans have no duration: excluded
    stats = obs.span_stats()
    assert set(stats) == {"fault.read"}
    assert stats["fault.read"]["count"] == 3
    assert stats["fault.read"]["total_ns"] == 60
    assert stats["fault.read"]["max_ns"] == 30
