"""Deterministic head-based sampling: pure hash, drop propagation,
and the accounting contract for dropped spans."""

import pytest

from repro.obs import Observability
from repro.obs.sample import keep_root, mix64
from repro.obs.span import SpanTracer


def test_mix64_is_a_pure_64bit_function():
    assert mix64(1) == mix64(1)
    assert mix64(1) != mix64(2)
    for x in (0, 1, 2**63, 2**64 - 1):
        assert 0 <= mix64(x) < 2**64


def test_keep_root_rate_roughly_matches_and_is_stable():
    kept = [sid for sid in range(1, 10_001) if keep_root(sid, 64)]
    # A pure hash at rate 1/64 over 10k ids: expect ~156, allow slack.
    assert 100 <= len(kept) <= 220
    assert kept == [sid for sid in range(1, 10_001) if keep_root(sid, 64)]
    assert all(keep_root(sid, 1) for sid in range(1, 100))


def test_tracer_rejects_bad_rate():
    with pytest.raises(ValueError):
        SpanTracer(sample_every=0)


def test_sampled_out_root_gets_negative_sid_and_is_not_recorded():
    tracer = SpanTracer(sample_every=2)
    tracer.bind_clock(lambda: 100)
    roots = [tracer.span_begin(f"r{i}", node=0) for i in range(64)]
    dropped = [s for s in roots if s.sid < 0]
    kept = [s for s in roots if s.sid > 0]
    assert dropped and kept
    assert tracer.dropped == len(dropped)
    assert [s.sid for s in tracer.spans] == [s.sid for s in kept]
    # sid allocation is identical with or without sampling: the kept
    # sids are a subset of the 1..64 sequence, not a renumbering.
    assert {abs(s.sid) for s in roots} == set(range(1, 65))


def test_drop_propagates_to_children_via_negative_parent():
    tracer = SpanTracer(sample_every=2)
    tracer.bind_clock(lambda: 0)
    roots = [tracer.span_begin(f"r{i}", node=0) for i in range(32)]
    victim = next(s for s in roots if s.sid < 0)
    child = tracer.span_begin("child", parent=victim, node=1)
    grandchild = tracer.span_begin("gc", parent=child.sid, node=1)
    assert child.sid < 0 and grandchild.sid < 0
    # Kept parents keep their subtree.
    survivor = next(s for s in roots if s.sid > 0)
    kid = tracer.span_begin("kid", parent=survivor, node=1)
    assert kid.sid > 0


def test_span_end_still_stamps_dropped_spans():
    tracer = SpanTracer(sample_every=2)
    now = [0]
    tracer.bind_clock(lambda: now[0])
    roots = [tracer.span_begin(f"r{i}", node=0) for i in range(32)]
    victim = next(s for s in roots if s.sid < 0)
    now[0] = 500
    tracer.span_end(victim)
    assert victim.end == 500  # accounting still sees the interval


def test_dropped_categorized_spans_reach_the_profiler():
    # The tentpole's completeness guarantee: sampling must not bias the
    # profiler's attribution, only the kept span *records*.
    def run(sample_every):
        obs = Observability(sample_every=sample_every)
        now = [0]
        obs.bind_clock(lambda: now[0])
        for i in range(64):
            span = obs.span_begin("fault.read", node=0, page=i)
            now[0] += 1000
            obs.span_end(span)
        return obs

    sampled, full = run(64), run(1)
    assert len(sampled.spans.spans) < len(full.spans.spans)
    got = sampled.breakdown(nnodes=1, total_ns=64_000)
    want = full.breakdown(nnodes=1, total_ns=64_000)
    assert got == want  # identical fault attribution despite drops


def test_dropped_spans_reach_the_timeline():
    def run(sample_every):
        obs = Observability(timeline_window_ns=1000, sample_every=sample_every)
        now = [0]
        obs.bind_clock(lambda: now[0])
        for i in range(64):
            span = obs.span_begin("fault.read", node=0, page=i)
            now[0] += 500
            obs.span_end(span)
        counter = obs.timeline.metrics.counters["span.fault.read.busy_ns"]
        return dict(counter.windows)

    assert run(64) == run(1)  # windowed series identical despite drops
