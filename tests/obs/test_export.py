"""Chrome trace-event exporter tests: valid JSON, monotone timestamps,
lane nesting, and the validator's teeth."""

import json

from repro.obs import Observability
from repro.obs.export import chrome_trace, save_chrome_trace, validate_chrome_trace


def _traced_obs() -> Observability:
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    root = obs.span_begin("fault.read", node=1, page=3)
    rpc = obs.span_begin("rpc:svm.read", parent=root, node=1)
    serve = obs.span_begin("serve:svm.read", parent=rpc, node=0)
    now[0] = 1500
    obs.span_end(serve)
    now[0] = 2000
    obs.span_end(rpc)
    now[0] = 2500
    obs.span_end(root)
    return obs


def test_export_is_valid_json_with_monotone_ts(tmp_path):
    path = tmp_path / "trace.json"
    count = save_chrome_trace(str(path), _traced_obs())
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)  # valid JSON or this raises
    events = doc["traceEvents"]
    assert len(events) == count
    ts = [ev["ts"] for ev in events]
    assert ts == sorted(ts), "timestamps must be monotone"
    assert validate_chrome_trace(doc) == []


def test_metadata_events_come_first_and_name_nodes():
    doc = chrome_trace(_traced_obs())
    events = doc["traceEvents"]
    meta = [ev for ev in events if ev["ph"] == "M"]
    assert {ev["args"]["name"] for ev in meta} == {"node 0", "node 1"}
    first_x = next(i for i, ev in enumerate(events) if ev["ph"] == "X")
    assert all(ev["ph"] == "M" for ev in events[:first_x])


def test_units_are_microseconds_and_pid_is_node():
    doc = chrome_trace(_traced_obs())
    root = next(ev for ev in doc["traceEvents"] if ev["name"] == "fault.read")
    assert root["pid"] == 1
    assert root["ts"] == 0.0 and root["dur"] == 2.5  # 2500 ns = 2.5 us
    assert root["cat"] == "fault"
    assert root["args"]["page"] == 3


def test_same_node_children_share_their_parents_lane():
    doc = chrome_trace(_traced_obs())
    by_name = {ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"}
    # rpc child nests inside the fault root on node 1: same display lane.
    assert by_name["rpc:svm.read"]["tid"] == by_name["fault.read"]["tid"]
    # The serve span is on another node (another pid entirely).
    assert by_name["serve:svm.read"]["pid"] == 0


def test_unrelated_overlapping_spans_get_distinct_lanes():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    a = obs.span_begin("fault.read", node=0)
    b = obs.span_begin("fault.write", node=0)  # overlaps a, not related
    now[0] = 10
    obs.span_end(a)
    obs.span_end(b)
    doc = chrome_trace(obs)
    lanes = {ev["name"]: ev["tid"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert lanes["fault.read"] != lanes["fault.write"]


def test_open_spans_export_clamped_with_marker():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    obs.span_begin("disk.read", node=0)  # never closed
    doc = chrome_trace(obs, total_ns=4000)
    ev = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert ev["dur"] == 4.0
    assert ev["args"]["open"] is True
    assert validate_chrome_trace(doc) == []


def test_validator_rejects_broken_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["missing traceEvents list"]
    bad_phase = {"traceEvents": [
        {"name": "x", "ph": "B", "ts": 0.0, "pid": 0, "tid": 0},
    ]}
    assert any("phase" in p for p in validate_chrome_trace(bad_phase))
    non_monotone = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 5.0, "dur": 1.0, "pid": 0, "tid": 0},
        {"name": "b", "ph": "X", "ts": 1.0, "dur": 1.0, "pid": 0, "tid": 0},
    ]}
    assert any("monotone" in p for p in validate_chrome_trace(non_monotone))
    bad_dur = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0.0, "dur": -2.0, "pid": 0, "tid": 0},
    ]}
    assert any("dur" in p for p in validate_chrome_trace(bad_dur))
    missing_key = {"traceEvents": [{"name": "a", "ph": "X", "ts": 0.0, "dur": 1.0}]}
    problems = validate_chrome_trace(missing_key)
    assert any("pid" in p for p in problems) and any("tid" in p for p in problems)


# ---------------------------------------------------------------------------
# windowed timeline exports (JSONL + OpenMetrics)


def _windowed_obs() -> tuple[Observability, int]:
    """A small observed 'run': 2 nodes, 3 windows of 1000 ns."""
    obs = Observability(timeline_window_ns=1000)
    now = [0]
    obs.bind_clock(lambda: now[0])
    span = obs.span_begin("fault.read", node=0, page=7)
    now[0] = 1500
    obs.span_end(span)
    obs.observe("fanout", 3)
    obs.gauge("frames.resident", 12)
    obs.timeline.link_busy("medium", 500, 2600)
    disk = obs.span_begin("disk.read", node=1)
    now[0] = 2500
    obs.span_end(disk)
    return obs, 3000


def test_timeline_records_meta_first_sorted_and_valid(tmp_path):
    from repro.obs.export import (
        TIMELINE_SCHEMA,
        save_timeline_jsonl,
        timeline_records,
        validate_timeline_jsonl,
    )

    obs, total_ns = _windowed_obs()
    records = timeline_records(obs, 2, total_ns)
    meta = records[0]
    assert meta["kind"] == "meta" and meta["schema"] == TIMELINE_SCHEMA
    assert meta["windows"] == 3 and meta["nodes"] == 2
    kinds = {rec["kind"] for rec in records[1:]}
    assert {"hist", "counter", "link", "profile"} <= kinds
    # Deterministic order: sorted by (window, kind, name, node).
    keyed = [
        (r["window"], r["kind"], r.get("name", ""), r.get("node", -1))
        for r in records[1:]
    ]
    order = {k: i for i, k in enumerate(("hist", "counter", "gauge", "link", "profile"))}
    assert keyed == sorted(keyed, key=lambda k: (k[0], order[k[1]], k[2], k[3]))
    # Dense profile: every (node, window) pair present and partitioned.
    profiles = [r for r in records if r["kind"] == "profile"]
    assert len(profiles) == 2 * 3
    path = tmp_path / "tl.jsonl"
    count = save_timeline_jsonl(str(path), obs, 2, total_ns)
    lines = path.read_text().splitlines()
    assert len(lines) == count == len(records)
    assert validate_timeline_jsonl(lines) == []


def test_timeline_export_requires_a_timeline():
    import pytest

    from repro.obs.export import timeline_records

    with pytest.raises(ValueError):
        timeline_records(Observability(), 1, 100)


def test_timeline_validator_rejects_broken_documents():
    import json as _json

    from repro.obs.export import timeline_records, validate_timeline_jsonl

    obs, total_ns = _windowed_obs()
    lines = [_json.dumps(r) for r in timeline_records(obs, 2, total_ns)]

    assert validate_timeline_jsonl([]) == ["no records"]
    assert any("not JSON" in p for p in validate_timeline_jsonl(["{nope"]))
    # Meta must come first.
    assert any("meta" in p for p in validate_timeline_jsonl(lines[1:]))
    # Wrong schema.
    bad_meta = dict(_json.loads(lines[0]), schema="repro.timeline/999")
    problems = validate_timeline_jsonl([_json.dumps(bad_meta), *lines[1:]])
    assert any("schema" in p for p in problems)
    # A window index outside the meta's range.
    rogue = {"kind": "counter", "window": 99, "name": "x", "value": 1}
    assert any(
        "out of" in p for p in validate_timeline_jsonl([lines[0], _json.dumps(rogue)])
    )
    # Tampered profile partition: categories no longer sum to the window.
    doctored = []
    for line in lines:
        rec = _json.loads(line)
        if rec["kind"] == "profile":
            rec["idle"] += 1
        doctored.append(_json.dumps(rec))
    assert any("sum" in p for p in validate_timeline_jsonl(doctored))


def test_openmetrics_round_trip_and_families():
    from repro.obs.export import openmetrics, validate_openmetrics

    obs, total_ns = _windowed_obs()
    text = openmetrics(obs, 2, total_ns)
    assert validate_openmetrics(text) == []
    assert text.endswith("# EOF\n")
    # Whole-run summary family with quantiles and count/sum.
    assert 'repro_fanout{quantile="0.99"}' in text
    assert "repro_fanout_count 1" in text
    assert "# TYPE repro_frames_resident gauge" in text
    # Windowed series carry window labels.
    assert 'repro_tl_span_fault_read_ns_p99{window="1"}' in text
    assert 'repro_link_busy_ns{link="medium",window="0"} 500' in text
    assert 'repro_link_busy_ns{link="medium",window="1"} 1000' in text
    assert 'repro_link_utilisation{window="1"} 1.0' in text
    assert 'repro_profile_ns{node="0",category="fault",window="0"} 1000' in text


def test_openmetrics_validator_rejects_broken_expositions():
    from repro.obs.export import validate_openmetrics

    assert validate_openmetrics("") == ["empty exposition"]
    assert any("# EOF" in p for p in validate_openmetrics("# TYPE x gauge\nx 1\n"))
    no_type = "orphan 1\n# EOF\n"
    assert any("no TYPE" in p for p in validate_openmetrics(no_type))
    bad_kind = "# TYPE x histogram\nx 1\n# EOF\n"
    assert any("unsupported type" in p for p in validate_openmetrics(bad_kind))
    dup = "# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n"
    assert any("duplicate TYPE" in p for p in validate_openmetrics(dup))
    rogue_quantile = '# TYPE x gauge\nx{quantile="0.5"} 1\n# EOF\n'
    assert any("non-summary" in p for p in validate_openmetrics(rogue_quantile))
    bare_summary = "# TYPE x summary\nx 1\n# EOF\n"
    assert any("without quantile" in p for p in validate_openmetrics(bare_summary))
    after_eof = "# TYPE x gauge\nx 1\n# EOF\n# TYPE y gauge\n"
    assert any("after # EOF" in p for p in validate_openmetrics(after_eof))
