"""Chrome trace-event exporter tests: valid JSON, monotone timestamps,
lane nesting, and the validator's teeth."""

import json

from repro.obs import Observability
from repro.obs.export import chrome_trace, save_chrome_trace, validate_chrome_trace


def _traced_obs() -> Observability:
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    root = obs.span_begin("fault.read", node=1, page=3)
    rpc = obs.span_begin("rpc:svm.read", parent=root, node=1)
    serve = obs.span_begin("serve:svm.read", parent=rpc, node=0)
    now[0] = 1500
    obs.span_end(serve)
    now[0] = 2000
    obs.span_end(rpc)
    now[0] = 2500
    obs.span_end(root)
    return obs


def test_export_is_valid_json_with_monotone_ts(tmp_path):
    path = tmp_path / "trace.json"
    count = save_chrome_trace(str(path), _traced_obs())
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)  # valid JSON or this raises
    events = doc["traceEvents"]
    assert len(events) == count
    ts = [ev["ts"] for ev in events]
    assert ts == sorted(ts), "timestamps must be monotone"
    assert validate_chrome_trace(doc) == []


def test_metadata_events_come_first_and_name_nodes():
    doc = chrome_trace(_traced_obs())
    events = doc["traceEvents"]
    meta = [ev for ev in events if ev["ph"] == "M"]
    assert {ev["args"]["name"] for ev in meta} == {"node 0", "node 1"}
    first_x = next(i for i, ev in enumerate(events) if ev["ph"] == "X")
    assert all(ev["ph"] == "M" for ev in events[:first_x])


def test_units_are_microseconds_and_pid_is_node():
    doc = chrome_trace(_traced_obs())
    root = next(ev for ev in doc["traceEvents"] if ev["name"] == "fault.read")
    assert root["pid"] == 1
    assert root["ts"] == 0.0 and root["dur"] == 2.5  # 2500 ns = 2.5 us
    assert root["cat"] == "fault"
    assert root["args"]["page"] == 3


def test_same_node_children_share_their_parents_lane():
    doc = chrome_trace(_traced_obs())
    by_name = {ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"}
    # rpc child nests inside the fault root on node 1: same display lane.
    assert by_name["rpc:svm.read"]["tid"] == by_name["fault.read"]["tid"]
    # The serve span is on another node (another pid entirely).
    assert by_name["serve:svm.read"]["pid"] == 0


def test_unrelated_overlapping_spans_get_distinct_lanes():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    a = obs.span_begin("fault.read", node=0)
    b = obs.span_begin("fault.write", node=0)  # overlaps a, not related
    now[0] = 10
    obs.span_end(a)
    obs.span_end(b)
    doc = chrome_trace(obs)
    lanes = {ev["name"]: ev["tid"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert lanes["fault.read"] != lanes["fault.write"]


def test_open_spans_export_clamped_with_marker():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    obs.span_begin("disk.read", node=0)  # never closed
    doc = chrome_trace(obs, total_ns=4000)
    ev = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert ev["dur"] == 4.0
    assert ev["args"]["open"] is True
    assert validate_chrome_trace(doc) == []


def test_validator_rejects_broken_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["missing traceEvents list"]
    bad_phase = {"traceEvents": [
        {"name": "x", "ph": "B", "ts": 0.0, "pid": 0, "tid": 0},
    ]}
    assert any("phase" in p for p in validate_chrome_trace(bad_phase))
    non_monotone = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 5.0, "dur": 1.0, "pid": 0, "tid": 0},
        {"name": "b", "ph": "X", "ts": 1.0, "dur": 1.0, "pid": 0, "tid": 0},
    ]}
    assert any("monotone" in p for p in validate_chrome_trace(non_monotone))
    bad_dur = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0.0, "dur": -2.0, "pid": 0, "tid": 0},
    ]}
    assert any("dur" in p for p in validate_chrome_trace(bad_dur))
    missing_key = {"traceEvents": [{"name": "a", "ph": "X", "ts": 0.0, "dur": 1.0}]}
    problems = validate_chrome_trace(missing_key)
    assert any("pid" in p for p in problems) and any("tid" in p for p in problems)
