"""End-to-end observability invariants on real runs.

The three acceptance properties of the observability layer:

1. *Zero perturbation* — enabling observability changes neither the
   simulated runtime nor the number of events executed (hooks are pure
   observation: no scheduling, no effects, no RNG).
2. *Span-root == latency* — every ``svm.read_fault`` / ``svm.write_fault``
   trace event belongs to a span tree whose root duration equals the
   fault's measured service latency (the ``ns`` field / the
   ``*_fault_ns`` counters).
3. *Exact attribution* — the profiler partitions each node's ``[0, T]``
   so the per-node breakdown sums to T with zero error.
"""

import json

import pytest

from repro.api.ivy import Ivy
from repro.apps.dotprod import DotProductApp
from repro.config import ClusterConfig
from repro.obs import Observability
from repro.obs.export import validate_chrome_trace
from repro.sim.trace import TraceRecorder

NPROCS = 2


def _run(obs: Observability | None = None, trace=None):
    config = ClusterConfig(nodes=NPROCS)
    app = DotProductApp(NPROCS, n=2048)
    kwargs = {}
    if trace is not None:
        kwargs["trace"] = trace
    ivy = Ivy(config, obs=obs, **kwargs)
    result = ivy.run(app.main)
    app.check(result)
    return ivy


def test_observability_does_not_perturb_the_simulation():
    base = _run()
    observed = _run(obs=Observability())
    assert observed.time_ns == base.time_ns
    assert (
        observed.cluster.sim.events_executed == base.cluster.sim.events_executed
    )
    assert observed.cluster.total_counters().snapshot() == (
        base.cluster.total_counters().snapshot()
    )


def test_every_fault_has_a_span_tree_rooted_at_its_latency():
    obs = Observability()
    trace = TraceRecorder(categories={"svm.read_fault", "svm.write_fault"})
    ivy = _run(obs=obs, trace=trace)
    del ivy
    faults = list(trace)
    assert faults, "a 2-node dotprod run must fault"
    roots = [s for s in obs.spans.roots() if s.name.startswith("fault.")]
    # Match each fault event to a root span closing at the event's time
    # on the faulting node, for the same page, with duration == ns.
    unmatched = list(roots)
    for ev in faults:
        kind = "fault.read" if ev.category == "svm.read_fault" else "fault.write"
        hit = next(
            (
                s
                for s in unmatched
                if s.name == kind
                and s.node == ev.fields["node"]
                and s.attrs.get("page") == ev.fields["page"]
                and s.end == ev.time
                and s.duration == ev.fields["ns"]
            ),
            None,
        )
        assert hit is not None, f"no span tree for fault event {ev.fields}"
        unmatched.remove(hit)
        # The root's tree reaches the nodes that serviced the fault.
        subtree = obs.spans.subtree(hit)
        assert all(not s.open for s in subtree)


def test_fault_latency_histograms_cross_check_the_counters():
    obs = Observability()
    ivy = _run(obs=obs)
    totals = ivy.cluster.total_counters()
    hists = obs.metrics.histograms
    assert hists["fault.read_ns"].count == totals["read_faults"]
    assert hists["fault.read_ns"].total == totals["read_fault_ns"]
    if totals["write_faults"]:
        assert hists["fault.write_ns"].count == totals["write_faults"]
        assert hists["fault.write_ns"].total == totals["write_fault_ns"]


def test_no_spans_left_open_and_profile_sums_exactly():
    obs = Observability()
    ivy = _run(obs=obs)
    assert obs.spans.open_spans() == []
    total = ivy.time_ns
    per_node = obs.breakdown(NPROCS, total)
    for node, counts in per_node.items():
        assert sum(counts.values()) == total, f"node {node} attribution drifted"


def test_cli_export_and_validate_roundtrip(tmp_path, capsys):
    from repro.obs.__main__ import main

    out = tmp_path / "dotprod_trace.json"
    assert main(["export", "--app", "dotprod", "--nodes", "2", "--out", str(out)]) == 0
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert validate_chrome_trace(doc) == []
    assert main(["validate", str(out)]) == 0
    assert "valid trace-event JSON" in capsys.readouterr().out


def test_cli_report_and_top(capsys):
    from repro.obs.__main__ import main

    assert main(["report", "--app", "dotprod", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "fault.read_ns" in out  # instruments table
    assert "compute" in out  # profile table
    assert main(["top", "--app", "dotprod", "--nodes", "2"]) == 0
    assert "fault.read" in capsys.readouterr().out


def test_cli_validate_rejects_garbage(tmp_path, capsys):
    from repro.obs.__main__ import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "X"}]}')
    assert main(["validate", str(bad)]) == 1
    assert "missing" in capsys.readouterr().out


def test_config_obs_flag_enables_a_private_bundle():
    ivy = _run()  # default: shared NULL_OBS
    assert not ivy.obs
    config = ClusterConfig(nodes=NPROCS, obs=True)
    app = DotProductApp(NPROCS, n=2048)
    observed = Ivy(config)
    observed.run(app.main)
    assert observed.obs
    assert len(observed.obs.spans) > 0
    # The shared disabled instance never accumulates state.
    from repro.obs import NULL_OBS

    assert len(NULL_OBS.spans) == 0


@pytest.mark.parametrize(
    "algorithm", ["centralized", "fixed", "dynamic", "broadcast"]
)
def test_all_manager_algorithms_close_their_spans(algorithm):
    config = ClusterConfig(nodes=NPROCS).with_svm(algorithm=algorithm)
    obs = Observability()
    app = DotProductApp(NPROCS, n=1024)
    ivy = Ivy(config, obs=obs)
    app.check(ivy.run(app.main))
    assert obs.spans.open_spans() == []
    assert [s for s in obs.spans.roots() if s.name.startswith("fault.")]
