"""SLO engine tests: the spec grammar, window scoring, onset rules."""

import pytest

from repro.obs.slo import AGGS, SloSpec, evaluate, parse_slo
from repro.obs.timeline import Timeline


# ---------------------------------------------------------------------------
# grammar


def test_parse_agg_spec_with_units():
    spec = parse_slo("p99(fault.read_ns) < 60ms")
    assert spec == SloSpec(
        "p99(fault.read_ns) < 60ms", "p99", "fault.read_ns", "<", 60_000_000
    )
    assert parse_slo("mean(x) <= 2us").threshold == 2_000
    assert parse_slo("max(x) < 1s").threshold == 1_000_000_000
    assert parse_slo("count(span.serve:svm.read.busy_ns) < 500").threshold == 500


def test_parse_link_utilisation_percent_and_ratio():
    assert parse_slo("link_utilisation < 90%").threshold == pytest.approx(0.9)
    assert parse_slo("link_utilisation <= 0.75").threshold == 0.75
    assert parse_slo("link_utilisation <= 0.75").op == "<="


@pytest.mark.parametrize(
    "junk",
    [
        "p42(x) < 5",  # unknown aggregation
        "p99(x) > 5",  # only upper bounds
        "p99(x) < 5% ",  # % needs link_utilisation
        "link_utilisation < 5ms",  # wrong unit
        "utterly wrong",
    ],
)
def test_parse_rejects_junk_with_grammar_hint(junk):
    with pytest.raises(ValueError):
        parse_slo(junk)


def test_holds_respects_operator():
    lt = parse_slo("max(x) < 10")
    le = parse_slo("max(x) <= 10")
    assert lt.holds(9) and not lt.holds(10)
    assert le.holds(10) and not le.holds(11)
    assert set(AGGS) == {"p50", "p90", "p95", "p99", "max", "mean", "count"}


# ---------------------------------------------------------------------------
# evaluation


def _loaded_timeline():
    tl = Timeline(100)
    # Window 0: fast (5ns), window 2: slow (900ns); window 1 idle.
    tl.observe("lat", 5, t=10)
    tl.observe("lat", 900, t=250)
    tl.link_busy("m", 0, 30)     # window 0: 30% util
    tl.link_busy("m", 200, 290)  # window 2: 90% util
    return tl


def test_evaluate_finds_first_violation_per_spec():
    tl = _loaded_timeline()
    report = evaluate(tl, 300, [parse_slo("p99(lat) < 100ns")])
    (res,) = report.results
    assert res.values == [5, None, 900]
    assert res.first_violation == 2 and not res.ok
    assert report.saturation_onset == 2 and not report.ok


def test_idle_window_never_violates():
    tl = _loaded_timeline()
    report = evaluate(tl, 300, [parse_slo("p99(lat) < 1ns")])
    (res,) = report.results
    # Window 1 has no data: None, not a violation.
    assert res.values[1] is None
    assert res.first_violation == 0


def test_link_utilisation_spec_and_onset_is_min_across_specs():
    tl = _loaded_timeline()
    report = evaluate(
        tl, 300,
        [parse_slo("link_utilisation < 50%"), parse_slo("p99(lat) < 100ns")],
    )
    util, lat = report.results
    assert util.values == [pytest.approx(0.3), 0.0, pytest.approx(0.9)]
    assert util.first_violation == 2
    assert report.saturation_onset == 2
    # A stricter latency target moves the onset earlier.
    report2 = evaluate(
        tl, 300,
        [parse_slo("link_utilisation < 50%"), parse_slo("p99(lat) < 1ns")],
    )
    assert report2.saturation_onset == 0


def test_link_utilisation_without_links_is_no_data():
    tl = Timeline(100)
    tl.observe("lat", 5, t=10)
    report = evaluate(tl, 100, [parse_slo("link_utilisation < 1%")])
    (res,) = report.results
    assert res.values == [None]
    assert res.ok


def test_count_falls_back_to_windowed_counters():
    tl = Timeline(100)
    tl.span("serve", 10, 40)
    tl.span("serve", 50, 70)
    report = evaluate(
        tl, 100, [parse_slo("count(span.serve.busy_ns) < 40")]
    )
    (res,) = report.results
    assert res.values == [50.0]  # busy-ns credited into window 0
    assert res.first_violation == 0


def test_passing_report_and_summary_shape():
    tl = _loaded_timeline()
    report = evaluate(
        tl, 300, [parse_slo("p99(lat) < 1ms"), parse_slo("link_utilisation <= 90%")]
    )
    assert report.ok and report.saturation_onset is None
    doc = report.summary()
    assert doc["ok"] is True
    assert doc["saturation_onset_window"] is None
    assert doc["windows"] == 3 and doc["window_ns"] == 100
    assert [s["spec"] for s in doc["specs"]] == [
        "p99(lat) < 1ms", "link_utilisation <= 90%"
    ]
    assert all(s["first_violation_window"] is None for s in doc["specs"])
