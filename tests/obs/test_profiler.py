"""Profiler unit tests: the partition invariant (each node's breakdown
sums to T exactly), overlap precedence, and interval hygiene."""

from repro.obs import CATEGORIES, PRECEDENCE, Observability
from repro.obs.profiler import SimProfiler


def test_breakdown_partitions_the_timeline_exactly():
    prof = SimProfiler()
    prof.interval(0, "compute", 10, 40)
    prof.interval(0, "fault", 35, 60)  # overlaps compute
    prof.interval(0, "disk", 50, 55)  # overlaps fault
    out = prof.breakdown(0, 100)
    assert sum(out.values()) == 100
    assert set(out) == set(CATEGORIES)
    # [0,10) idle, [10,40) compute, [40,50) fault, [50,55) disk, [55,60) fault
    assert out == {"compute": 30, "fault": 15, "disk": 5, "network": 0, "idle": 50}


def test_precedence_order_resolves_full_overlap():
    for winner_index, winner in enumerate(PRECEDENCE):
        prof = SimProfiler()
        for cat in PRECEDENCE[winner_index:]:
            prof.interval(0, cat, 0, 10)
        assert prof.breakdown(0, 10)[winner] == 10


def test_intervals_clamp_to_the_run_window():
    prof = SimProfiler()
    prof.interval(0, "compute", 90, 250)  # runs past T
    out = prof.breakdown(0, 100)
    assert out["compute"] == 10 and out["idle"] == 90
    assert sum(out.values()) == 100


def test_degenerate_intervals_are_dropped():
    prof = SimProfiler()
    prof.interval(0, "compute", 5, 5)  # empty
    prof.interval(0, "compute", 9, 4)  # inverted
    prof.interval(0, "compute", -3, 7)  # pre-boot
    assert prof.breakdown(0, 10) == {
        "compute": 0, "fault": 0, "network": 0, "disk": 0, "idle": 10,
    }


def test_unknown_categories_fall_through_to_idle():
    prof = SimProfiler()
    prof.interval(0, "mystery", 0, 10)
    out = prof.breakdown(0, 10)
    assert out["idle"] == 10 and sum(out.values()) == 10


def test_zero_length_run_reports_all_zero():
    prof = SimProfiler()
    prof.interval(0, "compute", 0, 10)
    assert sum(prof.breakdown(0, 0).values()) == 0


def test_merged_combines_without_mutating_sources():
    a, b = SimProfiler(), SimProfiler()
    a.interval(0, "compute", 0, 5)
    b.interval(0, "disk", 5, 10)
    both = a.merged(b)
    assert both.breakdown(0, 10) == {
        "compute": 5, "disk": 5, "fault": 0, "network": 0, "idle": 0,
    }
    assert a.breakdown(0, 10)["disk"] == 0  # a unchanged


def test_per_node_and_cluster_sums():
    prof = SimProfiler()
    prof.interval(0, "compute", 0, 60)
    prof.interval(1, "fault", 0, 25)
    per_node = prof.per_node(2, 100)
    assert all(sum(counts.values()) == 100 for counts in per_node.values())
    cluster = SimProfiler.cluster(per_node)
    assert sum(cluster.values()) == 200
    assert cluster["compute"] == 60 and cluster["fault"] == 25


def test_observability_profile_includes_categorised_spans():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    # A fault span and a serve span feed the profiler; rpc spans do not.
    fault = obs.span_begin("fault.read", node=0)
    rpc = obs.span_begin("rpc:svm.read", parent=fault, node=0)
    serve = obs.span_begin("serve:svm.read", parent=rpc, node=1)
    now[0] = 30
    obs.span_end(serve)
    obs.span_end(rpc)
    now[0] = 40
    obs.span_end(fault)
    obs.interval(0, "compute", 0, 10)
    per_node = obs.breakdown(2, 50)
    assert sum(per_node[0].values()) == 50
    assert sum(per_node[1].values()) == 50
    # compute beats the overlapping fault on node 0; the rest is stall.
    assert per_node[0]["compute"] == 10 and per_node[0]["fault"] == 30
    assert per_node[1]["network"] == 30  # the serve span
    # The rpc span contributed nothing of its own (structure-only).
    assert per_node[0]["network"] == 0


def test_open_spans_clamp_to_end_of_run():
    obs = Observability()
    now = [0]
    obs.bind_clock(lambda: now[0])
    now[0] = 20
    obs.span_begin("disk.write", node=0)  # never closed
    out = obs.breakdown(1, 50)[0]
    assert out["disk"] == 30 and sum(out.values()) == 50
