"""Race detector: unsynchronised accesses are reported, properly
synchronised ones are not — plus unit tests of the vector-clock core."""

from repro.api.ivy import Ivy
from repro.apps.common import alloc_done_ec, wait_done
from repro.config import ClusterConfig
from repro.metrics.collect import Counters
from repro.proc.pcb import Pid
from repro.sync.lock import LOCK_RECORD_BYTES, lock_acquire, lock_init, lock_release


class CounterApp:
    """Two workers increment one shared counter; ``locked`` selects
    whether the read-modify-write is protected by a queue lock."""

    def __init__(self, locked: bool) -> None:
        self.locked = locked

    def main(self, ctx):
        counter = yield from ctx.malloc(8)
        yield from ctx.mem.write_i64(counter, 0)
        lock = yield from ctx.malloc(LOCK_RECORD_BYTES)
        yield from lock_init(ctx, lock)
        done = yield from alloc_done_ec(ctx)
        for k in range(2):
            yield from ctx.spawn(self._worker, counter, lock, done, on=k % ctx.nnodes)
        yield from wait_done(ctx, done, 2)
        total = yield from ctx.mem.read_i64(counter)
        return counter, total

    def _worker(self, ctx, counter, lock, done):
        if self.locked:
            yield from lock_acquire(ctx, lock)
        value = yield from ctx.mem.read_i64(counter)
        yield ctx.flops(64)  # hold the stale value across some work
        yield from ctx.mem.write_i64(counter, value + 1)
        if self.locked:
            yield from lock_release(ctx, lock)
        yield from ctx.ec_advance(done)


def run_counter(locked: bool):
    ivy = Ivy(ClusterConfig(nodes=2, checker=True))
    counter, total = ivy.run(CounterApp(locked).main)
    return ivy, counter, total


def test_unsynchronised_counter_is_reported():
    ivy, counter, total = run_counter(locked=False)
    races = ivy.races.races
    assert races, "two unordered increments must race"
    assert all(report.addr == counter for report in races)
    assert {report.kind for report in races} <= {
        "write-write", "read-write", "write-read"
    }
    assert ivy.cluster.total_counters()["violation.race"] == len(races)
    # The memory stayed coherent even though the program raced.
    assert ivy.cluster.total_counters().violations().keys() == {"race"}


def test_locked_counter_is_clean():
    ivy, counter, total = run_counter(locked=True)
    assert total == 2  # no lost update
    assert ivy.races.races == []
    assert ivy.cluster.total_counters().violations() == {}


def test_spawn_and_wait_order_parent_and_children():
    """Parent writes before spawning; children read; parent reads the
    children's results after the eventcount join — all ordered, no race."""

    def main(ctx):
        src = yield from ctx.malloc(8)
        dst = yield from ctx.malloc(16)
        yield from ctx.mem.write_i64(src, 21)
        done = yield from alloc_done_ec(ctx)

        def child(cctx, k):
            value = yield from cctx.mem.read_i64(src)
            yield from cctx.mem.write_i64(dst + 8 * k, value * 2)
            yield from cctx.ec_advance(done)

        for k in range(2):
            yield from ctx.spawn(child, k, on=k % ctx.nnodes)
        yield from wait_done(ctx, done, 2)
        a = yield from ctx.mem.read_i64(dst)
        b = yield from ctx.mem.read_i64(dst + 8)
        return a + b

    ivy = Ivy(ClusterConfig(nodes=2, checker=True))
    assert ivy.run(main) == 84
    assert ivy.races.races == []


# ----------------------------------------------------------------------
# vector-clock core, driven directly


class _StubSim:
    now = 0


class _StubNode:
    def __init__(self):
        self.counters = Counters()


class _StubCluster:
    def __init__(self, nodes=2):
        self.sim = _StubSim()
        self.nodes = [_StubNode() for _ in range(nodes)]


def _detector():
    from repro.analysis.racedetect import RaceDetector

    return RaceDetector(_StubCluster())


P1, P2 = Pid(0, 1), Pid(1, 1)


def test_concurrent_writes_race_once():
    det = _detector()
    det.on_access(P1, 0x100, 8, write=True, node_id=0)
    det.on_access(P2, 0x100, 8, write=True, node_id=1)
    det.on_access(P2, 0x100, 8, write=True, node_id=1)  # duplicate pair
    assert [r.kind for r in det.races] == ["write-write"]


def test_release_acquire_orders_accesses():
    det = _detector()
    det.on_access(P1, 0x100, 8, write=True, node_id=0)
    det.on_release(P1, 0x200)
    det.on_acquire(P2, 0x200)
    det.on_access(P2, 0x100, 8, write=True, node_id=1)
    assert det.races == []


def test_resume_park_edge_orders_accesses():
    det = _detector()
    det.on_access(P1, 0x100, 8, write=True, node_id=0)
    det.on_resume(P1, P2)
    det.on_wake(P2)
    det.on_access(P2, 0x100, 8, write=False, node_id=1)
    assert det.races == []


def test_spawn_clock_orders_parent_prefix_only():
    det = _detector()
    det.on_access(P1, 0x100, 8, write=True, node_id=0)
    child_clock = det.fork(P1)
    det.on_spawn(P2, child_clock)
    det.on_access(P2, 0x100, 8, write=False, node_id=1)  # ordered: no race
    assert det.races == []
    det.on_access(P1, 0x180, 8, write=True, node_id=0)  # after the fork
    det.on_access(P2, 0x180, 8, write=True, node_id=1)  # concurrent now
    assert [r.kind for r in det.races] == ["write-write"]


def test_sync_words_are_exempt():
    det = _detector()
    det.register_sync_range(0x300, 16)
    det.on_access(P1, 0x300, 16, write=True, node_id=0)
    det.on_access(P2, 0x300, 16, write=True, node_id=1)
    assert det.races == []


def test_mixed_read_write_race_kinds():
    det = _detector()
    det.on_access(P1, 0x400, 8, write=False, node_id=0)
    det.on_access(P2, 0x400, 8, write=True, node_id=1)
    assert [r.kind for r in det.races] == ["read-write"]
    det2 = _detector()
    det2.on_access(P1, 0x400, 8, write=True, node_id=0)
    det2.on_access(P2, 0x400, 8, write=False, node_id=1)
    assert [r.kind for r in det2.races] == ["write-read"]


def test_report_format_mentions_word_and_processes():
    det = _detector()
    det.note_sync_op("lock.acquire", 0x500, P1)
    det.on_access(P1, 0x400, 8, write=True, node_id=0)
    det.on_access(P2, 0x400, 8, write=True, node_id=1)
    text = det.races[0].format()
    assert "0x400" in text
    assert "lock.acquire" in text


# ----------------------------------------------------------------------
# benign-race allowlisting (CheckerConfig.known_races)


class DeclaredCounterApp(CounterApp):
    """The unlocked racy counter, but the program declares the race as
    intentional under the label ``"app.stat"``."""

    def __init__(self) -> None:
        super().__init__(locked=False)

    def main(self, ctx):
        counter = yield from ctx.malloc(8)
        ctx.declare_benign_race("app.stat", counter, 8)
        yield from ctx.mem.write_i64(counter, 0)
        lock = yield from ctx.malloc(LOCK_RECORD_BYTES)
        yield from lock_init(ctx, lock)
        done = yield from alloc_done_ec(ctx)
        for k in range(2):
            yield from ctx.spawn(self._worker, counter, lock, done, on=k % ctx.nnodes)
        yield from wait_done(ctx, done, 2)
        total = yield from ctx.mem.read_i64(counter)
        return counter, total


def test_allowlisted_race_is_suppressed_yet_counted():
    from repro.config import CheckerConfig

    ivy = Ivy(
        ClusterConfig(nodes=2, checker=CheckerConfig(known_races=("app.stat",)))
    )
    ivy.run(DeclaredCounterApp().main)
    det = ivy.races
    assert det.races == [], "allowlisted reports must leave the findings list"
    assert det.suppressed, "the race still happened; it is only reclassified"
    counters = ivy.cluster.total_counters()
    assert counters["race.suppressed"] == len(det.suppressed)
    assert counters.violations() == {}  # out of the violation namespace


def test_declaration_without_allowlist_still_reports():
    """The program's declaration alone must not silence anything — the
    run's configuration has to list the label too."""
    ivy = Ivy(ClusterConfig(nodes=2, checker=True))
    ivy.run(DeclaredCounterApp().main)
    assert ivy.races.suppressed == []
    assert ivy.races.races, "undeclared-in-config races keep reporting"
    assert ivy.cluster.total_counters().violations().keys() == {"race"}


def test_allowlist_without_declaration_suppresses_nothing():
    from repro.config import CheckerConfig

    ivy = Ivy(
        ClusterConfig(nodes=2, checker=CheckerConfig(known_races=("app.stat",)))
    )
    counter, total = ivy.run(CounterApp(locked=False).main)
    assert ivy.races.suppressed == []
    assert ivy.races.races  # no region was declared: nothing matches


def test_checker_config_truthiness_gates_the_checkers():
    from repro.config import CheckerConfig

    assert not Ivy(ClusterConfig(nodes=2, checker=CheckerConfig(enabled=False))).races
    assert Ivy(ClusterConfig(nodes=2, checker=CheckerConfig())).races is not None


def test_tsp_best_bound_allowlist_clears_the_report():
    """The motivating case: TSP's optimistic best-bound read is racy by
    design; allowlisting ``tsp.best-bound`` leaves a checked TSP run
    with an empty violation namespace."""
    from repro.apps.tsp import TspApp
    from repro.config import CheckerConfig

    app = TspApp(3, ncities=7)
    config = ClusterConfig(
        nodes=3, checker=CheckerConfig(known_races=("tsp.best-bound",))
    )
    ivy = Ivy(config)
    app.check(ivy.run(app.main))
    assert ivy.races.races == []
    assert ivy.cluster.total_counters().violations() == {}
    assert len(ivy.races.suppressed) == ivy.cluster.total_counters()[
        "race.suppressed"
    ]
