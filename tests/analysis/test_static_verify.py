"""Golden-findings tests for the static verifier.

Three layers:

- every seeded mutation in ``corpus/mutations`` produces its expected
  rule id (the engine catches the bug);
- every snippet in ``corpus/clean`` produces zero findings (the engine
  accepts the protocol's real idioms);
- the real tree verifies clean end to end: acyclic wait-for graphs and
  full message coverage for all four managers, zero findings anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.static import run_default, run_explicit, to_sarif
from repro.analysis.static.__main__ import main as cli_main

CORPUS = Path(__file__).parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: mutation file -> rule ids that MUST be among its findings.
EXPECTED = {
    "lock_leak.py": {"lock-balance"},
    "fastpath_leak.py": {"lock-balance"},
    "lock_in_serve_inv.py": {"lock-free-server"},
    "pw_leak.py": {"page-write-balance"},
    "span_leak.py": {"span-balance"},
    "return_in_finally.py": {"return-in-finally"},
    "discard_handle.py": {"cancel-handle"},
    "server_hold_await.py": {"hold-await-in-server", "waitfor-cycle"},
    "collective_locking.py": {"collective-locking-server", "waitfor-cycle"},
    "double_hold.py": {"multi-lock-wait"},
    "missing_handler.py": {"msg-unhandled"},
    "no_reply_path.py": {"msg-no-reply-path"},
    "noreply_unicast.py": {"msg-noreply-unicast"},
    "dead_handler.py": {"msg-dead-handler"},
    "missing_extractor.py": {"footprint-under-declared"},
    "wrong_extractor.py": {"footprint-under-declared"},
    "cross_page_write.py": {"footprint-unattributable"},
    "fanout_global_write.py": {"fanout-unproven"},
    "fanout_payload_write.py": {"footprint-unattributable", "fanout-unproven"},
    "any_unguarded_reply.py": {"aggregation-order-sensitive"},
    "wallclock.py": {"det-wallclock"},
    "unseeded_random.py": {"det-unseeded-random"},
    "fabric_unseeded_loss.py": {"det-unseeded-random"},
    "set_iteration.py": {"det-set-iteration"},
    "id_order.py": {"det-id-order"},
    "timeline_wallclock.py": {"det-wallclock"},
    "calqueue_id_bucket.py": {"det-id-order"},
    "pool_recycle_set.py": {"det-set-iteration"},
}


def test_corpus_is_fully_mapped():
    on_disk = {p.name for p in (CORPUS / "mutations").glob("*.py")}
    assert on_disk == set(EXPECTED)


def test_determinism_lint_covers_the_fabric_backends():
    """The fabric subpackage executes inside simulated time, so the
    default determinism sweep must load it — a backend that slipped out
    of DETERMINISM_PATHS could reintroduce wallclock/entropy silently."""
    from repro.analysis.static import facts as facts_mod
    from repro.analysis.static.engine import DETERMINISM_PATHS

    paths = [str(REPO_ROOT / p) for p in DETERMINISM_PATHS]
    loaded = {Path(m.path).as_posix() for m in facts_mod.load_modules(paths)}
    for tail in (
        "repro/net/fabric/__init__.py",
        "repro/net/fabric/switched.py",
        "repro/net/ring.py",
    ):
        assert any(p.endswith(tail) for p in loaded), tail


def test_determinism_lint_covers_the_event_kernel_hot_path():
    """The calendar queue and the message/page pools decide event order
    and envelope reuse; both must stay inside the determinism sweep —
    an id()-keyed bucket or a set-backed free list would be a silent
    cross-run divergence the goldens only catch after the fact."""
    from repro.analysis.static import facts as facts_mod
    from repro.analysis.static.engine import DETERMINISM_PATHS

    paths = [str(REPO_ROOT / p) for p in DETERMINISM_PATHS]
    loaded = {Path(m.path).as_posix() for m in facts_mod.load_modules(paths)}
    for tail in (
        "repro/sim/calqueue.py",
        "repro/sim/kernel.py",
        "repro/net/pool.py",
        "repro/net/packet.py",
    ):
        assert any(p.endswith(tail) for p in loaded), tail


def test_determinism_lint_covers_the_deterministic_obs_modules():
    """The timeline/sampling/SLO modules are observational but their
    exports are asserted bit-for-bit in CI, so they are opted back into
    the determinism sweep file-by-file (the rest of repro.obs stays
    exempt — it may legitimately time the simulator with real clocks)."""
    from repro.analysis.static import facts as facts_mod
    from repro.analysis.static.engine import DETERMINISM_PATHS

    paths = [str(REPO_ROOT / p) for p in DETERMINISM_PATHS]
    loaded = {Path(m.path).as_posix() for m in facts_mod.load_modules(paths)}
    for tail in (
        "repro/obs/timeline.py",
        "repro/obs/sample.py",
        "repro/obs/slo.py",
    ):
        assert any(p.endswith(tail) for p in loaded), tail
    assert not any(p.endswith("repro/obs/profiler.py") for p in loaded)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_mutation_is_detected(name):
    report = run_explicit([str(CORPUS / "mutations" / name)])
    rules = {f.rule for f in report.findings}
    assert EXPECTED[name] <= rules, (name, sorted(rules))


@pytest.mark.parametrize(
    "path", sorted((CORPUS / "clean").glob("*.py")), ids=lambda p: p.name
)
def test_clean_fixture_has_zero_findings(path):
    report = run_explicit([str(path)])
    assert report.render_findings() == []


def test_findings_carry_locations():
    report = run_explicit([str(CORPUS / "mutations" / "lock_leak.py")])
    assert report.findings
    for f in report.findings:
        assert f.path.endswith("lock_leak.py")
        assert f.line > 0
        rendered = f.render()
        assert rendered.startswith(f"{f.path}:{f.line}: ")


class TestCleanTree:
    """The real sources discharge every proof obligation."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_default(str(REPO_ROOT))

    def test_zero_findings(self, report):
        assert report.render_findings() == []

    def test_all_managers_verified(self, report):
        names = {s.name for s in report.waitfor_summaries}
        assert {
            "CoherenceProtocol",
            "CentralizedProtocol",
            "FixedDistributedProtocol",
            "DynamicDistributedProtocol",
            "BroadcastProtocol",
        } <= names

    def test_waitfor_graphs_acyclic(self, report):
        for s in report.waitfor_summaries:
            assert s.acyclic, (s.name, s.cycle)
            # The fault ops are genuinely awaited under the entry lock —
            # the proof is about real edges, not an empty graph.
            assert {"svm.read", "svm.write"} <= set(s.held_await_ops)
            # The transient fault servers' lock edges are discharged by
            # the ownership-order axiom, not silently absent.
            assert s.discharged_ops

    def test_message_matrix_total(self, report):
        for s in report.message_summaries:
            assert s.unhandled == [], s.name
            assert s.dead == [], s.name
            assert set(s.sent_ops) <= set(s.registered_ops)

    def test_dynamic_manager_covers_hint(self, report):
        dyn = next(
            s
            for s in report.message_summaries
            if s.name == "DynamicDistributedProtocol"
        )
        assert "svm.hint" in dyn.registered_ops
        assert "svm.hint" in dyn.sent_ops


class TestReporting:
    def test_sarif_shape(self):
        report = run_explicit([str(CORPUS / "mutations" / "wallclock.py")])
        sarif = to_sarif(report.findings)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-static-verify"
        assert run["results"]
        result = run["results"][0]
        assert result["ruleId"] == "det-wallclock"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]
        assert region["artifactLocation"]["uri"].endswith("wallclock.py")

    def test_cli_exit_codes_and_sarif(self, tmp_path, capsys):
        out = tmp_path / "findings.sarif"
        rc = cli_main(
            [str(CORPUS / "mutations" / "lock_leak.py"), "--sarif", str(out)]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "static-verify finding(s)" in captured.out
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"]

        rc = cli_main([str(CORPUS / "clean" / "manager.py")])
        captured = capsys.readouterr()
        assert rc == 0
        assert "static verify clean" in captured.out
        assert "EchoManager" in captured.out
