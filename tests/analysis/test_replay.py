"""Offline replay: a recorded run round-trips through JSONL and checks
clean; corrupted streams are flagged; the CLI gates on the verdict."""

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.replay import SVM_CATEGORIES, replay_events, replay_file, summarize
from repro.api.ivy import Ivy
from repro.apps.jacobi import JacobiApp
from repro.config import ClusterConfig
from repro.sim.trace import TraceEvent, TraceRecorder


def record_run(tmp_path):
    trace = TraceRecorder(categories=set(SVM_CATEGORIES))
    ivy = Ivy(ClusterConfig(nodes=3, checker=True), trace=trace)
    app = JacobiApp(3, n=32, iters=2)
    app.check(ivy.run(app.main))
    path = tmp_path / "trace.jsonl"
    count = trace.save(str(path))
    assert count == len(trace.events) > 0
    return trace, path


def test_recorded_run_replays_clean(tmp_path):
    trace, path = record_run(tmp_path)
    machine = replay_file(str(path))
    assert machine.events_seen == len(trace.events)
    assert machine.violations == []
    assert "no invariant violations" in summarize(machine)


def test_replay_flags_epoch_regress(tmp_path):
    """Appending a stale invalidation receipt (epoch going backwards)
    must be caught — that is the reordering bug the epochs exist for."""
    trace, path = record_run(tmp_path)
    loaded = TraceRecorder.load(str(path))
    inv = [ev for ev in loaded.events if ev.category == "svm.inv_recv"]
    assert inv, "jacobi under invalidate policy must invalidate copies"
    last = inv[-1]
    loaded.events.append(
        TraceEvent(
            last.time + 1,
            "svm.inv_recv",
            {**last.fields, "epoch": 0},
        )
    )
    machine = replay_events(loaded.replay())
    assert any(v.rule == "epoch-regress" for v in machine.violations)


def test_replay_flags_grant_by_nonowner():
    boot = TraceEvent(
        0,
        "cluster.boot",
        {
            "nodes": 3,
            "manager": 0,
            "algorithm": "dynamic",
            "write_policy": "invalidate",
            "page_size": 256,
        },
    )
    rogue = TraceEvent(
        5, "svm.grant", {"node": 2, "page": 4, "to": 1, "write": False}
    )
    machine = replay_events([boot, rogue])
    assert [v.rule for v in machine.violations] == ["grant-nonowner"]


def test_replay_flags_invalidation_of_nonholder():
    events = [
        TraceEvent(0, "cluster.boot", {"nodes": 2, "manager": 0}),
        TraceEvent(1, "svm.invalidate", {"node": 0, "page": 1, "targets": [1]}),
    ]
    machine = replay_events(events)
    assert [v.rule for v in machine.violations] == ["invalidate-nonholder"]


def test_replay_strict_raises_immediately():
    from repro.analysis import InvariantViolation

    events = [
        TraceEvent(0, "cluster.boot", {"nodes": 2, "manager": 0}),
        TraceEvent(1, "svm.invalidate", {"node": 0, "page": 1, "targets": [1]}),
    ]
    with pytest.raises(InvariantViolation):
        replay_events(events, strict=True)


def test_cli_replay_exit_codes(tmp_path, capsys):
    _, path = record_run(tmp_path)
    assert analysis_main(["replay", str(path)]) == 0
    assert "no invariant violations" in capsys.readouterr().out

    bad = tmp_path / "bad.jsonl"
    loaded = TraceRecorder.load(str(path))
    inv = [ev for ev in loaded.events if ev.category == "svm.inv_recv"][-1]
    loaded.events.append(
        TraceEvent(inv.time + 1, "svm.inv_recv", {**inv.fields, "epoch": 0})
    )
    loaded.save(str(bad))
    assert analysis_main(["replay", str(bad)]) == 1
    assert "epoch-regress" in capsys.readouterr().out


def test_cli_run_records_and_gates(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    code = analysis_main(
        ["run", "--app", "dotprod", "--nodes", "2", "--trace", str(path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "result ok" in out
    assert path.exists()
    assert analysis_main(["replay", str(path)]) == 0
