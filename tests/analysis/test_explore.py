"""The schedule explorer: exhaustive enumeration stays clean on the
real protocols, partial-order reduction preserves the reachable final
states, seeded corruptions are caught / minimized / replayed, and the
randomized + delay strategies produce replayable schedules."""

import pytest

from repro.analysis.explore import (
    Counterexample,
    RecordingScheduler,
    Scenario,
    explore_delay,
    explore_dfs,
    explore_pct,
    independent,
    load_artifact,
    minimize_schedule,
    replay_artifact,
    run_scenario,
    save_counterexamples,
)

MANAGERS = ("centralized", "fixed", "dynamic")


# ----------------------------------------------------------------------
# the controlled default must be the uncontrolled schedule


def test_default_choices_reproduce_the_uncontrolled_run():
    """An empty prescription (always index 0) must execute the exact
    schedule the plain simulator runs — same clock, same event count,
    same final protocol state."""
    from repro.analysis.explore import WORKLOADS, _build_cluster, _fingerprint

    scenario = Scenario(algorithm="dynamic", nodes=3, pages=2, workload="rw")
    controlled = run_scenario(scenario)
    assert controlled.status == "ok"

    plain = _build_cluster(scenario)
    for name, gen in WORKLOADS["rw"](plain, scenario):
        plain.spawn_system(gen, name)
    plain.run()
    assert plain.sim.now == controlled.time
    assert plain.sim.events_executed == controlled.events
    assert _fingerprint(plain) == controlled.fingerprint


# ----------------------------------------------------------------------
# exhaustive exploration of the real protocols is clean


@pytest.mark.parametrize("algorithm", MANAGERS)
def test_exhaustive_2node_1page_rw_is_clean(algorithm):
    """The acceptance configuration: full enumeration of the 2-node /
    1-page read-write workload finds zero violations under every
    manager algorithm."""
    scenario = Scenario(algorithm=algorithm, nodes=2, pages=1, workload="rw")
    result = explore_dfs(scenario, max_schedules=1000)
    assert not result.truncated
    assert result.schedules >= 2
    assert result.statuses == {"ok": result.schedules}
    assert result.violations == []


def test_exhaustive_3node_contended_workloads_are_clean():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    result = explore_dfs(scenario, max_schedules=1000)
    assert not result.truncated
    assert result.schedules > 10  # genuinely many interleavings
    assert result.statuses == {"ok": result.schedules}
    # Different interleavings really reach different final states.
    assert len(result.fingerprints) > 1


def test_exhaustive_broadcast_manager_is_clean():
    scenario = Scenario(algorithm="broadcast", nodes=2, pages=1, workload="rw")
    result = explore_dfs(scenario, max_schedules=1000)
    assert not result.truncated
    assert result.statuses == {"ok": result.schedules}


def test_max_schedules_truncates_explicitly():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    result = explore_dfs(scenario, max_schedules=5)
    assert result.truncated
    assert result.schedules == 5


# ----------------------------------------------------------------------
# partial-order reduction: fewer schedules, same reachable states


def test_por_prunes_but_preserves_final_states():
    """Sleep sets must cut the fan-out-heavy tree while reaching the
    same set of final protocol states as full enumeration (soundness of
    the independence relation, checked extensionally)."""
    scenario = Scenario(
        algorithm="dynamic", nodes=3, pages=1, workload="chown", hint_period=1
    )
    full = explore_dfs(scenario, por=False, max_schedules=4000)
    reduced = explore_dfs(scenario, por=True, max_schedules=4000)
    assert not full.truncated and not reduced.truncated
    assert full.violations == [] and reduced.violations == []
    assert reduced.schedules < full.schedules
    assert reduced.fingerprints == full.fingerprints


def test_independence_relation_is_conservative():
    # Different node and different page: commutes.
    assert independent(
        "deliver:n1:p0:req:svm.read:o1.2", "deliver:n2:p1:req:svm.write:o0.3"
    )
    # Same page, non-fan-out ops: conflicts.
    assert not independent(
        "deliver:n1:p0:req:svm.read:o1.2", "deliver:n2:p0:req:svm.write:o0.3"
    )
    # Same page but both fan-out deliveries of a broadcast: commutes.
    assert independent(
        "deliver:n1:p0:bcast:svm.hint:o0.4", "deliver:n2:p0:bcast:svm.hint:o0.4"
    )
    # Same target node never commutes.
    assert not independent(
        "deliver:n1:p0:bcast:svm.hint:o0.4", "deliver:n1:p1:req:svm.read:o0.5"
    )
    # Unattributed labels conflict with everything.
    assert not independent("task:rw-0", "deliver:n1:p0:req:svm.read:o1.2")
    assert not independent(None, "deliver:n1:p0:req:svm.read:o1.2")
    assert not independent("deliver:n1:p?:rep:svm.read:o1.2", "task:rw-0")


# ----------------------------------------------------------------------
# seeded mutations: caught, minimized, replayed


def mutated_scenario():
    return Scenario(
        algorithm="dynamic",
        nodes=3,
        pages=1,
        workload="mutate-upgrade",
        mutation="ghost-copyset",
    )


def test_seeded_mutation_is_caught_and_minimized():
    scenario = mutated_scenario()
    result = explore_dfs(scenario, max_schedules=50)
    assert result.violations, "the explorer must catch the seeded corruption"
    first = result.violations[0]
    assert first.rule == "invalidate-nonholder"

    small = minimize_schedule(scenario, first.choices, first.drops)
    assert small.rule == "invalidate-nonholder"
    assert len(small.choices) <= 10

    replay = run_scenario(scenario, small.choices, small.drops)
    assert (replay.status, replay.rule) == ("violation", "invalidate-nonholder")


def test_minimize_rejects_a_clean_schedule():
    scenario = Scenario(algorithm="dynamic", nodes=2, pages=1, workload="rw")
    with pytest.raises(ValueError):
        minimize_schedule(scenario, (0,))


# ----------------------------------------------------------------------
# randomized and delay strategies


def test_pct_sampling_is_clean_on_real_protocol_and_replayable():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    result = explore_pct(scenario, samples=8)
    assert result.schedules == 9  # probe + samples
    assert result.statuses == {"ok": 9}


def test_pct_sampling_catches_mutation_via_plain_replay():
    scenario = mutated_scenario()
    result = explore_pct(scenario, samples=4)
    assert result.violations
    first = result.violations[0]
    # A PCT-found schedule replays through a plain prescription.
    replay = run_scenario(scenario, first.choices, first.drops)
    assert (replay.status, replay.rule) == ("violation", first.rule)


def test_delay_injection_explores_every_single_drop_cleanly():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    result = explore_delay(scenario)
    probe = run_scenario(scenario)
    # One probe plus one schedule per frame delivery attempt.
    assert result.schedules == probe.attempts + 1
    assert result.statuses == {"ok": result.schedules}
    # Retransmission recovery genuinely perturbs the execution.
    assert result.schedules > 3


# ----------------------------------------------------------------------
# artifacts round-trip and replay


def test_artifact_round_trip_and_replay(tmp_path):
    scenario = mutated_scenario()
    result = explore_dfs(scenario, max_schedules=5)
    assert result.violations
    path = str(tmp_path / "counterexamples.jsonl")
    saved = save_counterexamples(path, scenario, result.violations)
    assert saved == len(result.violations)

    loaded_scenario, loaded = load_artifact(path)
    assert loaded_scenario == scenario
    assert loaded == result.violations

    for recorded, run in replay_artifact(path):
        assert (run.status, run.rule) == (recorded.status, recorded.rule)


def test_artifact_requires_scenario_header(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"kind": "schedule", "choices": [], "status": "ok"}\n')
    with pytest.raises(ValueError):
        load_artifact(str(path))


def test_counterexample_dict_round_trip():
    ce = Counterexample(
        choices=(1, 0, 2), drops=(4,), status="violation",
        rule="swmr", detail="two writers",
    )
    assert Counterexample.from_dict(ce.to_dict()) == ce


# ----------------------------------------------------------------------
# harness edge cases


def test_budget_exhaustion_is_reported_not_silent():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    result = run_scenario(scenario, max_events=5)
    assert result.status == "budget"


def test_out_of_range_prescription_clamps():
    """Mid-minimization a prescribed index can exceed the live batch;
    the scheduler clamps instead of crashing the whole exploration."""
    scenario = Scenario(algorithm="dynamic", nodes=2, pages=1, workload="rw")
    result = run_scenario(scenario, choices=(99, 99, 99))
    assert result.status == "ok"


def test_recording_scheduler_log_replays_itself():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    first = run_scenario(scenario, choices=(1,))
    again = run_scenario(scenario, choices=first.choices)
    assert again.choices == first.choices
    assert again.fingerprint == first.fingerprint
    assert again.time == first.time


def test_unknown_workload_is_rejected():
    scenario = Scenario(algorithm="dynamic", nodes=2, pages=1, workload="nope")
    with pytest.raises(ValueError):
        run_scenario(scenario)


def test_recording_scheduler_records_choice_points():
    scenario = Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw")
    sched = RecordingScheduler()
    run = run_scenario(scenario, scheduler=sched)
    assert run.log  # spawn-order ties exist at t=0
    assert all(len(cp.labels) >= 2 for cp in run.log)
    assert all(0 <= cp.chosen < len(cp.labels) for cp in run.log)
