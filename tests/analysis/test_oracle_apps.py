"""The checker must be silent on correct programs: every benchmark under
every manager runs oracle-clean, and enabling it must not perturb the
simulation (pure observation)."""

import pytest

from repro.api.ivy import Ivy
from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig

MANAGERS = ("centralized", "fixed", "dynamic")


def run_checked(app, nodes=3, algorithm="dynamic"):
    config = ClusterConfig(nodes=nodes, checker=True).with_svm(algorithm=algorithm)
    ivy = Ivy(config)
    result = ivy.run(app.main)
    app.check(result)
    return ivy


@pytest.mark.parametrize("algorithm", MANAGERS)
def test_dotprod_oracle_clean(algorithm):
    ivy = run_checked(DotProductApp(3, n=1024), algorithm=algorithm)
    assert ivy.cluster.oracle.checks_run > 0
    assert ivy.cluster.total_counters().violations() == {}
    assert ivy.races.races == []


@pytest.mark.parametrize("algorithm", MANAGERS)
def test_jacobi_oracle_clean(algorithm):
    ivy = run_checked(JacobiApp(3, n=32, iters=2), algorithm=algorithm)
    assert ivy.cluster.oracle.checks_run > 0
    assert ivy.cluster.total_counters().violations() == {}
    assert ivy.races.races == []


@pytest.mark.parametrize("algorithm", MANAGERS)
def test_tsp_oracle_clean_with_benign_race(algorithm):
    """TSP optimistically reads the best bound without the lock (by
    design — a stale bound only weakens pruning).  The detector must
    report that as a race (it is one) but nothing else, and the memory
    itself must stay coherent."""
    ivy = run_checked(TspApp(3, ncities=7), algorithm=algorithm)
    violations = ivy.cluster.total_counters().violations()
    assert set(violations) <= {"race"}
    words = {report.addr for report in ivy.races.races}
    assert len(words) <= 1  # confined to the shared best-bound word


def test_checker_is_pure_observation():
    """Same program, checker on and off: identical result and identical
    simulated end time — the oracle yields no effects."""
    times, results = [], []
    for checker in (False, True):
        app = DotProductApp(3, n=1024)
        config = ClusterConfig(nodes=3, checker=checker)
        ivy = Ivy(config)
        results.append(ivy.run(app.main))
        times.append(ivy.time_ns)
    assert results[0] == results[1]
    assert times[0] == times[1]


def test_checker_off_leaves_no_hooks():
    ivy = Ivy(ClusterConfig(nodes=2))
    assert ivy.races is None
    assert ivy.cluster.oracle is None
