"""Unit tests for the footprint/commutativity certification and the
explorer's certified independence relation.

Three layers:

- the effect analysis itself (projection recognition, real-tree
  certification results: every manager fully attributed, every declared
  fan-out op proven);
- the matrix consumed by the explorer (shape, :class:`CertifiedIndependence`
  semantics on synthetic labels, strict refinement over the hand-coded
  relation);
- end-to-end equivalence: exploring under the certified relation must
  reproduce the hand-coded relation's verdicts exactly.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import explore as ex
from repro.analysis import explorebench as eb
from repro.analysis.static import commute, facts as facts_mod
from repro.analysis.static.footprints import projection_of_lambda

SVM = str(Path(__file__).resolve().parents[2] / "src" / "repro" / "svm")

ALGORITHMS = {"centralized", "fixed", "dynamic", "broadcast"}


def _lambda(src: str) -> ast.expr:
    return ast.parse(src, mode="eval").body


class TestProjection:
    def test_identity(self):
        assert projection_of_lambda(_lambda("lambda page: page")) == "payload"

    def test_index(self):
        assert projection_of_lambda(_lambda("lambda r: r[2]")) == "payload[2]"

    def test_uncertifiable(self):
        for src in (
            "lambda r: r[0] + 1",
            "lambda r: r.page",
            "lambda a, b: a",
            "lambda r: r[x]",
        ):
            assert projection_of_lambda(_lambda(src)) is None, src

    def test_not_a_lambda(self):
        assert projection_of_lambda(_lambda("'page'")) is None


@pytest.fixture(scope="module")
def summaries():
    facts = facts_mod.collect(facts_mod.load_modules([SVM]))
    findings, summaries = commute.analyze(facts)
    assert findings == []
    return summaries


@pytest.fixture(scope="module")
def matrix():
    return commute.build_matrix()


class TestRealTree:
    """The real managers discharge every certification obligation."""

    def test_every_op_attributed(self, summaries):
        for s in summaries:
            assert s.name
            ops = s.footprints.ops
            assert ops, s.class_name
            for op, fp in ops.items():
                assert fp.attributed, (s.class_name, op, fp.problems)

    def test_declared_fanout_fully_proven(self, summaries):
        for s in summaries:
            assert s.fanout_declared, s.class_name
            assert s.fanout_proven == s.fanout_declared, s.class_name

    def test_dynamic_proves_hint(self, summaries):
        dyn = next(s for s in summaries if s.name == "dynamic")
        assert "svm.hint" in dyn.fanout_proven

    def test_same_node_refinement_nonempty(self, summaries):
        for s in summaries:
            assert s.same_node_commutes, s.class_name
            # update touches the frame pool's recency order on both
            # sides, so even the refinement must not commute it with
            # itself at one node.
            assert ("svm.update", "svm.update") not in s.same_node_commutes


class TestMatrix:
    def test_shape(self, matrix):
        assert matrix["version"] == commute.MATRIX_VERSION
        assert ALGORITHMS <= set(matrix["algorithms"])
        for entry in matrix["algorithms"].values():
            for info in entry["ops"].values():
                assert set(info) == {"attributed", "projection", "handler"}
            assert set(entry["fanout_safe"]) <= set(entry["fanout_declared"])

    def test_json_round_trip(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        commute.save_matrix(matrix, str(path))
        assert json.loads(path.read_text()) == matrix


def _label(node: int, page, op: str, uid: int) -> str:
    ptag = "p?" if page is None else f"p{page}"
    return f"deliver:n{node}:{ptag}:req:{op}:o0.{uid}"


class TestCertifiedIndependence:
    ENTRY = {
        "ops": {
            "svm.read": {"attributed": True},
            "svm.inv": {"attributed": True},
            "svm.locate": {"attributed": True},
            "svm.bad": {"attributed": False},
        },
        "fanout_safe": ["svm.inv", "svm.locate"],
        "same_node_commutes": [["svm.inv", "svm.locate"]],
    }

    @pytest.fixture()
    def rel(self):
        return ex.CertifiedIndependence(self.ENTRY)

    def test_cross_node_cross_page(self, rel):
        assert rel(_label(0, 0, "svm.read", 1), _label(1, 1, "svm.read", 2))

    def test_cross_node_same_page_needs_fanout(self, rel):
        assert rel(_label(0, 0, "svm.inv", 1), _label(1, 0, "svm.locate", 2))
        assert not rel(_label(0, 0, "svm.read", 1), _label(1, 0, "svm.inv", 2))

    def test_same_node_needs_proven_pair(self, rel):
        # In the matrix (either order), different pages: commutes.
        assert rel(_label(2, 0, "svm.inv", 1), _label(2, 1, "svm.locate", 2))
        assert rel(_label(2, 0, "svm.locate", 1), _label(2, 1, "svm.inv", 2))
        # Same page at one node never commutes.
        assert not rel(_label(2, 0, "svm.inv", 1), _label(2, 0, "svm.locate", 2))
        # Pair not in the matrix.
        assert not rel(_label(2, 0, "svm.read", 1), _label(2, 1, "svm.read", 2))

    def test_unattributed_conflicts_with_everything(self, rel):
        assert not rel(_label(0, 0, "svm.bad", 1), _label(1, 1, "svm.read", 2))

    def test_unknown_page_or_label_conflicts(self, rel):
        assert not rel(_label(0, None, "svm.read", 1), _label(1, 1, "svm.read", 2))
        assert not rel("compute:n0", _label(1, 1, "svm.read", 2))
        assert not rel(None, _label(1, 1, "svm.read", 2))

    def test_refines_handcoded_on_real_matrix(self, matrix):
        """Over the real matrix's op universe the certified relation
        commutes everything the hand-coded one does, plus same-node
        pairs the hand-coded relation refuses."""
        entry = matrix["algorithms"]["dynamic"]
        rel = ex.CertifiedIndependence(entry)
        ops = sorted(entry["ops"])
        labels = [
            _label(node, page, op, uid)
            for uid, (node, page, op) in enumerate(
                (n, p, o) for n in (0, 1) for p in (0, 1) for o in ops
            )
        ]
        strictly_finer = 0
        for a in labels:
            for b in labels:
                if a == b:
                    continue
                if ex.independent(a, b):
                    assert rel(a, b), (a, b)
                elif rel(a, b):
                    strictly_finer += 1
        assert strictly_finer > 0

    def test_certified_relation_loads_from_file(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        commute.save_matrix(matrix, str(path))
        rel = ex.certified_relation("fixed", str(path))
        assert rel.name == "certified"

    def test_unknown_algorithm_raises(self, matrix):
        with pytest.raises(KeyError):
            ex.certified_relation("nope", matrix)


class TestEndToEnd:
    def test_identical_verdicts_on_contended_sweep(self):
        scenario = ex.Scenario(
            algorithm="fixed", nodes=3, pages=1, workload="chown"
        )
        hand = ex.explore_dfs(scenario, max_schedules=2000)
        cert = ex.explore_dfs(
            scenario,
            max_schedules=2000,
            relation=ex.certified_relation("fixed"),
        )
        assert cert.relation == "certified"
        assert hand.relation == "handcoded"
        assert cert.schedules <= hand.schedules
        assert cert.statuses == hand.statuses
        assert cert.fingerprints == hand.fingerprints
        # The real ops' extractors are certified: no runtime failures.
        assert hand.extractor_errors == {}
        assert cert.extractor_errors == {}

    def test_result_and_artifact_carry_relation(self, tmp_path):
        scenario = ex.Scenario(
            algorithm="centralized", nodes=2, pages=1, workload="rw"
        )
        result = ex.explore_dfs(
            scenario, relation=ex.certified_relation("centralized")
        )
        path = tmp_path / "ce.jsonl"
        ex.save_counterexamples(
            str(path), scenario, result.violations, relation=result.relation
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert header["relation"] == "certified"


class TestBenchChecks:
    def _bench(self, hand_schedules=4, cert_schedules=4, cert_hash="h"):
        side = lambda n, h: {  # noqa: E731
            "schedules": n,
            "truncated": False,
            "statuses": {"ok": n},
            "states": 1,
            "fingerprint_sha256": h,
            "violations": [],
        }
        return {
            "matrix": {},
            "sweeps": {
                "s": {
                    "handcoded": side(hand_schedules, "h"),
                    "certified": side(cert_schedules, cert_hash),
                }
            },
        }

    def test_clean_bench_passes(self):
        assert eb.check_bench(self._bench()) == []

    def test_certified_exceeding_handcoded_fails(self):
        errors = eb.check_bench(self._bench(cert_schedules=5))
        assert any("MORE schedules" in e for e in errors)

    def test_verdict_mismatch_fails(self):
        errors = eb.check_bench(self._bench(cert_hash="other"))
        assert any("fingerprint_sha256" in e for e in errors)

    def test_baseline_drift_fails(self):
        current, baseline = self._bench(), self._bench(hand_schedules=8)
        errors = eb.compare_bench(current, baseline)
        assert any("drifted" in e for e in errors)
        assert eb.compare_bench(current, self._bench()) == []
