"""The oracle must fail loudly on corrupted protocol state — these tests
inject the classic coherence bugs directly into live page tables and
assert the exact rule that fires."""

import pytest

from repro.analysis import InvariantViolation
from repro.sim.process import TaskFailure
from tests.svm.conftest import base, make_cluster, run_task


def expect_violation(fn):
    """Run ``fn`` and return the InvariantViolation it must raise (the
    sim kernel escalates an un-joined task's failure as TaskFailure with
    the violation as its cause)."""
    try:
        fn()
    except InvariantViolation as violation:
        return violation
    except TaskFailure as failure:
        assert isinstance(failure.__cause__, InvariantViolation)
        return failure.__cause__
    raise AssertionError("expected an InvariantViolation")


def checked_cluster(algorithm="dynamic"):
    """A cluster with the oracle attached and one page shared by two
    nodes: node 0 owns it (READ after serving), node 1 holds a copy."""
    cluster = make_cluster(nodes=3, algorithm=algorithm, checker=True)
    addr = base(cluster)

    def setup():
        yield from cluster.node(0).mem.write_i64(addr, 7)
        yield from cluster.node(1).mem.read_i64(addr)

    run_task(cluster, setup(), "setup")
    return cluster, cluster.layout.page_of(addr), addr


def test_oracle_accepts_uncorrupted_traffic():
    cluster, page, addr = checked_cluster()

    def more_traffic():
        yield from cluster.node(2).mem.write_i64(addr, 9)
        yield from cluster.node(0).mem.read_i64(addr)
        yield from cluster.node(1).mem.read_i64(addr)

    run_task(cluster, more_traffic(), "traffic")
    cluster.oracle.check_quiescent()  # must not raise
    assert cluster.total_counters().violations() == {}
    assert cluster.oracle.checks_run > 0


def test_oracle_flags_invalidation_of_nonholder():
    """A bogus copy-set member makes the owner invalidate a node that was
    never granted a copy — caught the moment the invalidation is sent."""
    cluster, page, addr = checked_cluster()
    cluster.node(0).table.entry(page).copy_set.add(2)

    violation = expect_violation(
        lambda: run_task(cluster, cluster.node(0).mem.write_i64(addr, 9), "w")
    )
    assert violation.rule == "invalidate-nonholder"
    assert cluster.total_counters()["violation.invalidate-nonholder"] == 1


def test_oracle_flags_lost_copyset_member():
    """Dropping a reader from the owner's copy set lets a write upgrade
    skip its invalidation — the reader keeps a now-stale readable copy,
    which the quiescence sweep reports as a SWMR violation."""
    cluster, page, addr = checked_cluster()
    cluster.node(0).table.entry(page).copy_set.discard(1)

    run_task(cluster, cluster.node(0).mem.write_i64(addr, 9), "w")
    with pytest.raises(InvariantViolation) as exc:
        cluster.oracle.check_quiescent()
    assert exc.value.rule in ("swmr", "stale-copy")


def test_oracle_flags_double_ownership():
    cluster, page, addr = checked_cluster()
    cluster.node(2).table.entry(page).is_owner = True

    with pytest.raises(InvariantViolation) as exc:
        cluster.oracle.check_quiescent()
    assert exc.value.rule == "owner-unique"


def test_oracle_flags_vanished_owner():
    cluster, page, addr = checked_cluster()
    cluster.node(0).table.entry(page).is_owner = False

    with pytest.raises(InvariantViolation) as exc:
        cluster.oracle.check_quiescent()
    assert exc.value.rule == "owner-missing"


def test_violation_report_carries_context():
    """A violation is a debugging artifact: it must carry the rule, the
    page, per-node entry snapshots and the page's recent event history."""
    cluster, page, addr = checked_cluster()
    cluster.node(0).table.entry(page).copy_set.add(2)

    violation = expect_violation(
        lambda: run_task(cluster, cluster.node(0).mem.write_i64(addr, 9), "w")
    )
    assert violation.page == page
    assert set(violation.state) == {0, 1, 2}
    assert violation.history  # recent svm.* events for the page
    text = violation.format()
    assert "invalidate-nonholder" in text
    assert "entry state" in text
