"""Unit tests for the CFG builder and forward-analysis driver."""

from __future__ import annotations

import ast

from repro.analysis.static.cfg import build_cfg, is_generator, may_raise
from repro.analysis.static.dataflow import STATE_CAP, run_forward


def _cfg(source: str):
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn)


def _kinds(cfg):
    return {node.kind for node in cfg.nodes.values()}


def _edge_kinds(cfg):
    return {kind for succs in cfg.succs.values() for _, kind in succs}


def _reachable_kinds(cfg):
    reach = cfg.reachable()
    return {cfg.nodes[nid].kind for nid in reach}


class TestStructure:
    def test_straight_line(self):
        cfg = _cfg("def f(x):\n    y = x\n    return y\n")
        assert cfg.exit in cfg.reachable()
        assert "return" in _reachable_kinds(cfg)

    def test_branch_edges(self):
        cfg = _cfg("def f(x):\n    if x:\n        return 1\n    return 2\n")
        assert {"true", "false"} <= _edge_kinds(cfg)

    def test_call_gets_exception_edge(self):
        cfg = _cfg("def f(x):\n    g(x)\n")
        assert cfg.exc_exit in cfg.reachable()

    def test_plain_assign_has_no_exception_edge(self):
        # `locked = True` between an acquire and its try must not
        # manufacture a leak path.
        cfg = _cfg("def f(x):\n    locked = True\n    y = locked\n")
        assert cfg.exc_exit not in cfg.reachable()

    def test_attribute_read_assign_is_safe(self):
        cfg = _cfg("def f(span):\n    sid = span.sid\n")
        assert cfg.exc_exit not in cfg.reachable()

    def test_while_true_has_no_false_edge(self):
        cfg = _cfg("def f(x):\n    while True:\n        g(x)\n")
        branch = next(n for n in cfg.nodes.values() if n.kind == "branch")
        kinds = {kind for _, kind in cfg.succs[branch.nid]}
        assert "false" not in kinds

    def test_for_always_has_exception_edge(self):
        cfg = _cfg("def f(xs):\n    for x in xs:\n        pass\n")
        branch = next(n for n in cfg.nodes.values() if n.kind == "branch")
        assert any(kind == "exc" for _, kind in cfg.succs[branch.nid])

    def test_code_after_return_is_unreachable(self):
        cfg = _cfg("def f(x):\n    return x\n    yield x\n")
        reach = cfg.reachable()
        yield_nodes = [
            n
            for n in cfg.nodes.values()
            if n.stmt is not None
            and isinstance(n.stmt, ast.Expr)
            and isinstance(n.stmt.value, ast.Yield)
        ]
        assert yield_nodes and all(n.nid not in reach for n in yield_nodes)


class TestFinallyDuplication:
    SRC = (
        "def f(x):\n"
        "    try:\n"
        "        g(x)\n"
        "    finally:\n"
        "        cleanup()\n"
        "    return 1\n"
    )

    def test_finally_lowered_per_exit_kind(self):
        cfg = _cfg(self.SRC)
        cleanups = [
            n
            for n in cfg.nodes.values()
            if n.stmt is not None
            and isinstance(n.stmt, ast.Expr)
            and "cleanup" in ast.unparse(n.stmt)
        ]
        # One copy for normal completion, one for the exception path,
        # one for return-through-finally.
        assert len(cleanups) >= 2

    def test_exception_crosses_finally(self):
        cfg = _cfg(self.SRC)
        assert cfg.exc_exit in cfg.reachable()

    def test_handler_bodies_reachable(self):
        cfg = _cfg(
            "def f(x):\n"
            "    try:\n"
            "        g(x)\n"
            "    except KeyError:\n"
            "        h(x)\n"
            "    return 1\n"
        )
        assert "dispatch" in _reachable_kinds(cfg)


class TestPredicates:
    def test_may_raise(self):
        assert may_raise(ast.parse("g(x)").body[0])
        assert may_raise(ast.parse("y = x[0]").body[0])
        assert may_raise(ast.parse("obj.attr = 1").body[0])
        assert not may_raise(ast.parse("y = x").body[0])
        assert not may_raise(ast.parse("sid = span.sid").body[0])

    def test_is_generator_ignores_nested_defs(self):
        fn = ast.parse(
            "def f(x):\n    def g():\n        yield x\n    return g\n"
        ).body[0]
        assert isinstance(fn, ast.FunctionDef)
        assert not is_generator(fn)


class _CountingAnalysis:
    """Counts statements along each path; unbounded without widening."""

    def initial(self, cfg):
        return [0]

    def transfer(self, node, state):
        nxt = state + (1 if node.kind == "stmt" else 0)
        return [nxt], [nxt]

    def refine(self, node, state, branch):
        return state

    def widen(self, state):
        return -1  # collapse


class TestDriver:
    def test_fixpoint_on_loop(self):
        cfg = _cfg("def f(x):\n    while x:\n        x = g(x)\n    return x\n")
        states = run_forward(cfg, _CountingAnalysis())
        # The loop manufactures unboundedly many counts; the cap plus
        # widening must still reach a fixpoint.
        assert all(len(s) <= STATE_CAP + 1 for s in states.values())
        assert states[cfg.exit]
