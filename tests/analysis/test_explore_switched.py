"""The schedule explorer off-ring: exhaustive sweeps on the switched
fabric prove the oracle, the POR machinery and the certified
independence relation are genuinely medium-agnostic.

The switched fabric changes the *tie structure* the explorer sees —
concurrent disjoint links produce same-tick deliveries a serialising
ring cannot — so these sweeps exercise choice points the ring sweeps
never reach.  Everything else (delivery-label grammar, drop-attempt
numbering, the oracle) must behave identically.
"""

import pytest

from repro.analysis.explore import (
    Scenario,
    certified_relation,
    explore_delay,
    explore_dfs,
    run_scenario,
)

MANAGERS = ("centralized", "fixed", "dynamic", "broadcast")


@pytest.mark.parametrize("algorithm", MANAGERS)
def test_exhaustive_2node_1page_rw_is_clean_on_switched(algorithm):
    """The acceptance sweep of the issue: full enumeration of the
    2-node / 1-page read-write workload on the switched backend finds
    zero violations under every manager algorithm."""
    scenario = Scenario(
        algorithm=algorithm, nodes=2, pages=1, workload="rw", fabric="switched"
    )
    result = explore_dfs(scenario, max_schedules=1000)
    assert not result.truncated
    assert result.schedules >= 2
    assert result.statuses == {"ok": result.schedules}
    assert result.violations == []


def test_scenario_dict_round_trip_carries_fabric():
    scenario = Scenario(algorithm="dynamic", fabric="switched")
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    # Pre-fabric artifacts (no "fabric" key) default to the ring.
    legacy = dict(scenario.to_dict())
    del legacy["fabric"]
    assert Scenario.from_dict(legacy).fabric == "ring"


def test_switched_explores_a_different_schedule_space():
    """Disjoint-link concurrency creates ties the ring serialises away:
    the contended 3-node sweep must be clean on both media but reach
    different final-state sets (the media genuinely differ)."""
    ring = explore_dfs(
        Scenario(algorithm="dynamic", nodes=3, pages=1, workload="rw"),
        max_schedules=4000,
    )
    switched = explore_dfs(
        Scenario(
            algorithm="dynamic", nodes=3, pages=1, workload="rw",
            fabric="switched",
        ),
        max_schedules=4000,
    )
    assert not ring.truncated and not switched.truncated
    assert ring.statuses == {"ok": ring.schedules}
    assert switched.statuses == {"ok": switched.schedules}
    assert switched.schedules > 1


def test_por_preserves_final_states_on_switched():
    scenario = Scenario(
        algorithm="dynamic", nodes=3, pages=1, workload="chown",
        hint_period=1, fabric="switched",
    )
    full = explore_dfs(scenario, por=False, max_schedules=4000)
    reduced = explore_dfs(scenario, por=True, max_schedules=4000)
    assert not full.truncated and not reduced.truncated
    assert full.violations == [] and reduced.violations == []
    assert reduced.schedules <= full.schedules
    assert reduced.fingerprints == full.fingerprints


@pytest.mark.parametrize("algorithm", ["dynamic", "broadcast"])
def test_certified_relation_holds_on_switched(algorithm):
    """The statically-proven commutativity matrix was derived from the
    protocol handlers, not the medium — identical verdicts and final
    states off-ring."""
    scenario = Scenario(
        algorithm=algorithm, nodes=2, pages=1, workload="rw",
        fabric="switched",
    )
    hand = explore_dfs(scenario, max_schedules=2000)
    cert = explore_dfs(
        scenario, max_schedules=2000, relation=certified_relation(algorithm)
    )
    assert cert.relation == "certified"
    assert cert.statuses == hand.statuses
    assert cert.fingerprints == hand.fingerprints
    assert hand.extractor_errors == {}
    assert cert.extractor_errors == {}


def test_delay_injection_is_clean_on_switched():
    """Every single-frame drop recovers through retransmission on the
    switched fabric too (same attempt-numbering contract)."""
    scenario = Scenario(
        algorithm="dynamic", nodes=2, pages=1, workload="rw",
        fabric="switched",
    )
    result = explore_delay(scenario)
    probe = run_scenario(scenario)
    assert result.schedules == probe.attempts + 1
    assert result.statuses == {"ok": result.schedules}


def test_mutation_still_caught_on_switched():
    """The oracle must fire off-ring exactly as it does on-ring."""
    scenario = Scenario(
        algorithm="dynamic", nodes=3, pages=1, workload="mutate-upgrade",
        mutation="ghost-copyset", fabric="switched",
    )
    result = explore_dfs(scenario, max_schedules=50)
    assert result.violations
    assert result.violations[0].rule == "invalidate-nonholder"
