"""The protocol linter: clean on the real sources, loud on the two
classic footguns it exists to catch."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "lint_protocol", ROOT / "tools" / "lint_protocol.py"
)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def test_real_protocol_sources_are_clean():
    assert lint.lint_paths([str(ROOT / "src" / "repro" / "svm")]) == []


def test_flags_lock_acquisition_in_invalidation_server(tmp_path):
    bad = tmp_path / "bad_server.py"
    bad.write_text(
        "class P:\n"
        "    def _serve_inv(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        yield from entry.lock.acquire()\n"
        "        entry.access = 0\n"
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "_serve_inv" in findings[0]
    assert "lock-free" in findings[0]


def test_flags_unbalanced_entry_lock(tmp_path):
    bad = tmp_path / "bad_lock.py"
    bad.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        yield from entry.lock.acquire()\n"
        "        entry.access = 1\n"
        "        entry.lock.release()\n"  # not in a finally: leaks on error
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "try/finally" in findings[0]


def test_accepts_balanced_entry_lock(tmp_path):
    good = tmp_path / "good_lock.py"
    good.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        yield from entry.lock.acquire()\n"
        "        try:\n"
        "            entry.access = 1\n"
        "        finally:\n"
        "            entry.lock.release()\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_accepts_lock_released_via_alias(tmp_path):
    good = tmp_path / "alias_lock.py"
    good.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        yield from self.entry.lock.acquire()\n"
        "        try:\n"
        "            pass\n"
        "        finally:\n"
        "            entry = self.entry\n"
        "            entry.lock.release()\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_suppression_comment_is_honoured(tmp_path):
    handed = tmp_path / "handed_lock.py"
    handed.write_text(
        "class P:\n"
        "    def acquire_page_write(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        yield from entry.lock.acquire()  # lint: keeps-lock\n"
        "        return entry\n"
    )
    assert lint.lint_paths([str(handed)]) == []


def test_flags_return_inside_generator_finally(tmp_path):
    bad = tmp_path / "swallow.py"
    bad.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        yield from self.fetch(page)\n"
        "        try:\n"
        "            yield from self.apply(page)\n"
        "        finally:\n"
        "            return None\n"  # swallows violations / cancellation
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "finally" in findings[0]
    assert "fault" in findings[0]


def test_return_in_finally_of_plain_function_is_fine(tmp_path):
    # The rule targets effect generators; plain helpers are out of scope.
    ok = tmp_path / "plain.py"
    ok.write_text(
        "def helper():\n"
        "    try:\n"
        "        pass\n"
        "    finally:\n"
        "        return 1\n"
    )
    assert lint.lint_paths([str(ok)]) == []


def test_nested_def_does_not_make_the_outer_function_a_generator(tmp_path):
    ok = tmp_path / "nested.py"
    ok.write_text(
        "def outer():\n"
        "    def gen():\n"
        "        yield 1\n"
        "    try:\n"
        "        pass\n"
        "    finally:\n"
        "        return gen\n"  # outer is not a generator: allowed
    )
    assert lint.lint_paths([str(ok)]) == []


def test_flags_unbalanced_page_write_section(tmp_path):
    bad = tmp_path / "bad_section.py"
    bad.write_text(
        "class S:\n"
        "    def update(self, page):\n"
        "        entry = yield from self.protocol.acquire_page_write(page)\n"
        "        self.mutate(entry)\n"
        "        self.protocol.release_page_write(page)\n"  # not in finally
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "release_page_write" in findings[0]


def test_accepts_balanced_page_write_section(tmp_path):
    good = tmp_path / "good_section.py"
    good.write_text(
        "class S:\n"
        "    def update(self, page):\n"
        "        entry = yield from self.protocol.acquire_page_write(page)\n"
        "        try:\n"
        "            self.mutate(entry)\n"
        "        finally:\n"
        "            self.protocol.release_page_write(page)\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_page_write_handoff_suppression_is_honoured(tmp_path):
    handed = tmp_path / "handed_section.py"
    handed.write_text(
        "class S:\n"
        "    def begin(self, page):\n"
        "        entry = yield from self.protocol.acquire_page_write(page)  "
        "# lint: keeps-lock\n"
        "        return entry\n"
    )
    assert lint.lint_paths([str(handed)]) == []


def test_cli_exit_codes(tmp_path, capsys):
    assert lint.main([str(ROOT / "src" / "repro" / "svm")]) == 0
    assert "clean" in capsys.readouterr().out

    bad = tmp_path / "bad.py"
    bad.write_text(
        "class P:\n"
        "    def _serve_inv(self, page):\n"
        "        yield from self.table.entry(page).lock.acquire()\n"
    )
    assert lint.main([str(bad)]) == 1
    assert "finding" in capsys.readouterr().out


def test_flags_unbalanced_span(tmp_path):
    bad = tmp_path / "bad_span.py"
    bad.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        span = self.obs.span_begin('fault.read', node=0)\n"
        "        yield from self.fetch(page)\n"
        "        self.obs.span_end(span)\n"  # not in a finally: leaks
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "span_end" in findings[0]
    assert "try/finally" in findings[0]


def test_accepts_balanced_span(tmp_path):
    good = tmp_path / "good_span.py"
    good.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        span = self.obs.span_begin('fault.read', node=0)\n"
        "        try:\n"
        "            yield from self.fetch(page)\n"
        "        finally:\n"
        "            self.obs.span_end(span)\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_accepts_span_balanced_inside_a_nested_suite(tmp_path):
    # The span_begin sits under an `if`; the try/finally lives at the
    # same nesting level — the outer `if` must not be flagged.
    good = tmp_path / "nested_span.py"
    good.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        if page > 0:\n"
        "            span = self.obs.span_begin('fault.write', node=0)\n"
        "            try:\n"
        "                yield from self.fetch(page)\n"
        "            finally:\n"
        "                self.obs.span_end(span)\n"
        "        yield from self.done(page)\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_flags_unbalanced_span_inside_a_nested_suite(tmp_path):
    bad = tmp_path / "nested_bad_span.py"
    bad.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        if page > 0:\n"
        "            span = self.obs.span_begin('fault.write', node=0)\n"
        "            yield from self.fetch(page)\n"
        "        yield from self.done(page)\n"
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "span_begin" in findings[0]


def test_span_in_plain_function_is_out_of_scope(tmp_path):
    # Only effect generators are checked: a plain helper cannot be
    # suspended mid-section by the scheduler.
    ok = tmp_path / "plain_span.py"
    ok.write_text(
        "class P:\n"
        "    def note(self):\n"
        "        span = self.obs.span_begin('x', node=0)\n"
        "        self.obs.span_end(span)\n"
    )
    assert lint.lint_paths([str(ok)]) == []


def test_span_suppression_comment_is_honoured(tmp_path):
    handed = tmp_path / "handed_span.py"
    handed.write_text(
        "class P:\n"
        "    def begin(self, page):\n"
        "        span = self.obs.span_begin('fault.read', node=0)  "
        "# lint: keeps-lock\n"
        "        yield from self.fetch(page)\n"
        "        return span\n"
    )
    assert lint.lint_paths([str(handed)]) == []


def test_accepts_try_acquire_fast_path_idiom(tmp_path):
    # The uncontended fast path: try_acquire in the condition, the slow
    # acquire in the branch, balanced by the try/finally after the `if`.
    good = tmp_path / "fast_lock.py"
    good.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        if not entry.lock.try_acquire():\n"
        "            yield from entry.lock.acquire()\n"
        "        try:\n"
        "            entry.access = 1\n"
        "        finally:\n"
        "            entry.lock.release()\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_flags_unbalanced_try_acquire_fast_path(tmp_path):
    bad = tmp_path / "bad_fast_lock.py"
    bad.write_text(
        "class P:\n"
        "    def fault(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        if not entry.lock.try_acquire():\n"
        "            yield from entry.lock.acquire()\n"
        "        entry.access = 1\n"
        "        entry.lock.release()\n"  # not in a finally: leaks on error
    )
    findings = lint.lint_paths([str(bad)])
    assert findings, "unbalanced fast-path acquire must be flagged"
    assert all("try/finally" in f for f in findings)


def test_fast_path_handoff_suppression_on_the_if_line(tmp_path):
    handed = tmp_path / "handed_fast_lock.py"
    handed.write_text(
        "class P:\n"
        "    def acquire_page_write(self, page):\n"
        "        entry = self.table.entry(page)\n"
        "        if not entry.lock.try_acquire():  # lint: keeps-lock\n"
        "            yield from entry.lock.acquire()\n"
        "        return entry\n"
    )
    assert lint.lint_paths([str(handed)]) == []


def test_accepts_obs_gated_span(tmp_path):
    # The obs-gated fast path: span opened only under `if obs:`, closed
    # by the try/finally that follows the `if`.
    good = tmp_path / "gated_span.py"
    good.write_text(
        "class P:\n"
        "    def serve(self, page):\n"
        "        obs = self.obs\n"
        "        if obs:\n"
        "            span = obs.span_begin('serve', node=0)\n"
        "        else:\n"
        "            span = None\n"
        "        try:\n"
        "            yield from self.fetch(page)\n"
        "        finally:\n"
        "            if span is not None:\n"
        "                obs.span_end(span)\n"
    )
    assert lint.lint_paths([str(good)]) == []


def test_flags_discarded_schedule_handle(tmp_path):
    bad = tmp_path / "discard.py"
    bad.write_text(
        "class T:\n"
        "    def transmit(self, msg):\n"
        "        self.sim.schedule(10, self._deliver, msg)\n"  # handle dropped
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "CancelHandle" in findings[0]
    assert "schedule_nocancel" in findings[0]


def test_flags_discarded_schedule_at_handle(tmp_path):
    bad = tmp_path / "discard_at.py"
    bad.write_text(
        "class T:\n"
        "    def transmit(self, msg):\n"
        "        self.sim.schedule_at(10, self._deliver, msg)\n"
    )
    findings = lint.lint_paths([str(bad)])
    assert len(findings) == 1
    assert "schedule_at_nocancel" in findings[0]


def test_assigned_schedule_handle_is_fine(tmp_path):
    ok = tmp_path / "kept.py"
    ok.write_text(
        "class T:\n"
        "    def arm(self, pending):\n"
        "        pending.timer = self.sim.schedule(10, self._retransmit, pending)\n"
        "        self.sim.schedule_nocancel(0, self._poke)\n"
    )
    assert lint.lint_paths([str(ok)]) == []


def test_discarded_handle_suppression_is_honoured(tmp_path):
    ok = tmp_path / "suppressed.py"
    ok.write_text(
        "class T:\n"
        "    def once(self):\n"
        "        self.sim.schedule(10, self._fire)  # lint: drops-handle\n"
    )
    assert lint.lint_paths([str(ok)]) == []


def test_real_obs_instrumented_sources_are_clean():
    assert (
        lint.lint_paths(
            [
                str(ROOT / "src" / "repro" / "net"),
                str(ROOT / "src" / "repro" / "machine"),
                str(ROOT / "src" / "repro" / "obs"),
            ]
        )
        == []
    )
