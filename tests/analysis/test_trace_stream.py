"""TraceRecorder replay-support surface: unstamped-before-boot marking,
emission-order replay, and the JSONL round-trip the offline checker
consumes."""

from repro.sim.trace import UNSTAMPED, TraceRecorder


def test_events_before_clock_bind_are_unstamped():
    trace = TraceRecorder()
    trace.emit("x", a=1)
    assert trace.events[0].time == UNSTAMPED
    assert not trace.events[0].stamped

    trace.bind_clock(lambda: 42)
    trace.emit("x", b=2)
    assert trace.events[1].time == 42
    assert trace.events[1].stamped


def test_replay_preserves_emission_order():
    trace = TraceRecorder()
    trace.bind_clock(lambda: 7)
    trace.emit("svm.grant", page=1)
    trace.emit("svm.inv_recv", page=1)  # same timestamp: order must hold
    trace.emit("net.send", dst=2)
    replayed = list(trace.replay({"svm.grant", "svm.inv_recv"}))
    assert [ev.category for ev in replayed] == ["svm.grant", "svm.inv_recv"]


def test_save_load_round_trip(tmp_path):
    trace = TraceRecorder()
    trace.bind_clock(lambda: 3)
    trace.emit("svm.invalidate", page=2, targets={1, 4})
    path = tmp_path / "t.jsonl"
    assert trace.save(str(path)) == 1

    loaded = TraceRecorder.load(str(path))
    assert len(loaded.events) == 1
    ev = loaded.events[0]
    assert ev.time == 3
    assert ev.category == "svm.invalidate"
    # Sets become sorted lists over JSON; the replay checker normalises.
    assert ev.fields == {"page": 2, "targets": [1, 4]}
