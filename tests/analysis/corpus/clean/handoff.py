"""Intentional lock hand-off: the locked entry is returned to the
caller (acquire_page_write's shape) — inferred, no annotation."""


def acquire_page_write(self, page):
    entry = self.table.entry(page)
    if not entry.lock.try_acquire():
        yield from entry.lock.acquire()
    yield from self.ensure_write(page, entry)
    self.memory.pin(page)
    return entry
