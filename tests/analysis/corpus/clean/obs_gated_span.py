"""Observability-gated span: opened only when obs is on, closed under
the same condition."""


def traced(self, page):
    obs = self.obs
    if obs:
        span = obs.span_begin("fault", page=page)
    else:
        span = None
    try:
        yield from self.fault(page)
    finally:
        if span is not None:
            obs.span_end(span)
