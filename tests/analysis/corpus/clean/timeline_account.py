"""Accumulation-first span close: ``span_account`` is a documented
alias of ``span_end`` used where a sampled-out (negative-id) span must
still feed the profiler and timeline — the lock/span rule accepts it
as a closer on every exit path."""


def serve(self, msg):
    obs = self.obs
    span = obs.span_begin("serve", parent=msg.span, node=self.node_id)
    try:
        yield from self.handle(msg.origin, msg.payload)
    finally:
        obs.span_account(span)
