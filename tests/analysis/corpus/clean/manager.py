"""A well-formed manager: held-await on a unicast op whose server is
transient (blocking acquire, no remote wait while holding) — the
op->entry edge is discharged by the ownership-order axiom."""

OP_ECHO = "corpus.echo"

annotate_op(OP_ECHO, lambda page: page)


class EchoManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_ECHO, self._serve_echo)

    def ping(self, page):
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            value = yield from self.remote.request(1, OP_ECHO, page)
            return value
        finally:
            entry.lock.release()

    def _serve_echo(self, origin, page):
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            return Reply(page)
        finally:
            entry.lock.release()
