"""Uncontended fast path: try_acquire, blocking fallback, try/finally."""


def ensure(entry):
    if not entry.lock.try_acquire():
        yield from entry.lock.acquire()
    try:
        yield from entry.fill()
    finally:
        entry.lock.release()
