"""Fault-server idiom: early release under a locked flag, conditional
release in the finally."""


def serve(self, origin, page):
    entry = self.table.entry(page)
    if not entry.lock.try_acquire():
        yield from entry.lock.acquire()
    locked = True
    try:
        if not entry.is_owner:
            entry.lock.release()
            locked = False
            return Forward(entry.prob_owner)
        yield from entry.materialize()
        return Reply(entry.snapshot())
    finally:
        if locked:
            entry.lock.release()
