"""BUG: the handler reaches beyond its declared page — it reads the
entry of ``page + 1``, a key that is not a payload projection.  No
extractor can attribute that access, so the op must be demoted to
conflicts-with-everything."""

OP_NEXT = "corpus.next"

annotate_op(OP_NEXT, lambda page: page)


class NeighbourManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_NEXT, self._serve_next)

    def next_owner(self, page):
        value = yield from self.remote.request(1, OP_NEXT, page)
        return value

    def _serve_next(self, origin, page):
        entry = self.table.entry(page)
        neighbour = self.table.entry(page + 1)
        return Reply((entry.owner, neighbour.owner))
        yield
