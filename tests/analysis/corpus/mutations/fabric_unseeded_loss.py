"""Seeded bug: a fabric backend drawing frame loss from OS entropy.

The fabric contract (``repro.net.fabric``) requires loss to come from a
named, cluster-seed-derived rng stream so lossy runs replay exactly.
Reaching for ``np.random.default_rng()`` with no seed makes every run's
drop pattern — and therefore every downstream schedule — unique.
"""

import numpy as np


class EntropyFabric:
    name = "entropy"

    def __init__(self, sim, nnodes):
        self.sim = sim
        self.nnodes = nnodes
        self._rng = np.random.default_rng()
        self.loss_rate = 0.01

    def _drop(self):
        return self._rng.random() < self.loss_rate
