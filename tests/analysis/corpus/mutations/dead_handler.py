OP_USED = "corpus.used"
OP_DEAD = "corpus.dead"


class StaleManager:
    def __init__(self, remote):
        self.remote = remote
        remote.register(OP_USED, self._serve_used)
        # BUG: registered, never sent by anyone.
        remote.register(OP_DEAD, self._serve_dead)

    def use(self, page):
        yield from self.remote.request(1, OP_USED, page)

    def _serve_used(self, origin, page):
        return Reply(page)
        yield

    def _serve_dead(self, origin, page):
        return Reply(page)
        yield
