import random


def jitter(base):
    return base + random.random()
