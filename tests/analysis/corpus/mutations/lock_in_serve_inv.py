def _serve_inv(self, origin, payload):
    entry = self.table.entry(payload[0])
    yield from entry.lock.acquire()
    try:
        entry.access = 0
    finally:
        entry.lock.release()
