OP_MOVE = "corpus.move"


class MovingManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_MOVE, self._serve_move)

    def transfer(self, src, dst):
        if not src.lock.try_acquire():
            yield from src.lock.acquire()
        try:
            if not dst.lock.try_acquire():
                yield from dst.lock.acquire()
            try:
                # BUG: remote wait with two entry locks held.
                yield from self.remote.request(1, OP_MOVE, (src.page, dst.page))
            finally:
                dst.lock.release()
        finally:
            src.lock.release()

    def _serve_move(self, origin, pages):
        return Reply(pages)
        yield
