"""BUG: the handler mutates the delivered payload.  A multicast hands
every target the *same* payload object, so an in-place append is a
covert cross-node channel: targets observe each other's deliveries and
the final contents depend on interleaving.  The op can never be
page-attributed, and being in ``_FANOUT_OPS`` makes the declared
fan-out claim unprovable too."""

OP_UPDATE = "svm.update"

annotate_op(OP_UPDATE, lambda req: req[0])


class SigningUpdater:
    def __init__(self, remote, table, node_id):
        self.remote = remote
        self.table = table
        self.node_id = node_id
        remote.register(OP_UPDATE, self._serve_update)

    def update(self, targets, page):
        yield from self.remote.multicast(targets, OP_UPDATE, (page, []))

    def _serve_update(self, origin, req):
        entry = self.table.entry(req[0])
        req.append(self.node_id)
        return Reply(True)
        yield
