"""BUG: ``svm.locate`` is awaited first-reply-wins (scheme ``any``) but
the handler replies unconditionally — every broadcast target answers,
so which reply wins depends on delivery order.  The real managers guard
the reply with ``entry.is_owner``; single ownership then makes at most
one target answer."""

OP_LOCATE = "svm.locate"

annotate_op(OP_LOCATE, lambda page: page)


class ChattyLocator:
    def __init__(self, remote, table, node_id):
        self.remote = remote
        self.table = table
        self.node_id = node_id
        remote.register(OP_LOCATE, self._serve_locate)

    def locate(self, page):
        owner = yield from self.remote.broadcast(OP_LOCATE, page, scheme="any")
        return owner

    def _serve_locate(self, origin, page):
        entry = self.table.entry(page)
        return Reply(self.node_id)
        yield
