def arrange(tasks):
    return sorted(tasks, key=lambda t: id(t))
