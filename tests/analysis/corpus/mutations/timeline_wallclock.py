"""Seeded bug: a timeline-style accumulator bucketing by the *host*
clock instead of the bound simulated clock — the windowed series would
differ run to run, breaking the bit-for-bit export contract."""

import time


def credit(self, name, value):
    window = int(time.time() * 1e9) // self.window_ns
    self.windows.setdefault(name, {}).setdefault(window, 0)
    self.windows[name][window] += value
