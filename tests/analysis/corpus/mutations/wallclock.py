import time


def stamp(event):
    event.at = time.time()
    return event
