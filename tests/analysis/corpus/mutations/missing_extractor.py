"""BUG: the handler keys the page table by its payload, but the op has
no ``annotate_op``/``SCHED_FOOTPRINTS`` extractor — the scheduler
cannot attribute its deliveries to a page, so the POR must treat them
as conflicting with everything."""

OP_PROBE = "corpus.probe"


class ProbeManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_PROBE, self._serve_probe)

    def probe(self, page):
        value = yield from self.remote.request(1, OP_PROBE, page)
        return value

    def _serve_probe(self, origin, page):
        entry = self.table.entry(page)
        return Reply(entry.owner)
        yield
