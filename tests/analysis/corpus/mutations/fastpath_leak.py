def fast(entry):
    if not entry.lock.try_acquire():
        yield from entry.lock.acquire()
    yield from entry.fill()
