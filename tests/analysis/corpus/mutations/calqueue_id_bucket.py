"""Mutation: a calendar-queue day refill that orders its buckets by
``id()`` — CPython heap-address order, different every run.  The real
queue orders by the entry's ``(when, seq)`` tuple (``det-id-order``)."""


def refill(buckets):
    for bucket in sorted(buckets, key=lambda b: id(b)):
        while bucket:
            yield bucket.pop(0)
