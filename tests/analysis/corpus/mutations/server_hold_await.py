OP_GET = "corpus.get"
OP_CHASE = "corpus.chase"


class ChasingManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_GET, self._serve_get)
        remote.register(OP_CHASE, self._serve_chase)

    def fetch(self, page):
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            return (yield from self.remote.request(1, OP_GET, page))
        finally:
            entry.lock.release()

    def _serve_get(self, origin, page):
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            # BUG: remote wait while holding the entry lock.
            fresh = yield from self.remote.request(2, OP_CHASE, page)
            return Reply(fresh)
        finally:
            entry.lock.release()

    def _serve_chase(self, origin, page):
        return Reply(page)
        yield
