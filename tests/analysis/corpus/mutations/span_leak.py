def traced(obs, entry):
    span = obs.span_begin("fault")
    yield from entry.fill()
    obs.span_end(span)
