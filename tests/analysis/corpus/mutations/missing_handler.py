OP_OK = "corpus.ok"
OP_LOST = "corpus.lost"


class LossyManager:
    def __init__(self, remote):
        self.remote = remote
        remote.register(OP_OK, self._serve_ok)

    def poke(self, page):
        yield from self.remote.request(1, OP_OK, page)
        # BUG: nothing registers OP_LOST.
        yield from self.remote.request(1, OP_LOST, page)

    def _serve_ok(self, origin, page):
        return Reply(page)
        yield
