OP_ASK = "corpus.ask"


class MuteManager:
    def __init__(self, remote):
        self.remote = remote
        remote.register(OP_ASK, self._serve_ask)

    def ask(self, page):
        return (yield from self.remote.request(1, OP_ASK, page))

    def _serve_ask(self, origin, page):
        if page > 0:
            return Reply(page)
        # BUG: silence on a point-to-point request.
        return NO_REPLY
        yield
