def handler(entry):
    try:
        yield from entry.fill()
    finally:
        return None
