"""BUG: a handler for a declared fan-out-safe op (``svm.inv`` is in the
explorer's ``_FANOUT_OPS``) appends to an unkeyed per-node list.  The
fan-out claim requires each delivery to write only the target's own
per-page state; a shared append makes the final list order depend on
delivery interleaving."""

OP_INV = "svm.inv"

annotate_op(OP_INV, lambda page: page)


class LoggingInvalidator:
    def __init__(self, remote, table, memory):
        self.remote = remote
        self.table = table
        self.memory = memory
        self.order = []
        remote.register(OP_INV, self._serve_inv)

    def invalidate(self, targets, page):
        yield from self.remote.multicast(targets, OP_INV, page)

    def _serve_inv(self, origin, page):
        self.memory.drop(page)
        self.order.append(page)
        return Reply(True)
        yield
