OP_PURGE = "corpus.purge"


class PurgingManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_PURGE, self._serve_purge)

    def purge(self, page, holders):
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            # All-replies collective while holding the entry lock...
            yield from self.remote.multicast(holders, OP_PURGE, page)
        finally:
            entry.lock.release()

    def _serve_purge(self, origin, page):
        entry = self.table.entry(page)
        # ...but the server blocking-acquires: a target whose lock is
        # held by its own purge never answers.
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            entry.access = 0
            return Reply(True)
        finally:
            entry.lock.release()
