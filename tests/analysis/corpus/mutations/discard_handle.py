def arm(self):
    self.sim.schedule(5, self._tick)
