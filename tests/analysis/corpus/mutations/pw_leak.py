def atomic_bump(space, page):
    entry = yield from space.acquire_page_write(page)
    entry.data[0] += 1
