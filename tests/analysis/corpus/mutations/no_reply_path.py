OP_PING = "corpus.ping"


class SilentManager:
    def __init__(self, remote):
        self.remote = remote
        remote.register(OP_PING, self._serve_ping)

    def ping(self, page):
        return (yield from self.remote.request(1, OP_PING, page))

    def _serve_ping(self, origin, page):
        if page > 0:
            return Reply(page)
        # BUG: falls off the end — the waiting client receives None.
        yield from self.touch(page)

    def touch(self, page):
        yield page
