def bad_acquire(entry):
    yield from entry.lock.acquire()
    yield from entry.fill()
