def fanout(targets):
    pending = set(targets)
    return [send(node) for node in pending]


def send(node):
    return node
