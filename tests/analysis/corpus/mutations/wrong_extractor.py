"""BUG: the footprint extractor projects the wrong payload element —
it declares ``payload[0]`` as the op's page while the handler keys the
page table by ``payload[1]``.  A scheduler trusting the extractor would
commute deliveries that actually race on the same entry."""

OP_MOVE = "corpus.move"

annotate_op(OP_MOVE, lambda req: req[0])


class MoveManager:
    def __init__(self, remote, table):
        self.remote = remote
        self.table = table
        remote.register(OP_MOVE, self._serve_move)

    def move(self, src, dst):
        value = yield from self.remote.request(1, OP_MOVE, (src, dst))
        return value

    def _serve_move(self, origin, req):
        entry = self.table.entry(req[1])
        return Reply(entry.owner)
        yield
