"""Mutation: a message pool holding its free list in a ``set`` and
recycling in iteration order — which envelope a request reuses (and
hence its identity-dependent behaviour) becomes hash order, different
every run.  The real pool uses a LIFO list (``det-set-iteration``)."""


def acquire(free, make):
    idle = set(free)
    for msg in idle:  # recycle "any" envelope: hash order, not LIFO
        idle.discard(msg)
        return msg
    return make()
