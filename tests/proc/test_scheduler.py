"""Unit tests for the per-node LIFO process dispatcher."""

import pytest

from repro.config import ClusterConfig
from repro.metrics.collect import Counters
from repro.proc.pcb import ProcState
from repro.proc.scheduler import NodeScheduler
from repro.sim.kernel import Simulator
from repro.sim.process import Compute, Sleep, Suspend, YieldCpu


def make(context_switch=0):
    sim = Simulator()
    config = ClusterConfig(nodes=1).with_cpu(context_switch=context_switch)
    sched = NodeScheduler(sim, 0, config, Counters())
    return sim, sched


def test_one_process_at_a_time_no_preemption():
    sim, sched = make()
    order = []

    def job(tag):
        order.append((tag, "start", sim.now))
        yield Compute(100)
        order.append((tag, "end", sim.now))

    sched.spawn(job("a"), "a")
    sched.spawn(job("b"), "b")
    sim.run()
    # Compute does not release the CPU: a runs to completion before b.
    tags = [t for t, _, _ in order]
    assert tags in (["a", "a", "b", "b"], ["b", "b", "a", "a"])


def test_lifo_ready_queue():
    sim, sched = make()
    started = []

    def job(tag):
        started.append(tag)
        yield Compute(10)

    # Spawn three at the same instant; LIFO runs the most recent first.
    sched.spawn(job("first"), "first")
    sched.spawn(job("second"), "second")
    sched.spawn(job("third"), "third")
    sim.run()
    assert started == ["third", "second", "first"]


def test_blocking_hands_cpu_to_next_ready():
    sim, sched = make()
    order = []

    def sleeper():
        order.append(("sleeper", "pre", sim.now))
        yield Sleep(1_000)
        order.append(("sleeper", "post", sim.now))

    def worker():
        order.append(("worker", "run", sim.now))
        yield Compute(100)

    sched.spawn(sleeper(), "sleeper")
    sched.spawn(worker(), "worker")
    sim.run()
    # sleeper runs first (LIFO puts worker behind it... actually worker is
    # pushed after, so worker runs first), then the other; the key property:
    # while one sleeps, the other computes.
    events = {(tag, what): t for tag, what, t in order}
    assert events[("worker", "run")] < events[("sleeper", "post")]


def test_suspend_and_external_wake():
    sim, sched = make()

    def waiter():
        value = yield Suspend()
        return value

    pcb = sched.spawn(waiter(), "w")
    sim.schedule(500, lambda: sched.wake(pcb.task, "go"))
    sim.run()
    assert pcb.task.result == "go"
    assert pcb.state is ProcState.DONE


def test_yield_cpu_round_robins():
    sim, sched = make()
    order = []

    def job(tag):
        for i in range(2):
            order.append(f"{tag}{i}")
            yield YieldCpu()

    sched.spawn(job("a"), "a")
    sched.spawn(job("b"), "b")
    sim.run()
    # LIFO start: b first, then yields alternate.
    assert order == ["b0", "a0", "b1", "a1"]


def test_context_switch_cost_charged():
    sim, sched = make(context_switch=1_000)

    def job():
        yield Compute(0)

    sched.spawn(job(), "j")
    sim.run()
    assert sim.now == 1_000


def test_process_count_and_load_byte():
    sim, sched = make()

    def job():
        yield Suspend()

    pcbs = [sched.spawn(job(), f"j{i}") for i in range(3)]
    assert sched.process_count() == 3
    assert sched.load_byte() == 3
    observed = {}
    sim.schedule(100, lambda: observed.update(count=sched.process_count()))
    for pcb in pcbs:
        sim.schedule(200, lambda pcb=pcb: sched.wake(pcb.task))
    sim.run()
    assert observed["count"] == 3  # all suspended but alive
    assert sched.process_count() == 0
    assert sched.idle


def test_make_ready_idempotent_against_spurious_wakes():
    sim, sched = make()

    def job():
        yield Suspend()
        yield Compute(10)
        return "done"

    pcb = sched.spawn(job(), "j")
    sim.schedule(100, lambda: sched.wake(pcb.task))
    sim.schedule(100, lambda: sched.wake(pcb.task))  # duplicate wake
    sim.run()
    assert pcb.task.result == "done"


def test_steal_ready_takes_coldest_migratable():
    sim, sched = make()

    def job():
        yield Compute(10)

    sched.spawn(job(), "cold")
    pinned = sched.spawn(job(), "pinned")
    pinned.migratable = False
    sched.spawn(job(), "hot")
    # Queue (front..back): hot, pinned, cold — steal should take "cold".
    stolen = sched.steal_ready()
    assert stolen.name == "cold"
    assert stolen.state is ProcState.MIGRATING
    assert all(p.name != "cold" for p in sched.ready)


def test_steal_ready_respects_migratable_flag():
    sim, sched = make()

    def job():
        yield Compute(10)

    pcb = sched.spawn(job(), "pinned")
    pcb.migratable = False
    assert sched.steal_ready() is None
