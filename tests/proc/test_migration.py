"""Process migration and passive load balancing, end to end."""

import numpy as np
import pytest

from repro import ClusterConfig, Ivy
from repro.machine.mmu import Access
from repro.sync.eventcount import EC_RECORD_BYTES


def make_ivy(nodes=3, load_balancing=False, **sched_kw):
    config = ClusterConfig(nodes=nodes).with_sched(
        load_balancing=load_balancing, **sched_kw
    )
    return Ivy(config)


def test_manual_migration_moves_execution():
    ivy = make_ivy(nodes=3)

    def main(ctx):
        path = [ctx.node_id]
        yield from ctx.migrate_to(2)
        path.append(ctx.node_id)
        yield from ctx.migrate_to(1)
        path.append(ctx.node_id)
        return path

    # main is spawned non-migratable; that flag gates only *involuntary*
    # migration, so flip it for the voluntary walk.
    def wrapper(ctx):
        ctx.set_migratable(True)
        result = yield from main(ctx)
        return result

    assert ivy.run(wrapper) == [0, 2, 1]
    assert ivy.node(0).counters["processes_migrated_out"] == 1
    assert ivy.node(2).counters["processes_migrated_out"] == 1
    assert ivy.node(1).counters["processes_adopted"] == 1


def test_migration_transfers_stack_page_ownership():
    ivy = make_ivy(nodes=2)
    seen = {}

    def child(ctx, done_ec):
        seen["stack_pages"] = ctx.pcb.stack_pages
        yield from ctx.migrate_to(1)
        seen["node_after"] = ctx.node_id
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        yield from ctx.spawn(child, done)
        yield from ctx.ec_wait(done, 1)
        return True

    assert ivy.run(main)
    assert seen["node_after"] == 1
    # Every stack page is now owned by node 1.
    for page in seen["stack_pages"]:
        entry0 = ivy.node(0).table.entry(page)
        entry1 = ivy.node(1).table.entry(page)
        assert entry1.is_owner and not entry0.is_owner
        assert entry0.access is Access.NIL
    # The current (first) page moved with content, uppers by chown only.
    assert ivy.node(1).counters["ownership_transfers"] >= 1


def test_migrated_process_memory_ops_use_new_node():
    ivy = make_ivy(nodes=2)

    def main(ctx):
        ctx.set_migratable(True)
        addr = yield from ctx.malloc(8)
        yield from ctx.write_i64(addr, 41)
        yield from ctx.migrate_to(1)
        # This read must fault on node 1 and fetch the page from node 0.
        value = yield from ctx.read_i64(addr)
        yield from ctx.write_i64(addr, value + 1)
        out = yield from ctx.read_i64(addr)
        return out

    assert ivy.run(main) == 42
    assert ivy.node(1).counters["read_faults"] >= 1


def test_remote_resume_follows_forwarding_pointers():
    """A process waits on an eventcount, then is woken after it migrated:
    the resume must chase the forwarding pointer."""
    ivy = make_ivy(nodes=3)

    def sleeper(ctx, ec, out_addr):
        ctx.set_migratable(True)
        yield from ctx.migrate_to(2)  # waiter registered FROM node 2
        yield from ctx.ec_wait(ec, 1)
        yield from ctx.write_i64(out_addr, ctx.node_id + 500)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        out = yield from ctx.malloc(8)
        yield from ctx.ec_init(ec)
        yield from ctx.spawn(sleeper, ec, out, on=1)
        yield ctx.compute(50_000_000)  # let the sleeper migrate and wait
        yield from ctx.ec_advance(ec)
        yield ctx.compute(50_000_000)
        value = yield from ctx.read_i64(out)
        return value

    assert ivy.run(main) == 502


def test_passive_load_balancer_migrates_work():
    ivy = make_ivy(
        nodes=2, load_balancing=True, lower_threshold=1, upper_threshold=2
    )

    def worker(ctx, done_ec):
        for _ in range(40):
            yield ctx.compute(30_000_000)
            yield ctx.yield_cpu()
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        # Pile 6 workers on node 0; node 1 is idle and must pull work.
        for _ in range(6):
            yield from ctx.spawn(worker, done)
        yield from ctx.ec_wait(done, 6)
        return True

    assert ivy.run(main)
    assert ivy.node(0).counters["processes_migrated_out"] >= 1
    assert ivy.node(1).counters["processes_adopted"] >= 1
    assert ivy.node(1).counters["work_requests_granted"] >= 1


def test_quiet_peers_never_ping_back_so_no_requests_fly():
    """The hint protocol minimises rejections: a peer below the upper
    threshold never advertises itself, so the idle node never asks."""
    ivy = make_ivy(
        nodes=2, load_balancing=True, lower_threshold=1, upper_threshold=50
    )

    def worker(ctx, done_ec):
        for _ in range(20):
            yield ctx.compute(40_000_000)
            yield ctx.yield_cpu()
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for _ in range(4):
            yield from ctx.spawn(worker, done)
        yield from ctx.ec_wait(done, 4)
        return True

    assert ivy.run(main)
    assert ivy.node(0).counters["processes_migrated_out"] == 0
    assert ivy.node(1).counters["work_requests_rejected"] == 0
    assert ivy.node(1).counters["lb_announcements"] >= 1


def test_stale_hint_leads_to_rejected_work_request():
    """Hints are 'not necessarily correct': a request sent on a stale
    hint is rejected by a peer that is no longer busy."""
    ivy = make_ivy(
        nodes=2, load_balancing=False, lower_threshold=1, upper_threshold=2
    )

    def main(ctx):
        # Seed node 1 with a stale belief that node 0 is very busy.
        ivy.schedulers[1].note_hint(0, 10)
        return True
        yield  # pragma: no cover

    ivy.run(main)
    balancer = ivy.balancers[1]
    assert balancer._pick_target() == 0
    task = ivy.cluster.driver.spawn(balancer._ask(0), "ask")
    ivy.cluster.run()
    assert task.error is None
    # Node 0 has nothing to give: the request must be rejected.
    assert ivy.node(1).counters["work_requests_rejected"] == 1
    assert ivy.node(0).counters["processes_migrated_out"] == 0


def test_non_migratable_processes_stay_put():
    ivy = make_ivy(
        nodes=2, load_balancing=True, lower_threshold=1, upper_threshold=1
    )

    def worker(ctx, done_ec):
        ctx.set_migratable(False)
        for _ in range(20):
            yield ctx.compute(30_000_000)
            yield ctx.yield_cpu()
        yield from ctx.ec_advance(done_ec)

    def main(ctx):
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for _ in range(4):
            yield from ctx.spawn(worker, done)
        yield from ctx.ec_wait(done, 4)
        return True

    assert ivy.run(main)
    assert ivy.node(0).counters["processes_migrated_out"] == 0
