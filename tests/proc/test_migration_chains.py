"""Deeper migration machinery tests: forwarding chains, repeated moves,
and the interaction of migration with shared-memory state."""

import numpy as np

from repro import ClusterConfig, Ivy
from repro.proc.pcb import Pid
from repro.sync.eventcount import EC_RECORD_BYTES


def make_ivy(nodes=4):
    return Ivy(ClusterConfig(nodes=nodes))


def test_resume_follows_two_hop_forwarding_chain():
    """A process migrates twice; a wake-up addressed to its birth node
    must chase both forwarding pointers (via remote-op Forward)."""
    ivy = make_ivy(4)

    def wanderer(ctx, ec, out):
        ctx.set_migratable(True)
        yield from ctx.migrate_to(2)
        yield from ctx.migrate_to(3)
        yield from ctx.ec_wait(ec, 1)  # waiter registered from node 3
        yield from ctx.write_i64(out, ctx.node_id)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        out = yield from ctx.malloc(8)
        yield from ctx.ec_init(ec)
        yield from ctx.spawn(wanderer, ec, out, on=1)
        yield ctx.compute(80_000_000)
        yield from ctx.ec_advance(ec)
        yield ctx.compute(80_000_000)
        value = yield from ctx.read_i64(out)
        return value

    assert ivy.run(main) == 3
    # Stubs exist where the process used to live.
    sched1, sched2 = ivy.schedulers[1], ivy.schedulers[2]
    assert list(sched1.forwards.values()) == [2]
    assert list(sched2.forwards.values()) == [3]


def test_migrated_process_counts_toward_destination_load():
    ivy = make_ivy(2)
    counts = {}

    def sitter(ctx, ec):
        ctx.set_migratable(True)
        yield from ctx.migrate_to(1)
        counts["at_dest"] = ivy.schedulers[1].process_count()
        # Park here so src-side accounting can be inspected while the
        # process is alive at its destination.
        yield from ctx.ec_wait(ec, 1)

    def main(ctx):
        from repro.sim.process import Sleep

        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        yield from ctx.spawn(sitter, ec)
        # Sleep-wait (releases the CPU — no preemption here!) until the
        # migration settles and the source holds only this process.
        for _ in range(10_000):
            if ivy.schedulers[0].process_count() == 1 and counts.get("at_dest"):
                break
            yield Sleep(1_000_000)
        counts["at_src"] = ivy.schedulers[0].process_count()
        yield from ctx.ec_advance(ec)
        return True

    assert ivy.run(main)
    assert counts["at_dest"] == 1
    assert counts["at_src"] == 1  # just main: the PCB left a stub only


def test_shared_state_written_before_and_after_migration_is_coherent():
    ivy = make_ivy(3)

    def hopper(ctx, base, ec):
        ctx.set_migratable(True)
        for hop, node in enumerate([1, 2, 0]):
            yield from ctx.write_i64(base + 8 * hop, 100 + ctx.node_id)
            yield from ctx.migrate_to(node)
        yield from ctx.ec_advance(ec)

    def main(ctx):
        base = yield from ctx.malloc(64)
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        yield from ctx.spawn(hopper, base, ec)
        yield from ctx.ec_wait(ec, 1)
        vals = yield from ctx.read_array(base, np.int64, 3)
        return vals.tolist()

    # Writes happened from nodes 0, 1, 2 in turn.
    assert ivy.run(main) == [100, 101, 102]


def test_pid_identity_survives_migration():
    ivy = make_ivy(2)
    seen = {}

    def mover(ctx, ec):
        ctx.set_migratable(True)
        seen["before"] = ctx.self_pid()
        yield from ctx.migrate_to(1)
        seen["after"] = ctx.self_pid()
        yield from ctx.ec_advance(ec)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        yield from ctx.spawn(mover, ec)
        yield from ctx.ec_wait(ec, 1)
        return True

    assert ivy.run(main)
    assert seen["before"] == seen["after"]
    assert isinstance(seen["before"], Pid)
    # PID names the *birth* processor, per the paper's (processor, PCB).
    assert seen["before"].node == 0


def test_migrate_to_current_node_is_a_noop():
    ivy = make_ivy(2)

    def main(ctx):
        ctx.set_migratable(True)
        before = ivy.cluster.ring.stats.messages
        yield from ctx.migrate_to(ctx.node_id)
        return ivy.cluster.ring.stats.messages - before

    assert ivy.run(main) == 0
