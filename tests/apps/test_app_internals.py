"""Unit/property tests for application building blocks: partitioning,
record codecs, bounds, and golden references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.common import partition
from repro.apps.pde3d import stencil_sweep
from repro.apps.sort import RECORD_BYTES, MergeSplitSortApp, _dtype
from repro.apps.tsp import (
    TspApp,
    _pack_entry,
    _unpack_entry,
    held_karp,
    mst_weight,
)
from repro.exps.fig6 import ideal_speedup


@settings(max_examples=200)
@given(
    n=st.integers(min_value=0, max_value=1000),
    parts=st.integers(min_value=1, max_value=16),
)
def test_partition_covers_range_disjointly(n, parts):
    slices = partition(n, parts)
    assert len(slices) == parts
    cursor = 0
    for lo, hi in slices:
        assert lo == cursor
        assert hi >= lo
        cursor = hi
    assert cursor == n
    sizes = [hi - lo for lo, hi in slices]
    assert max(sizes) - min(sizes) <= 1  # near-equal


def test_partition_rejects_zero_parts():
    with pytest.raises(ValueError):
        partition(10, 0)


def test_stencil_sweep_zero_boundary():
    m = 5
    b = np.zeros((m, m, m))
    u = np.ones((m, m, m))
    out = stencil_sweep(u, b)
    # An interior point has 6 neighbours of 1.0 -> 1.0; a corner has 3.
    assert out[2, 2, 2] == pytest.approx(1.0)
    assert out[0, 0, 0] == pytest.approx(0.5)


@settings(max_examples=100)
@given(
    cost=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    depth=st.integers(min_value=1, max_value=16),
    visited=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_tsp_entry_codec_roundtrip(cost, depth, visited):
    path = list(range(depth))
    raw = _pack_entry(cost, depth, visited, bytes(path))
    assert len(raw) == 8 + 8 + 8 + 16
    out_cost, out_depth, out_visited, out_path = _unpack_entry(
        np.frombuffer(raw, dtype=np.uint8)
    )
    assert out_cost == cost
    assert out_depth == depth
    assert out_visited == visited
    assert out_path == path


def test_mst_weight_known_graph():
    w = np.array(
        [
            [0.0, 1.0, 4.0],
            [1.0, 0.0, 2.0],
            [4.0, 2.0, 0.0],
        ]
    )
    assert mst_weight(w, [0, 1, 2]) == pytest.approx(3.0)  # edges 1 + 2
    assert mst_weight(w, [0]) == 0.0
    assert mst_weight(w, []) == 0.0


def test_tsp_bound_is_admissible_everywhere():
    """The 1-tree (MST) bound must never exceed the true optimal
    completion — otherwise branch-and-bound could prune the optimum."""
    app = TspApp(1, ncities=7)
    optimal = app.golden()
    # Root bound: MST over all cities <= optimal tour.
    assert mst_weight(app.w, list(range(7))) <= optimal + 1e-9


def test_held_karp_small_instances():
    # Triangle: the only tour is the triangle itself.
    w = np.array([[0, 2, 3], [2, 0, 4], [3, 4, 0]], dtype=float)
    assert held_karp(w) == pytest.approx(9.0)
    # Square with cheap perimeter.
    w = np.full((4, 4), 10.0)
    np.fill_diagonal(w, 0.0)
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        w[a, b] = w[b, a] = 1.0
    assert held_karp(w) == pytest.approx(4.0)


def test_sort_record_dtype_is_64_bytes():
    assert _dtype.itemsize == RECORD_BYTES
    app = MergeSplitSortApp(2, nrecords=64)
    assert app.records.nbytes == 64 * RECORD_BYTES
    # Keys survive the uint8 view round-trip used by the SVM path.
    raw = app.records.view(np.uint8)
    back = np.ascontiguousarray(raw).view(_dtype)
    assert np.array_equal(back["key"], app.records["key"])


def test_sort_rounds_records_up_to_block_multiple():
    app = MergeSplitSortApp(3, nrecords=100)
    assert app.nrecords % (2 * 3) == 0
    assert app.nrecords >= 100


def test_fig6_ideal_speedup_is_sublinear_and_monotone_in_n():
    for p in (2, 4, 8):
        assert 1.0 < ideal_speedup(4096, p) < p
    # More records help (the internal-sort log factor grows).
    assert ideal_speedup(65536, 8) > ideal_speedup(1024, 8)
