"""Tests for the message-passing matrix multiply (the SVM twin's rival)."""

import numpy as np
import pytest

from repro.apps.matmul import MatmulApp
from repro.apps.mp_matmul import MpMatmulApp, run_mp_matmul
from repro.metrics.speedup import run_app


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_mp_matmul_matches_golden(nprocs):
    app, ivy = run_mp_matmul(nprocs, n=48)
    assert ivy.time_ns > 0


def test_mp_matmul_uses_no_shared_pages_for_data():
    app, ivy = run_mp_matmul(3, n=32)
    total = ivy.cluster.total_counters()
    # Message passing moves data explicitly: no SVM data-page coherence
    # faults beyond the few sync/stack pages the runtime itself touches.
    assert total["mp_sends"] >= 6  # 3 work + 3 result messages
    assert total["shared_bytes_written"] < 10_000


def test_mp_and_svm_matmul_agree_with_each_other():
    n, seed = 40, 9
    svm_result = run_app(lambda p: MatmulApp(p, n=n, seed=seed), 2).result
    app, ivy = run_mp_matmul(2, n=n, seed=seed)
    # Same inputs, same partitioning: identical numerical answers.
    assert np.allclose(svm_result, app.golden())


def test_mp_matmul_requires_binding():
    app = MpMatmulApp(2, n=16)
    from repro import ClusterConfig, Ivy

    ivy = Ivy(ClusterConfig(nodes=2))
    with pytest.raises(Exception, match="bind"):
        ivy.run(app.main)
