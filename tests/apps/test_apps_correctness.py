"""Every benchmark program must produce the sequential golden answer on
every processor count and under every coherence algorithm — the apps
double as end-to-end coherence tests with real data."""

import numpy as np
import pytest

from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.matmul import MatmulApp
from repro.apps.pde3d import Pde3dApp
from repro.apps.sort import MergeSplitSortApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig
from repro.metrics.speedup import run_app

SMALL = {
    "jacobi": lambda p: JacobiApp(p, n=48, iters=3),
    "pde3d": lambda p: Pde3dApp(p, m=8, iters=3),
    "matmul": lambda p: MatmulApp(p, n=40),
    "dotprod": lambda p: DotProductApp(p, n=4096),
    "sort": lambda p: MergeSplitSortApp(p, nrecords=256),
    "tsp": lambda p: TspApp(p, ncities=8),
}


@pytest.mark.parametrize("app_name", sorted(SMALL))
@pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
def test_apps_match_golden(app_name, nprocs):
    run_app(SMALL[app_name], nprocs)  # run_app invokes app.check()


@pytest.mark.parametrize("app_name", sorted(SMALL))
@pytest.mark.parametrize("algorithm", ["centralized", "fixed"])
def test_apps_under_other_managers(app_name, algorithm):
    config = ClusterConfig().with_svm(algorithm=algorithm)
    run_app(SMALL[app_name], 3, config=config)


@pytest.mark.parametrize("app_name", sorted(SMALL))
def test_apps_under_frame_pressure(app_name):
    """The whole suite must survive tight memory (pager interplay)."""
    config = ClusterConfig().with_memory(frames=48, replacement="random")
    run_app(SMALL[app_name], 2, config=config)


def test_apps_with_odd_process_counts():
    # More workers than divides evenly (partition edge cases).
    run_app(lambda p: JacobiApp(p, n=50, iters=2), 3)
    run_app(lambda p: Pde3dApp(p, m=7, iters=2), 3)
    # More workers than rows/slabs: some workers own nothing.
    run_app(lambda p: Pde3dApp(p, m=5, iters=2), 4)


def test_jacobi_converges_towards_solution():
    app = JacobiApp(1, n=32, iters=60)
    x = app.golden()
    residual = np.linalg.norm(app.A @ x - app.b)
    assert residual < 1e-6


def test_tsp_golden_agrees_with_bruteforce():
    from itertools import permutations

    app = TspApp(1, ncities=7)
    best = min(
        sum(app.w[path[i], path[i + 1]] for i in range(6)) + app.w[path[6], path[0]]
        for path in ([0] + list(rest) for rest in permutations(range(1, 7)))
    )
    assert np.isclose(app.golden(), best)


def test_tsp_nearest_neighbour_is_upper_bound():
    app = TspApp(1, ncities=9)
    assert app.nearest_neighbour_tour() >= app.golden() - 1e-9


def test_sort_handles_non_divisible_record_counts():
    # nrecords not divisible by 2N gets rounded up internally.
    app_factory = lambda p: MergeSplitSortApp(p, nrecords=100)
    run_app(app_factory, 3)


def test_dotprod_requires_block_multiple():
    with pytest.raises(AssertionError):
        DotProductApp(1, n=1000)  # not a multiple of the scatter block
