"""Tests for the message-passing baseline (ports, mailboxes, marshaling)."""

import numpy as np
import pytest

from repro import ClusterConfig, Ivy
from repro.msgpass import MessagePassing
from repro.msgpass.marshal import marshal_cost, unmarshal_cost, wire_size
from repro.config import CpuConfig


def make():
    ivy = Ivy(ClusterConfig(nodes=3))
    return ivy, MessagePassing(ivy)


def test_send_receive_roundtrip():
    ivy, mp = make()

    def consumer(ctx, out_addr):
        msg = yield from mp.receive(ctx, port=7)
        yield from ctx.write_i64(out_addr, msg["value"])

    def main(ctx):
        out = yield from ctx.malloc(8)
        yield from ctx.spawn(consumer, out, on=1)
        yield from mp.send(ctx, 1, 7, {"value": 99}, nbytes=8)
        yield ctx.compute(50_000_000)
        value = yield from ctx.read_i64(out)
        return value

    assert ivy.run(main) == 99


def test_receive_blocks_until_message_arrives():
    ivy, mp = make()
    order = []

    def consumer(ctx):
        order.append(("recv-start", ivy.time_ns))
        msg = yield from mp.receive(ctx, port=1)
        order.append(("recv-done", ivy.time_ns))
        return msg

    def main(ctx):
        yield from ctx.spawn(consumer, on=2)
        yield ctx.compute(10_000_000)
        order.append(("send", ivy.time_ns))
        yield from mp.send(ctx, 2, 1, "payload", nbytes=64)
        return True

    ivy.run(main)
    kinds = [k for k, _ in order]
    assert kinds == ["recv-start", "send", "recv-done"]


def test_messages_queue_in_fifo_order():
    ivy, mp = make()

    def consumer(ctx, out_addr):
        values = []
        for _ in range(3):
            msg = yield from mp.receive(ctx, port=2)
            values.append(msg)
        yield from ctx.write_array(out_addr, np.array(values, dtype=np.int64))

    def main(ctx):
        out = yield from ctx.malloc(24)
        for i in range(3):
            yield from mp.send(ctx, 1, 2, 100 + i, nbytes=8)
        yield from ctx.spawn(consumer, out, on=1)
        yield ctx.compute(100_000_000)
        values = yield from ctx.read_array(out, np.int64, 3)
        return values

    assert ivy.run(main).tolist() == [100, 101, 102]


def test_local_send_skips_the_ring():
    ivy, mp = make()

    def main(ctx):
        before = ivy.cluster.ring.stats.messages
        yield from mp.send(ctx, ctx.node_id, 3, "x", nbytes=8)
        got = yield from mp.receive(ctx, port=3)
        return got, ivy.cluster.ring.stats.messages - before

    got, ring_msgs = ivy.run(main)
    assert got == "x"
    assert ring_msgs == 0


def test_marshaling_costs_scale_with_elements():
    cpu = CpuConfig()
    flat = marshal_cost(cpu, 1000, elements=0)
    listy = marshal_cost(cpu, 1000, elements=100)
    assert listy > flat
    # Unmarshalling pointer structures is costlier than marshalling them.
    assert unmarshal_cost(cpu, 1000, 100) > marshal_cost(cpu, 1000, 100)
    assert wire_size(1000, 100) == 1000 + 800


def test_linked_structure_send_charges_more_time_than_flat():
    results = {}
    for elements, tag in ((0, "flat"), (500, "linked")):
        ivy, mp = make()

        def main(ctx, elements=elements):
            yield from ctx.spawn(_sink(mp), on=1)
            yield from mp.send(ctx, 1, 9, "data", nbytes=4000, elements=elements)
            yield ctx.compute(1000)
            return True

        ivy.run(main)
        results[tag] = ivy.time_ns
    assert results["linked"] > results["flat"]


def _sink(mp):
    def sink(ctx):
        yield from mp.receive(ctx, port=9)

    return sink
