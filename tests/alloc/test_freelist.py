"""Unit + property tests for the first-fit free list (pure data structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.firstfit import FreeList, OutOfSharedMemory

BASE = 0x1000
SIZE = 64 * 1024


def test_first_fit_takes_lowest_hole():
    fl = FreeList(BASE, SIZE)
    a = fl.alloc(1024)
    b = fl.alloc(1024)
    assert a == BASE
    assert b == BASE + 1024
    fl.free(a)
    c = fl.alloc(512)
    assert c == a  # first fit reuses the lowest hole


def test_exhaustion_raises():
    fl = FreeList(BASE, 2048)
    fl.alloc(2048)
    with pytest.raises(OutOfSharedMemory):
        fl.alloc(1)


def test_free_coalesces_both_sides():
    fl = FreeList(BASE, 3 * 1024)
    a = fl.alloc(1024)
    b = fl.alloc(1024)
    c = fl.alloc(1024)
    fl.free(a)
    fl.free(c)
    fl.free(b)  # merges with both neighbours
    assert fl.free_bytes() == 3 * 1024
    assert fl.alloc(3 * 1024) == BASE  # single hole again


def test_double_free_rejected():
    fl = FreeList(BASE, 4096)
    a = fl.alloc(1024)
    fl.free(a)
    with pytest.raises(ValueError):
        fl.free(a)


def test_free_of_unallocated_address_rejected():
    fl = FreeList(BASE, 4096)
    with pytest.raises(ValueError):
        fl.free(BASE + 512)


def test_donate_seeds_an_empty_list():
    fl = FreeList()
    with pytest.raises(OutOfSharedMemory):
        fl.alloc(16)
    fl.donate(BASE, 4096)
    assert fl.alloc(4096) == BASE


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 8)),
        min_size=1,
        max_size=60,
    )
)
def test_freelist_invariants_under_random_workload(ops):
    """Invariants: allocations are disjoint, stay in bounds, and
    allocated + free bytes always equals the arena size."""
    fl = FreeList(BASE, SIZE)
    live: list[tuple[int, int]] = []
    for kind, amount in ops:
        if kind == "alloc":
            size = amount * 512
            try:
                addr = fl.alloc(size)
            except OutOfSharedMemory:
                continue
            assert BASE <= addr and addr + size <= BASE + SIZE
            for other, osize in live:
                assert addr + size <= other or other + osize <= addr, "overlap"
            live.append((addr, size))
        elif live:
            idx = amount % len(live)
            addr, size = live.pop(idx)
            fl.free(addr)
        allocated = sum(size for _, size in live)
        assert allocated + fl.free_bytes() == SIZE
    for addr, _ in live:
        fl.free(addr)
    assert fl.free_bytes() == SIZE
    assert fl.alloc(SIZE) == BASE  # fully coalesced at the end
