"""Integration tests for the central and two-level allocators."""

import pytest

from repro import ClusterConfig, Ivy
from repro.alloc.firstfit import OutOfSharedMemory
from repro.sync.eventcount import EC_RECORD_BYTES


def make_ivy(allocator="central", nodes=3, shared_size=None):
    config = ClusterConfig(nodes=nodes).with_sched(allocator=allocator)
    if shared_size is not None:
        config = config.with_svm(shared_size=shared_size)
    return Ivy(config)


@pytest.mark.parametrize("allocator", ["central", "twolevel"])
def test_remote_allocations_are_disjoint_and_usable(allocator):
    ivy = make_ivy(allocator)

    def worker(ctx, out_addr, k, done):
        addr = yield from ctx.malloc(700)
        yield from ctx.write_i64(addr, 4000 + k)  # prove it's writable
        yield from ctx.write_i64(out_addr + 8 * k, addr)
        yield from ctx.ec_advance(done)

    def main(ctx):
        import numpy as np

        out = yield from ctx.malloc(8 * 3)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for k in range(3):
            yield from ctx.spawn(worker, out, k, done, on=k)
        yield from ctx.ec_wait(done, 3)
        addrs = yield from ctx.read_array(out, np.int64, 3)
        values = []
        for addr in addrs:
            v = yield from ctx.read_i64(int(addr))
            values.append(v)
        return addrs.tolist(), values

    addrs, values = ivy.run(main)
    page = ivy.config.svm.page_size
    assert len(set(addrs)) == 3
    assert all(a % page == 0 for a in addrs)
    assert values == [4000, 4001, 4002]


def test_central_allocator_exhaustion_is_loud():
    ivy = make_ivy("central", nodes=1, shared_size=16 * 1024)

    def main(ctx):
        for _ in range(20):
            yield from ctx.malloc(4 * 1024)

    with pytest.raises(Exception) as exc_info:
        ivy.run(main)
    assert isinstance(exc_info.value.__cause__, OutOfSharedMemory)


def test_remote_free_of_bad_address_is_loud():
    ivy = make_ivy("central", nodes=2)

    def worker(ctx, done):
        yield from ctx.free(0x8000_0000 + 12288)  # never allocated

    def main(ctx):
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        yield from ctx.spawn(worker, done, on=1)
        yield ctx.compute(100_000_000)
        return True

    with pytest.raises(Exception):
        ivy.run(main)


def test_twolevel_serves_locally_after_refill():
    ivy = make_ivy("twolevel", nodes=2)

    def worker(ctx, done):
        for _ in range(6):
            addr = yield from ctx.malloc(512)
            yield from ctx.free(addr)
        yield from ctx.ec_advance(done)

    def main(ctx):
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        yield from ctx.spawn(worker, done, on=1)
        yield from ctx.ec_wait(done, 1)
        return True

    assert ivy.run(main)
    c1 = ivy.node(1).counters
    assert c1["chunk_refills"] == 1  # one chunk covers the burst
    assert c1["local_allocations"] >= 5


def test_twolevel_refills_with_oversized_requests():
    ivy = make_ivy("twolevel", nodes=1)
    chunk = ivy.config.sched.alloc_chunk_pages * ivy.config.svm.page_size

    def main(ctx):
        big = yield from ctx.malloc(chunk * 2)  # larger than one chunk
        yield from ctx.write_i64(big, 7)
        v = yield from ctx.read_i64(big)
        return v

    assert ivy.run(main) == 7
