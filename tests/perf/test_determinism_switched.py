"""Golden determinism fixtures for the switched fabric.

``golden_switched.json`` holds ``(events_executed, time_ns)`` for
dotprod/jacobi/tsp under the centralized, dynamic, and broadcast
managers on ``SwitchedFabric`` — the broadcast manager matters most
here, because its owner-location broadcasts ride the multicast tree
(real fan-out cost) instead of free ring snooping.

Together with ``test_determinism.py`` (which pins the default ring
backend bit-for-bit) these fixtures prove the fabric abstraction is a
*medium* swap, not a behaviour change: both backends are exactly
reproducible, and tuning one cannot silently drift the other.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.ivy import Ivy
from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig

GOLDEN_PATH = Path(__file__).parent / "golden_switched.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

APPS = {
    "dotprod": lambda p: DotProductApp(p, n=8192),
    "jacobi": lambda p: JacobiApp(p, n=48, iters=3),
    "tsp": lambda p: TspApp(p, ncities=8),
}
MANAGERS = ("centralized", "dynamic", "broadcast")


def _run(app_name: str, manager: str, nprocs: int, checker: bool = False, obs=None):
    cfg = (
        ClusterConfig()
        .replace(nodes=nprocs)
        .with_svm(algorithm=manager)
        .with_fabric(backend="switched")
    )
    if checker:
        cfg = cfg.replace(checker=True)
    app = APPS[app_name](nprocs)
    ivy = Ivy(cfg, obs=obs)
    result = ivy.run(app.main)
    app.check(result)
    return {
        "events_executed": ivy.cluster.sim.events_executed,
        "time_ns": ivy.time_ns,
    }


CASES = [
    (app_name, manager, p)
    for app_name in APPS
    for manager in MANAGERS
    for p in (2, 3)
]


@pytest.mark.parametrize(
    "app_name,manager,nprocs",
    CASES,
    ids=[f"{a}-{m}-p{p}" for a, m, p in CASES],
)
def test_switched_schedule_matches_golden(app_name, manager, nprocs):
    assert _run(app_name, manager, nprocs) == GOLDEN[f"{app_name}/{manager}/p{nprocs}"]


@pytest.mark.parametrize(
    "app_name,manager,nprocs",
    CASES,
    ids=[f"{a}-{m}-p{p}" for a, m, p in CASES],
)
def test_timeline_and_sampling_preserve_switched_schedule(app_name, manager, nprocs):
    # Pure-observation proof on the switched backend: per-port window
    # accounting in _hop, the timeline, and head-based span sampling
    # must not move a single tick on any golden fixture.
    from repro.obs import Observability

    obs = Observability(
        timeline_window_ns=200_000_000, sample_every=4, hist_backend="logbucket"
    )
    got = _run(app_name, manager, nprocs, obs=obs)
    assert got == GOLDEN[f"{app_name}/{manager}/p{nprocs}"]


def test_switched_timeline_sees_port_links():
    # The windowed link series really is per-port on this backend.
    from repro.obs import Observability

    obs = Observability(timeline_window_ns=200_000_000)
    _run("dotprod", "dynamic", 2, obs=obs)
    links = obs.timeline.links()
    assert any(name.startswith("tx[") for name in links)
    assert any(name.startswith("rx[") for name in links)


def test_oracle_clean_and_schedule_preserving_on_switched():
    # The coherence oracle watches every transition; it must neither
    # fire nor perturb the schedule on the switched backend.
    got = _run("jacobi", "broadcast", 2, checker=True)
    assert got == GOLDEN["jacobi/broadcast/p2"]


def test_backends_really_differ():
    # Sanity: the fixtures are not accidentally ring numbers.
    ring_golden = json.loads(
        (Path(__file__).parent / "golden_schedules.json").read_text()
    )
    assert (
        GOLDEN["dotprod/dynamic/p2"]["time_ns"]
        != ring_golden["dotprod/dynamic/p2"]["time_ns"]
    )
