"""Schedule-preservation goldens for the wall-clock fast paths.

``golden_schedules.json`` holds ``(events_executed, time_ns)`` for
dotprod/jacobi/tsp under all three manager algorithms, captured on the
pre-fast-path tree.  The hot-path optimisations (kernel FIFO lane,
``schedule_nocancel``, the no-fault data-plane fast path, the O(1) LRU)
must be *bit-for-bit schedule-preserving*: every fixture must keep
matching exactly.  A mismatch means an optimisation changed event
ordering — a correctness bug even if the app output is right, because
the oracle, the explorer, and every committed BENCH number depend on
the schedule.

The fixtures double as a drift tripwire: any future change that alters
them must either be a bug or consciously re-capture the goldens and say
why in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.ivy import Ivy
from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig

GOLDEN_PATH = Path(__file__).parent / "golden_schedules.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

APPS = {
    "dotprod": lambda p: DotProductApp(p, n=8192),
    "jacobi": lambda p: JacobiApp(p, n=48, iters=3),
    "tsp": lambda p: TspApp(p, ncities=8),
}
MANAGERS = ("centralized", "fixed", "dynamic")


def _run(
    app_name: str,
    manager: str,
    nprocs: int,
    frames: int | None = None,
    replacement: str = "lru",
    obs=None,
    checker: bool = False,
):
    cfg = ClusterConfig().replace(nodes=nprocs).with_svm(algorithm=manager)
    if frames is not None:
        cfg = cfg.with_memory(frames=frames, replacement=replacement)
    if checker:
        cfg = cfg.replace(checker=True)
    app = APPS[app_name](nprocs)
    ivy = Ivy(cfg, obs=obs)
    result = ivy.run(app.main)
    app.check(result)
    return {
        "events_executed": ivy.cluster.sim.events_executed,
        "time_ns": ivy.time_ns,
    }


CASES = [
    (app_name, manager, p)
    for app_name in APPS
    for manager in MANAGERS
    for p in (2, 3)
]


@pytest.mark.parametrize(
    "app_name,manager,nprocs",
    CASES,
    ids=[f"{a}-{m}-p{p}" for a, m, p in CASES],
)
def test_schedule_matches_golden(app_name, manager, nprocs):
    assert _run(app_name, manager, nprocs) == GOLDEN[f"{app_name}/{manager}/p{nprocs}"]


@pytest.mark.parametrize("replacement", ["lru", "random"])
def test_schedule_matches_golden_under_eviction(replacement):
    # Capacity pressure exercises lru_victim / the recency list: the O(1)
    # LRU must pick byte-identical victims to the old min-stamp scan.
    got = _run("jacobi", "dynamic", 2, frames=12, replacement=replacement)
    assert got == GOLDEN[f"jacobi/dynamic/p2/frames12-{replacement}"]


def test_observability_does_not_perturb_schedule():
    # Span tracing rides the messages; recording must not shift a tick.
    from repro.obs import Observability

    obs = Observability()
    got = _run("tsp", "dynamic", 3, obs=obs)
    assert got == GOLDEN["tsp/dynamic/p3"]
    assert obs.spans  # actually traced something


def _full_obs():
    # Every observational feature at once: windowed timeline, per-link
    # window accounting, head-based sampling, log-bucketed histograms.
    from repro.obs import Observability

    return Observability(
        timeline_window_ns=200_000_000, sample_every=4, hist_backend="logbucket"
    )


@pytest.mark.parametrize(
    "app_name,manager,nprocs",
    CASES,
    ids=[f"{a}-{m}-p{p}" for a, m, p in CASES],
)
def test_timeline_and_sampling_preserve_schedule(app_name, manager, nprocs):
    # The tentpole's soundness claim, asserted against every ring golden:
    # with the timeline, windowed link accounting, and span sampling all
    # enabled, (events_executed, time_ns) still match bit-for-bit.
    got = _run(app_name, manager, nprocs, obs=_full_obs())
    assert got == GOLDEN[f"{app_name}/{manager}/p{nprocs}"]


@pytest.mark.parametrize("replacement", ["lru", "random"])
def test_timeline_preserves_schedule_under_eviction(replacement):
    got = _run(
        "jacobi", "dynamic", 2, frames=12, replacement=replacement,
        obs=_full_obs(),
    )
    assert got == GOLDEN[f"jacobi/dynamic/p2/frames12-{replacement}"]


def test_sampled_span_set_is_reproducible():
    # Head-based sampling is a pure hash of span ids: two identical runs
    # must keep exactly the same spans, and strictly fewer than an
    # unsampled run (i.e. the sampler actually dropped something).
    from repro.obs import Observability

    def sids(obs):
        return [span.sid for span in obs.spans]

    first, second = _full_obs(), _full_obs()
    assert _run("jacobi", "dynamic", 2, obs=first) == _run(
        "jacobi", "dynamic", 2, obs=second
    )
    assert sids(first) == sids(second)
    assert first.spans.dropped == second.spans.dropped > 0

    unsampled = Observability(timeline_window_ns=200_000_000)
    _run("jacobi", "dynamic", 2, obs=unsampled)
    assert 0 < len(first.spans.spans) < len(unsampled.spans.spans)
    # Same sid allocation either way: the kept set is a subset.
    assert set(sids(first)) < set(sids(unsampled))


def test_timeline_and_sampling_draw_no_rng():
    # Pure observation also means *no entropy consumption*: the named
    # RNG streams must end a fully-observed run in exactly the state an
    # unobserved run leaves them (same streams, same generator state).
    def stream_states(obs):
        cfg = (
            ClusterConfig().replace(nodes=2).with_svm(algorithm="dynamic")
            .with_memory(frames=12, replacement="random")
        )
        app = APPS["jacobi"](2)
        ivy = Ivy(cfg, obs=obs)
        app.check(ivy.run(app.main))
        return {
            name: gen.bit_generator.state
            for name, gen in ivy.cluster.rngs._streams.items()
        }

    plain = stream_states(None)
    observed = stream_states(_full_obs())
    assert plain.keys() == observed.keys()
    assert plain == observed


@pytest.mark.parametrize("manager", MANAGERS)
def test_oracle_clean_on_fast_path_runs(manager):
    # The coherence oracle (PR 1) watches every protocol transition; a
    # fast path that skipped a transition or reordered one would trip it.
    # The checker itself must also not perturb the schedule.
    got = _run("jacobi", manager, 2, checker=True)
    assert got == GOLDEN[f"jacobi/{manager}/p2"]
