"""Schedule-preservation goldens for the wall-clock fast paths.

``golden_schedules.json`` holds ``(events_executed, time_ns)`` for
dotprod/jacobi/tsp under all three manager algorithms, captured on the
pre-fast-path tree.  The hot-path optimisations (kernel FIFO lane,
``schedule_nocancel``, the no-fault data-plane fast path, the O(1) LRU)
must be *bit-for-bit schedule-preserving*: every fixture must keep
matching exactly.  A mismatch means an optimisation changed event
ordering — a correctness bug even if the app output is right, because
the oracle, the explorer, and every committed BENCH number depend on
the schedule.

The fixtures double as a drift tripwire: any future change that alters
them must either be a bug or consciously re-capture the goldens and say
why in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.ivy import Ivy
from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig

GOLDEN_PATH = Path(__file__).parent / "golden_schedules.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

APPS = {
    "dotprod": lambda p: DotProductApp(p, n=8192),
    "jacobi": lambda p: JacobiApp(p, n=48, iters=3),
    "tsp": lambda p: TspApp(p, ncities=8),
}
MANAGERS = ("centralized", "fixed", "dynamic")


def _run(
    app_name: str,
    manager: str,
    nprocs: int,
    frames: int | None = None,
    replacement: str = "lru",
    obs=None,
    checker: bool = False,
):
    cfg = ClusterConfig().replace(nodes=nprocs).with_svm(algorithm=manager)
    if frames is not None:
        cfg = cfg.with_memory(frames=frames, replacement=replacement)
    if checker:
        cfg = cfg.replace(checker=True)
    app = APPS[app_name](nprocs)
    ivy = Ivy(cfg, obs=obs)
    result = ivy.run(app.main)
    app.check(result)
    return {
        "events_executed": ivy.cluster.sim.events_executed,
        "time_ns": ivy.time_ns,
    }


CASES = [
    (app_name, manager, p)
    for app_name in APPS
    for manager in MANAGERS
    for p in (2, 3)
]


@pytest.mark.parametrize(
    "app_name,manager,nprocs",
    CASES,
    ids=[f"{a}-{m}-p{p}" for a, m, p in CASES],
)
def test_schedule_matches_golden(app_name, manager, nprocs):
    assert _run(app_name, manager, nprocs) == GOLDEN[f"{app_name}/{manager}/p{nprocs}"]


@pytest.mark.parametrize("replacement", ["lru", "random"])
def test_schedule_matches_golden_under_eviction(replacement):
    # Capacity pressure exercises lru_victim / the recency list: the O(1)
    # LRU must pick byte-identical victims to the old min-stamp scan.
    got = _run("jacobi", "dynamic", 2, frames=12, replacement=replacement)
    assert got == GOLDEN[f"jacobi/dynamic/p2/frames12-{replacement}"]


def test_observability_does_not_perturb_schedule():
    # Span tracing rides the messages; recording must not shift a tick.
    from repro.obs import Observability

    obs = Observability()
    got = _run("tsp", "dynamic", 3, obs=obs)
    assert got == GOLDEN["tsp/dynamic/p3"]
    assert obs.spans  # actually traced something


@pytest.mark.parametrize("manager", MANAGERS)
def test_oracle_clean_on_fast_path_runs(manager):
    # The coherence oracle (PR 1) watches every protocol transition; a
    # fast path that skipped a transition or reordered one would trip it.
    # The checker itself must also not perturb the schedule.
    got = _run("jacobi", manager, 2, checker=True)
    assert got == GOLDEN[f"jacobi/{manager}/p2"]
