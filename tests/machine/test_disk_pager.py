"""Unit tests for the disk model and the LRU pager."""

import numpy as np
import pytest

from repro.config import DiskConfig
from repro.machine.disk import Disk
from repro.machine.memory import PhysicalMemory
from repro.machine.pager import Pager
from repro.metrics.collect import Counters
from repro.sim.kernel import Simulator
from repro.sim.process import SimDriver


PAGE = 64


def make_disk(**cfg):
    counters = Counters()
    return Disk(DiskConfig(**cfg), PAGE, counters), counters


def run(sim, driver, gen):
    task = driver.spawn(gen, "t")
    sim.run()
    if task.error:
        raise task.error
    return task.result


def test_disk_write_read_roundtrip_charges_time_and_counts():
    sim = Simulator()
    driver = SimDriver(sim)
    disk, counters = make_disk(seek=1000, bandwidth_bps=8_000_000)
    data = np.arange(PAGE, dtype=np.uint8)

    def job():
        yield from disk.write_page(7, data)
        back = yield from disk.read_page(7)
        return back

    result = run(sim, driver, job())
    assert np.array_equal(result, data)
    assert counters["disk_writes"] == 1
    assert counters["disk_reads"] == 1
    expected = 2 * (1000 + PAGE * 8 * 1_000_000_000 // 8_000_000)
    assert sim.now == expected


def test_disk_read_of_missing_page_raises():
    sim = Simulator()
    driver = SimDriver(sim)
    disk, _ = make_disk()

    def job():
        yield from disk.read_page(3)

    with pytest.raises(Exception):
        run(sim, driver, job())


def test_disk_transfers_serialise_on_the_arm():
    sim = Simulator()
    driver = SimDriver(sim)
    disk, _ = make_disk(seek=1_000_000, bandwidth_bps=8_000_000_000)

    def writer(page):
        yield from disk.write_page(page, np.zeros(PAGE, dtype=np.uint8))

    driver.spawn(writer(0), "w0")
    driver.spawn(writer(1), "w1")
    sim.run()
    # Two sequential seeks, not one.
    assert sim.now >= 2_000_000


def make_pager(frames=3):
    sim = Simulator()
    driver = SimDriver(sim)
    counters = Counters()
    memory = PhysicalMemory(PAGE, frames)
    disk = Disk(DiskConfig(seek=100), PAGE, counters)
    pager = Pager(memory, disk, counters)
    return sim, driver, memory, disk, pager, counters


def test_pager_evicts_lru_via_policy():
    sim, driver, memory, disk, pager, counters = make_pager(frames=2)
    evicted = []

    def policy(page):
        evicted.append(page)
        yield from pager.page_out(page)
        return True

    pager.set_eviction_policy(policy)

    def job():
        yield from pager.install(0, np.full(PAGE, 1, dtype=np.uint8))
        yield from pager.install(1, np.full(PAGE, 2, dtype=np.uint8))
        yield from pager.install(2, np.full(PAGE, 3, dtype=np.uint8))

    run(sim, driver, job())
    assert evicted == [0]
    assert disk.holds(0)
    assert sorted(memory.resident_pages()) == [1, 2]
    assert counters["evictions"] == 1
    assert counters["disk_writes"] == 1


def test_pager_page_in_restores_content():
    sim, driver, memory, disk, pager, counters = make_pager(frames=2)

    def policy(page):
        yield from pager.page_out(page)
        return True

    pager.set_eviction_policy(policy)
    payload = np.arange(PAGE, dtype=np.uint8)

    def job():
        yield from pager.install(0, payload)
        yield from pager.install(1)
        yield from pager.install(2)  # evicts page 0 to disk
        frame = yield from pager.page_in(0)  # evicts another, restores 0
        return frame

    frame = run(sim, driver, job())
    assert np.array_equal(frame, payload)
    assert counters["disk_reads"] == 1
    assert not disk.holds(0)  # image discarded after successful page-in


def test_pager_without_policy_raises_under_pressure():
    sim, driver, memory, disk, pager, counters = make_pager(frames=2)

    def job():
        yield from pager.install(0)
        yield from pager.install(1)
        yield from pager.install(2)

    with pytest.raises(Exception):
        run(sim, driver, job())


def test_broken_policy_detected():
    sim, driver, memory, disk, pager, counters = make_pager(frames=2)

    def policy(page):
        return True  # claims success without freeing the frame
        yield  # pragma: no cover

    pager.set_eviction_policy(policy)

    def job():
        yield from pager.install(0)
        yield from pager.install(1)
        yield from pager.install(2)

    with pytest.raises(Exception, match="failed to release"):
        run(sim, driver, job())
