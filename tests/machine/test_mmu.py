"""Unit tests for address layout and protection modes."""

import pytest

from repro.machine.mmu import Access, AddressLayout


BASE = 0x8000_0000


def layout(page_size=1024, pages=16):
    return AddressLayout(BASE, pages * page_size, page_size)


def test_access_ordering():
    assert Access.NIL < Access.READ < Access.WRITE
    assert not Access.NIL.permits_read()
    assert Access.READ.permits_read()
    assert not Access.READ.permits_write()
    assert Access.WRITE.permits_read() and Access.WRITE.permits_write()


def test_page_of_and_base_roundtrip():
    lay = layout()
    for page in (0, 1, 7, 15):
        addr = lay.page_base(page)
        assert lay.page_of(addr) == page
        assert lay.page_of(addr + 1023) == page


def test_offset_in_page():
    lay = layout()
    assert lay.offset_in_page(BASE) == 0
    assert lay.offset_in_page(BASE + 1500) == 1500 - 1024


def test_pages_spanned():
    lay = layout()
    assert list(lay.pages_spanned(BASE, 1024)) == [0]
    assert list(lay.pages_spanned(BASE + 1000, 100)) == [0, 1]
    assert list(lay.pages_spanned(BASE, 0)) == []
    assert list(lay.pages_spanned(BASE + 2048, 3000)) == [2, 3, 4]


def test_spans_covers_range_exactly():
    lay = layout()
    pieces = list(lay.spans(BASE + 1000, 2100))
    # (page, page_offset, buffer_offset, length)
    assert pieces == [(0, 1000, 0, 24), (1, 0, 24, 1024), (2, 0, 1048, 1024), (3, 0, 2072, 28)]
    assert sum(p[3] for p in pieces) == 2100


def test_out_of_range_rejected():
    lay = layout()
    with pytest.raises(ValueError):
        lay.page_of(BASE - 1)
    with pytest.raises(ValueError):
        lay.check(BASE + 16 * 1024 - 10, 20)
    with pytest.raises(ValueError):
        lay.check(BASE, -1)


def test_non_power_of_two_page_size_rejected():
    with pytest.raises(ValueError):
        AddressLayout(BASE, 1000 * 3, 1000)


def test_partial_page_space_rejected():
    with pytest.raises(ValueError):
        AddressLayout(BASE, 1024 * 3 + 1, 1024)
