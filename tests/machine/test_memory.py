"""Unit tests for the physical frame pool."""

import numpy as np
import pytest

from repro.machine.memory import FramePressure, PhysicalMemory


def test_install_and_read_back():
    mem = PhysicalMemory(page_size=64, frames=4)
    data = np.arange(64, dtype=np.uint8)
    mem.install(5, data)
    assert 5 in mem
    assert np.array_equal(mem.data(5), data)


def test_install_zero_fills_by_default():
    mem = PhysicalMemory(page_size=32, frames=None)
    frame = mem.install(0)
    assert np.all(frame == 0)


def test_capacity_enforced():
    mem = PhysicalMemory(page_size=16, frames=2)
    mem.install(0)
    mem.install(1)
    assert mem.full
    with pytest.raises(FramePressure):
        mem.install(2)
    # Reinstall of a resident page is fine even when full.
    mem.install(1, np.ones(16, dtype=np.uint8))


def test_lru_victim_is_least_recently_used():
    mem = PhysicalMemory(page_size=16, frames=3)
    mem.install(10)
    mem.install(11)
    mem.install(12)
    mem.touch(10)  # 11 is now the coldest
    assert mem.lru_victim() == 11


def test_pinning_excludes_from_eviction():
    mem = PhysicalMemory(page_size=16, frames=2)
    mem.install(0)
    mem.install(1)
    mem.pin(0)
    # 0 is older but pinned.
    assert mem.lru_victim() == 1
    mem.pin(1)
    with pytest.raises(FramePressure):
        mem.lru_victim()
    mem.unpin(0)
    assert mem.lru_victim() == 0


def test_nested_pins():
    mem = PhysicalMemory(page_size=16, frames=None)
    mem.install(3)
    mem.pin(3)
    mem.pin(3)
    mem.unpin(3)
    assert mem.pinned(3)
    mem.unpin(3)
    assert not mem.pinned(3)
    with pytest.raises(RuntimeError):
        mem.unpin(3)


def test_drop_rejects_pinned_pages():
    mem = PhysicalMemory(page_size=16, frames=None)
    mem.install(1)
    mem.pin(1)
    with pytest.raises(RuntimeError):
        mem.drop(1)
    mem.unpin(1)
    mem.drop(1)
    assert 1 not in mem


def test_drop_clears_recency_and_reinstall_starts_hot():
    # Evicting a page must leave no recency residue: after a reinstall
    # the page re-enters as the *hottest* frame, never inheriting the
    # stale position (or stamp, pre-O(1)-LRU) it held before the drop.
    mem = PhysicalMemory(page_size=16, frames=3)
    mem.install(0)
    mem.install(1)
    mem.install(2)
    mem.drop(0)  # 0 was the coldest
    assert 0 not in mem._recency
    mem.install(0)  # back in, now the hottest
    assert mem.lru_victim() == 1
    assert list(mem._recency) == [1, 2, 0]


def test_touch_of_non_resident_page_is_rejected():
    # Touching a dropped page used to silently resurrect a recency entry
    # for a frame that no longer exists; now it asserts.
    mem = PhysicalMemory(page_size=16, frames=3)
    mem.install(7)
    mem.drop(7)
    with pytest.raises(AssertionError):
        mem.touch(7)


def test_data_of_missing_page_raises():
    mem = PhysicalMemory(page_size=16, frames=None)
    with pytest.raises(KeyError):
        mem.data(99)


def test_wrong_size_install_rejected():
    mem = PhysicalMemory(page_size=16, frames=None)
    with pytest.raises(ValueError):
        mem.install(0, np.zeros(8, dtype=np.uint8))


def test_tiny_capacity_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(page_size=16, frames=1)
