"""Property-based tests for address arithmetic (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.mmu import AddressLayout

BASE = 0x8000_0000
PAGES = 64


def layouts():
    return st.sampled_from([256, 512, 1024, 4096]).map(
        lambda ps: AddressLayout(BASE, PAGES * ps, ps)
    )


@settings(max_examples=200)
@given(
    layout=layouts(),
    start=st.integers(min_value=0, max_value=PAGES * 256 - 1),
    nbytes=st.integers(min_value=0, max_value=3000),
)
def test_spans_partition_the_range_exactly(layout, start, nbytes):
    addr = BASE + start
    nbytes = min(nbytes, layout.size - start)
    pieces = list(layout.spans(addr, nbytes))
    # Pieces are contiguous in the buffer and cover it exactly.
    expected_offset = 0
    covered = 0
    for page, off, boff, length in pieces:
        assert boff == expected_offset
        assert length > 0
        assert 0 <= off < layout.page_size
        assert off + length <= layout.page_size
        # The piece's virtual address really lies in that page.
        assert layout.page_of(addr + boff) == page
        expected_offset += length
        covered += length
    assert covered == nbytes


@settings(max_examples=200)
@given(
    layout=layouts(),
    start=st.integers(min_value=0, max_value=PAGES * 256 - 1),
    nbytes=st.integers(min_value=1, max_value=3000),
)
def test_pages_spanned_matches_spans(layout, start, nbytes):
    addr = BASE + start
    nbytes = max(1, min(nbytes, layout.size - start))
    via_spans = [p for p, _, _, _ in layout.spans(addr, nbytes)]
    assert via_spans == list(layout.pages_spanned(addr, nbytes))
    # Contiguous, increasing page numbers.
    assert via_spans == sorted(set(via_spans))


@settings(max_examples=100)
@given(layout=layouts(), page=st.integers(min_value=0, max_value=PAGES - 1))
def test_page_base_roundtrip(layout, page):
    base_addr = layout.page_base(page)
    assert layout.page_of(base_addr) == page
    assert layout.offset_in_page(base_addr) == 0
    assert layout.page_of(base_addr + layout.page_size - 1) == page
