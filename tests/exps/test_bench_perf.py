"""The wall-clock bench mode: schema, deterministic event counts, and the
regression-check logic CI's perf-smoke job runs."""

import copy

from repro.exps.bench import check_perf, run_perf


def test_run_perf_schema_and_determinism():
    doc = run_perf(repeats=1)
    assert doc["schema"] == "repro.bench-perf/1"
    assert set(doc["runs"]) == {
        "dotprod_p1", "dotprod_p2", "jacobi_p1",
        "jacobi_p2", "pde_capacity_p1", "pde_capacity_p2",
    }
    for run in doc["runs"].values():
        assert run["events"] > 0
        assert run["wall_s"] > 0.0
        assert run["events_per_sec"] > 0
    assert doc["aggregate"]["events"] == sum(
        run["events"] for run in doc["runs"].values()
    )
    # Event counts are pure simulation behaviour: a second measurement
    # must reproduce them exactly (wall clocks, of course, differ).
    again = run_perf(repeats=1)
    assert {k: v["events"] for k, v in again["runs"].items()} == {
        k: v["events"] for k, v in doc["runs"].items()
    }


def _fake_doc() -> dict:
    return {
        "schema": "repro.bench-perf/1",
        "runs": {
            "a": {"wall_s": 0.01, "events": 100, "events_per_sec": 10000},
            "b": {"wall_s": 0.02, "events": 300, "events_per_sec": 15000},
        },
        "aggregate": {"events": 400, "wall_s": 0.03, "events_per_sec": 13333},
    }


def test_check_perf_passes_against_itself():
    doc = _fake_doc()
    assert check_perf(doc, copy.deepcopy(doc)) == []


def test_check_perf_flags_event_drift_exactly():
    doc = _fake_doc()
    doc["runs"]["a"]["events"] = 101  # deterministic count changed
    problems = check_perf(doc, _fake_doc())
    assert len(problems) == 1 and "behaviour drift" in problems[0]


def test_check_perf_flags_missing_case():
    doc = _fake_doc()
    del doc["runs"]["b"]
    problems = check_perf(doc, _fake_doc())
    assert any("missing" in p for p in problems)


def test_check_perf_tolerates_bounded_slowdown():
    doc = _fake_doc()
    doc["aggregate"]["events_per_sec"] = 10000  # 25% down: inside 30%
    assert check_perf(doc, _fake_doc(), tolerance=0.30) == []
    doc["aggregate"]["events_per_sec"] = 9000  # 32.5% down: outside
    problems = check_perf(doc, _fake_doc(), tolerance=0.30)
    assert len(problems) == 1 and "below floor" in problems[0]
