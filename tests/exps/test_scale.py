"""The scale-out benchmark harness: job specs, the deterministic
throughput metric, and the committed-artifact check logic."""

import copy

from repro.exps.presets import (
    SCALE_NODE_COUNTS,
    SCALE_PAGE_BYTES,
    scale_fig4,
    scale_fig5,
)
from repro.exps.scale import check_scale, run_scale, scale_jobs


def test_scale_jobs_cover_the_class_x_nodes_x_backend_grid():
    jobs = scale_jobs()
    keys = {job.key for job in jobs}
    assert len(jobs) == len(keys) == 2 * len(SCALE_NODE_COUNTS) * 2
    for klass in ("fig5", "fig4"):
        for nodes in SCALE_NODE_COUNTS:
            for backend in ("ring", "switched"):
                assert f"{klass}/n{nodes}/{backend}" in keys
    for job in jobs:
        assert job.config is not None
        assert job.config.nodes == job.nprocs
        assert job.config.svm.page_size == SCALE_PAGE_BYTES
        assert job.check  # numerical output verified against the golden


def test_scale_presets_pick_the_backend():
    for preset in (scale_fig5, scale_fig4):
        _, _, ring_cfg = preset(64, "ring")
        _, _, sw_cfg = preset(64, "switched")
        assert ring_cfg.fabric.backend == "ring"
        assert sw_cfg.fabric.backend == "switched"


def test_fig4_preset_is_capacity_bound():
    _, args, config = scale_fig4(64, "switched")
    vector_pages = (args["m"] ** 3 * 8 + SCALE_PAGE_BYTES - 1) // SCALE_PAGE_BYTES
    # One vector does not fit; the three-vector working set is far out.
    assert config.memory.frames < 2 * vector_pages
    assert config.memory.replacement == "random"


def test_eventcount_capacity_fits_a_256_node_barrier():
    from repro.sync.eventcount import waiter_capacity

    assert waiter_capacity(SCALE_PAGE_BYTES) >= 256


def test_run_scale_is_deterministic_and_switched_wins(tmp_path):
    # The smallest representative sweep: fig5+fig4 at 16 nodes (cheap),
    # exercising the real runner path end to end twice.
    doc = run_scale(nodes_list=(16,), workers=1)
    again = run_scale(nodes_list=(16,), workers=1)
    assert doc["runs"] == again["runs"]
    assert check_scale(doc, doc) == []
    for klass in ("fig5", "fig4"):
        ring = doc["runs"][f"{klass}/n16/ring"]
        switched = doc["runs"][f"{klass}/n16/switched"]
        assert ring["events"] > 0 and switched["events"] > 0
        assert switched["time_ns"] < ring["time_ns"]


def _fake_doc():
    runs = {}
    for klass in ("fig5", "fig4"):
        for nodes in (64, 128):
            for backend, evs in (("ring", 1000.0), ("switched", 3000.0)):
                runs[f"{klass}/n{nodes}/{backend}"] = {
                    "nodes": nodes,
                    "fabric": backend,
                    "time_ns": 10**9,
                    "events": 1000 * nodes,
                    "events_per_sim_sec": evs,
                    "medium": {},
                }
    return {"schema": "repro.scale/1", "runs": runs}


def test_check_scale_passes_on_identical_docs():
    doc = _fake_doc()
    assert check_scale(doc, copy.deepcopy(doc)) == []


def test_check_scale_flags_event_drift():
    doc, base = _fake_doc(), _fake_doc()
    doc["runs"]["fig5/n64/ring"]["events"] += 1
    problems = check_scale(doc, base)
    assert len(problems) == 1
    assert "events" in problems[0] and "fig5/n64/ring" in problems[0]


def test_check_scale_flags_missing_baseline_case():
    doc, base = _fake_doc(), _fake_doc()
    del base["runs"]["fig4/n128/switched"]
    problems = check_scale(doc, base)
    assert any("not in the committed baseline" in p for p in problems)


def test_check_scale_flags_a_lost_crossover():
    doc = _fake_doc()
    doc["runs"]["fig4/n128/switched"]["events_per_sim_sec"] = 900.0
    problems = check_scale(doc, copy.deepcopy(doc))
    assert any("does not beat ring" in p for p in problems)


def test_check_scale_accepts_a_partial_sweep():
    # CI's fabric-smoke measures only 64 nodes against the full artifact.
    base = _fake_doc()
    doc = copy.deepcopy(base)
    doc["runs"] = {k: v for k, v in doc["runs"].items() if "/n64/" in k}
    assert check_scale(doc, base) == []


def test_committed_artifact_satisfies_the_acceptance_criteria():
    """BENCH_scale.json is the PR's evidence: a 256-node fig4-class run
    completes on the switched fabric, and switched events/s beats ring
    at every committed node count >= 64."""
    import json
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_scale.json"
    doc = json.loads(path.read_text())
    runs = doc["runs"]
    assert runs["fig4/n256/switched"]["events"] > 0
    for klass in ("fig5", "fig4"):
        for nodes in SCALE_NODE_COUNTS:
            ring = runs[f"{klass}/n{nodes}/ring"]["events_per_sim_sec"]
            switched = runs[f"{klass}/n{nodes}/switched"]["events_per_sim_sec"]
            assert switched > ring
