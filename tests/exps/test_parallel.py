"""The parallel experiment runner: picklable jobs, deterministic merging,
serial fallback, and agreement with the serial speedup harness."""

import pickle

import pytest

from repro.config import ClusterConfig
from repro.exps.parallel import (
    APP_REGISTRY,
    Job,
    measure_speedups_parallel,
    register_app,
    resolve_workers,
    run_jobs,
)
from repro.metrics.speedup import measure_speedups, run_app


def test_job_spec_is_picklable():
    job = Job(
        "jacobi", {"n": 64, "iters": 2}, nprocs=2,
        config=ClusterConfig().with_svm(page_size=512), key=("jacobi", 2),
    )
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job


def test_unknown_app_is_a_loud_error():
    with pytest.raises(KeyError, match="unknown app 'nope'"):
        Job("nope").factory()


def test_registry_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_app("jacobi", APP_REGISTRY["jacobi"])


def test_resolve_workers_caps_at_job_count(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(8, njobs=3) == 3
    assert resolve_workers(1, njobs=100) == 1
    assert resolve_workers(0, njobs=5) == 1  # never below one
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_workers(None, njobs=10) == 2


def test_serial_fallback_matches_direct_run_app():
    job = Job("dotprod", {"n": 2048}, nprocs=2)
    (via_runner,) = run_jobs([job], workers=1)
    direct = run_app(job.factory(), 2)
    assert via_runner.time_ns == direct.time_ns
    assert via_runner.counters.snapshot() == direct.counters.snapshot()


def test_pool_results_merge_in_job_order():
    # Two workers on tiny jobs: completion order must not leak into the
    # merge, and every result must be bit-identical to the serial run.
    jobs = [Job("dotprod", {"n": 2048}, nprocs=p, key=p) for p in (2, 1)]
    serial = run_jobs(jobs, workers=1)
    pooled = run_jobs(jobs, workers=2)
    assert [r.time_ns for r in pooled] == [r.time_ns for r in serial]
    assert [r.nprocs for r in pooled] == [2, 1]  # job order, not size order
    assert [r.counters.snapshot() for r in pooled] == [
        r.counters.snapshot() for r in serial
    ]


def test_measure_speedups_parallel_matches_serial_harness():
    app_args = {"n": 64, "iters": 2}
    par = measure_speedups_parallel("jacobi", app_args, procs=(1, 2), workers=1)
    ser = measure_speedups(
        Job("jacobi", app_args).factory(), procs=(1, 2)
    )
    assert par.app_name == ser.app_name
    assert [r.time_ns for r in par.runs] == [r.time_ns for r in ser.runs]


def test_per_job_config_is_honoured():
    small = Job("jacobi", {"n": 64, "iters": 2}, nprocs=2,
                config=ClusterConfig().with_svm(page_size=512))
    big = Job("jacobi", {"n": 64, "iters": 2}, nprocs=2,
              config=ClusterConfig().with_svm(page_size=2048))
    r_small, r_big = run_jobs([small, big], workers=1)
    # Different page sizes change fault counts — configs reached the runs.
    faults = lambda r: r.counters["read_faults"] + r.counters["write_faults"]
    assert faults(r_small) != faults(r_big)
