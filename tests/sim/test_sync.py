"""Unit tests for simulation-level locks, gates and wait queues."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import Compute, SimDriver
from repro.sim.sync import Gate, SimLock, WaitQueue


def make():
    sim = Simulator()
    return sim, SimDriver(sim)


def test_lock_mutual_exclusion_and_fifo_order():
    sim, driver = make()
    lock = SimLock()
    order = []

    def job(tag):
        yield from lock.acquire()
        order.append((tag, "in", sim.now))
        yield Compute(10)
        order.append((tag, "out", sim.now))
        lock.release()

    for tag in ("a", "b", "c"):
        driver.spawn(job(tag), tag)
    sim.run()
    # Critical sections never overlap and are entered in arrival order.
    assert order == [
        ("a", "in", 0),
        ("a", "out", 10),
        ("b", "in", 10),
        ("b", "out", 20),
        ("c", "in", 20),
        ("c", "out", 30),
    ]


def test_try_acquire():
    lock = SimLock()
    assert lock.try_acquire()
    assert not lock.try_acquire()
    lock.release()
    assert lock.try_acquire()


def test_release_of_unheld_lock_raises():
    with pytest.raises(RuntimeError):
        SimLock().release()


def test_gate_wait_then_post():
    sim, driver = make()
    gate = Gate()

    def waiter():
        value = yield from gate.wait()
        return value

    task = driver.spawn(waiter(), "w")
    sim.schedule(5, gate.post, "reply")
    sim.run()
    assert task.result == "reply"


def test_gate_post_before_wait_returns_immediately():
    sim, driver = make()
    gate = Gate()
    gate.post(99)

    def waiter():
        value = yield from gate.wait()
        return value

    task = driver.spawn(waiter(), "w")
    sim.run()
    assert task.result == 99
    assert sim.now == 0


def test_gate_double_post_rejected():
    gate = Gate()
    gate.post(1)
    with pytest.raises(RuntimeError):
        gate.post(2)


def test_wait_queue_wake_all_and_one():
    sim, driver = make()
    wq = WaitQueue()
    woken = []

    def waiter(tag):
        value = yield from wq.wait()
        woken.append((tag, value))

    for tag in ("a", "b", "c"):
        driver.spawn(waiter(tag), tag)
    sim.schedule(1, wq.wake_one, "first")
    sim.schedule(2, wq.wake_all, "rest")
    sim.run()
    assert woken == [("a", "first"), ("b", "rest"), ("c", "rest")]


def test_wait_queue_wake_one_empty_returns_false():
    assert WaitQueue().wake_one() is False
