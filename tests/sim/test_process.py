"""Unit tests for generator tasks, effects and the SimDriver."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import (
    Compute,
    Sleep,
    Suspend,
    SimDriver,
    TaskFailure,
    TaskState,
    YieldCpu,
    run_to_completion,
)


def make(sim=None):
    sim = sim or Simulator()
    return sim, SimDriver(sim)


def test_compute_advances_clock_and_returns_result():
    sim, driver = make()

    def job():
        yield Compute(100)
        yield Compute(50)
        return "done"

    task = driver.spawn(job(), "job")
    sim.run()
    assert task.result == "done"
    assert task.state is TaskState.DONE
    assert sim.now == 150


def test_sleep_behaves_like_delay_under_sim_driver():
    sim, driver = make()

    def job():
        yield Sleep(75)
        return sim.now

    task = driver.spawn(job(), "sleeper")
    sim.run()
    assert task.result == 75


def test_suspend_parks_until_wake_and_receives_value():
    sim, driver = make()
    parked = []

    def job():
        got = yield Suspend(parked.append)
        return got

    task = driver.spawn(job(), "waiter")
    sim.schedule(10, lambda: parked[0].wake("payload"))
    sim.run()
    assert task.result == "payload"
    assert parked[0] is task


def test_yield_cpu_interleaves_tasks():
    sim, driver = make()
    order = []

    def job(tag):
        for i in range(3):
            order.append((tag, i))
            yield YieldCpu()

    driver.spawn(job("a"), "a")
    driver.spawn(job("b"), "b")
    sim.run()
    assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]


def test_yield_from_composition_and_fast_path():
    sim, driver = make()

    def helper_no_yield():
        return 42
        yield  # pragma: no cover - makes this a generator

    def helper_with_compute():
        yield Compute(10)
        return 7

    def job():
        a = yield from helper_no_yield()
        b = yield from helper_with_compute()
        return a + b

    task = driver.spawn(job(), "composed")
    sim.run()
    assert task.result == 49
    assert sim.now == 10


def test_unjoined_failure_escalates_to_run():
    sim, driver = make()

    def job():
        yield Compute(5)
        raise ValueError("boom")

    driver.spawn(job(), "bad")
    with pytest.raises(TaskFailure) as exc_info:
        sim.run()
    assert isinstance(exc_info.value.__cause__, ValueError)


def test_joined_failure_is_delivered_to_joiner_not_run():
    sim, driver = make()
    seen = []

    def job():
        yield Compute(5)
        raise ValueError("boom")

    task = driver.spawn(job(), "bad")
    task.on_done(lambda t: seen.append(t.error))
    sim.run()
    assert isinstance(seen[0], ValueError)


def test_on_done_fires_immediately_for_finished_task():
    sim, driver = make()

    def job():
        return 1
        yield  # pragma: no cover

    task = driver.spawn(job(), "quick")
    sim.run()
    hits = []
    task.on_done(hits.append)
    assert hits == [task]


def test_non_effect_yield_is_an_error():
    sim, driver = make()

    def job():
        yield "not an effect"

    driver.spawn(job(), "bad-yield")
    with pytest.raises(TaskFailure):
        sim.run()


def test_negative_durations_rejected():
    with pytest.raises(ValueError):
        Compute(-1)
    with pytest.raises(ValueError):
        Sleep(-5)


def test_run_to_completion_helper():
    def job():
        yield Compute(1)
        return "ok"

    assert run_to_completion(job()) == "ok"


def test_suspended_task_counts_as_blocked_for_deadlock():
    sim, driver = make()

    def job():
        yield Suspend()

    driver.spawn(job(), "forever")
    from repro.sim.kernel import DeadlockError

    with pytest.raises(DeadlockError):
        sim.run()
