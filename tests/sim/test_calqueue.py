"""Property tests: the calendar queue is order-identical to the heap.

Two layers of evidence, both hypothesis-driven:

- the raw :class:`~repro.sim.calqueue.CalendarQueue` against a lazy-
  tombstone ``heapq`` reference, over push/cancel/pop workloads whose
  timestamps straddle bucket and day boundaries;
- :class:`~repro.sim.kernel.CalendarSimulator` against the legacy
  :class:`~repro.sim.kernel.Simulator`, interpreting one random program
  (schedule / schedule_nocancel / schedule_at / cancel / nested
  scheduling from callbacks / ``run(until=...)`` pauses) on both kernels
  and requiring bit-identical execution logs.

The `(when, seq)` total order is the repo's reproducibility invariant —
every committed golden schedule assumes it — so these tests are the
cheap, adversarial version of the 42 fixture gates.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calqueue import NBUCKETS, WIDTH_SHIFT, CalendarQueue
from repro.sim.kernel import CalendarSimulator, CancelHandle, Simulator

BUCKET_NS = 1 << WIDTH_SHIFT
DAY_NS = BUCKET_NS * NBUCKETS

# Deltas chosen to land in the same bucket, adjacent buckets, the next
# day, and deep overflow (the 500 ms retransmit-timeout regime).
DELTAS = st.one_of(
    st.integers(0, 3 * BUCKET_NS),
    st.sampled_from(
        [0, 1, BUCKET_NS - 1, BUCKET_NS, DAY_NS - 1, DAY_NS, DAY_NS + 1,
         3 * DAY_NS, 500_000_000]
    ),
)


# ----------------------------------------------------------------------
# raw queue vs lazy-tombstone heapq


@st.composite
def queue_workloads(draw):
    """A list of ("push", delta) / ("cancel", i) / ("pop",) ops."""
    n = draw(st.integers(1, 60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["push", "push", "push", "cancel", "pop", "pop"]))
        if kind == "push":
            ops.append(("push", draw(DELTAS)))
        elif kind == "cancel":
            ops.append(("cancel", draw(st.integers(0, 200))))
        else:
            ops.append(("pop",))
    return ops


@given(queue_workloads())
@settings(max_examples=200, deadline=None)
def test_calendar_queue_pops_in_heap_order(ops):
    cal = CalendarQueue()
    ref = []  # plain heapq with the same lazy-tombstone discipline
    handles = []
    now = 0  # kernel contract: pushes are never earlier than the last pop
    seq = 0
    popped_cal = []
    popped_ref = []
    for op in ops:
        if op[0] == "push":
            seq += 1
            handle = CancelHandle()
            handles.append(handle)
            entry = (now + op[1], seq, handle, None, (), None)
            cal.push(entry)
            heapq.heappush(ref, entry)
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        else:
            while ref and ref[0][2].cancelled:
                heapq.heappop(ref)
            expect = heapq.heappop(ref) if ref else None
            got = cal.pop() if cal.peek() is not None else None
            assert got == expect
            if got is not None:
                assert cal.peek() is None or cal.peek()[0] >= got[0]
                now = got[0]
                popped_cal.append((got[0], got[1]))
                popped_ref.append((expect[0], expect[1]))
    # Drain both completely: the tails must agree too.
    while True:
        while ref and ref[0][2].cancelled:
            heapq.heappop(ref)
        expect = heapq.heappop(ref) if ref else None
        got = cal.pop() if cal.peek() is not None else None
        assert got == expect
        if got is None:
            break
    assert popped_cal == popped_ref
    assert len(cal) == 0 and not cal


def test_drain_returns_every_live_and_tombstoned_entry():
    cal = CalendarQueue()
    entries = [
        (when, seq, CancelHandle(), None, (), None)
        for seq, when in enumerate([5, DAY_NS + 5, 2 * DAY_NS, 70_000, 7])
    ]
    for entry in entries:
        cal.push(entry)
    entries[1][2].cancel()  # drain keeps tombstones: the caller filters
    drained = cal.drain()
    assert sorted(drained) == sorted(entries)
    assert len(cal) == 0 and cal.peek() is None


# ----------------------------------------------------------------------
# kernel-level program equivalence


@st.composite
def kernel_programs(draw):
    """(top_ops, until) — ops may nest one level into callbacks."""

    def op(depth):
        kind = draw(
            st.sampled_from(
                ["schedule", "schedule", "nocancel", "schedule_at", "cancel"]
            )
        )
        if kind == "cancel":
            return ("cancel", draw(st.integers(0, 100)))
        nested = []
        if depth < 2 and draw(st.booleans()):
            nested = [op(depth + 1) for _ in range(draw(st.integers(1, 3)))]
        return (kind, draw(DELTAS), draw(st.integers(0, 10**6)), nested)

    top = [op(0) for _ in range(draw(st.integers(1, 25)))]
    until = draw(st.one_of(st.none(), DELTAS))
    return top, until


def _interpret(sim, top_ops, until):
    """Run one program; return the (time, tag) execution log."""
    log = []
    handles = []

    def fire(tag, nested):
        log.append((sim.now, tag))
        for op in nested:
            apply_op(op)

    def apply_op(op):
        if op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
            return
        kind, delta, tag, nested = op
        if kind == "schedule":
            handles.append(sim.schedule(delta, fire, tag, nested))
        elif kind == "nocancel":
            sim.schedule_nocancel(delta, fire, tag, nested)
        else:
            handles.append(sim.schedule_at(sim.now + delta, fire, tag, nested))

    for op in top_ops:
        apply_op(op)
    if until is not None:
        # Pause mid-run, then keep scheduling: this is the path where the
        # clock can sit in a later calendar day than the wheel's, and
        # where new events may land *earlier* than everything queued.
        sim.run(until=until)
        for op in top_ops:
            apply_op(op)
    sim.run()
    return log, sim.now, sim.events_executed, sim.pending()


@given(kernel_programs())
@settings(max_examples=150, deadline=None)
def test_calendar_kernel_replays_heap_kernel_exactly(program):
    top_ops, until = program
    assert _interpret(Simulator(), top_ops, until) == _interpret(
        CalendarSimulator(), top_ops, until
    )


# ----------------------------------------------------------------------
# directed regressions: the races hypothesis found interesting


def test_delay_zero_fifo_lane_orders_before_later_seq():
    for sim in (Simulator(), CalendarSimulator()):
        order = []
        sim.schedule(5, lambda: sim.schedule(0, order.append, "zero"))
        sim.schedule(5, order.append, "sibling")
        sim.run()
        assert order == ["zero", "sibling"] or order == ["sibling", "zero"]
        # The two kernels must make the *same* choice:
    logs = []
    for cls in (Simulator, CalendarSimulator):
        sim = cls()
        order = []
        sim.schedule(5, lambda: sim.schedule(0, order.append, "zero"))
        sim.schedule(5, order.append, "sibling")
        sim.run()
        logs.append(order)
    assert logs[0] == logs[1]


def test_same_tick_cancel_race_calendar_kernel():
    sim = CalendarSimulator()
    fired = []
    handles = {}

    def a():
        fired.append("a")
        handles["b"].cancel()

    sim.schedule(5, a)
    handles["b"] = sim.schedule(5, fired.append, "b")
    sim.run()
    assert fired == ["a"]


def test_until_then_earlier_event_rewinds_cursor():
    """After run(until) parks the clock deep in a later bucket, a new
    event earlier than everything queued must still fire first."""
    sim = CalendarSimulator()
    order = []
    sim.schedule(5 * BUCKET_NS, order.append, "late")
    sim.run(until=3 * BUCKET_NS)
    sim.schedule(1, order.append, "early")  # bucket behind the cursor
    sim.run()
    assert order == ["early", "late"]
    assert sim.now == 5 * BUCKET_NS


def test_until_past_day_boundary_then_schedule():
    sim = CalendarSimulator()
    order = []
    sim.schedule(3 * DAY_NS, order.append, "far")
    sim.run(until=DAY_NS + 7)  # clock now in a later day than the wheel
    sim.schedule(1, order.append, "near")
    sim.run()
    assert order == ["near", "far"]


def test_far_future_timer_cancel_never_fires():
    sim = CalendarSimulator()
    fired = []
    handle = sim.schedule(500_000_000, fired.append, "timeout")  # overflow heap
    sim.schedule(10, lambda: handle.cancel())
    sim.run()
    assert fired == []
    assert sim.now == 10
