"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import DeadlockError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_monotonically():
    sim = Simulator()
    stamps = []
    sim.schedule(10, lambda: stamps.append(sim.now))
    sim.schedule(10, lambda: sim.schedule(0, lambda: stamps.append(sim.now)))
    sim.schedule(25, lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == [10, 10, 25]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_cancel_handle_suppresses_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_clock_and_preserves_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 100


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    hits = []

    def outer():
        hits.append(("outer", sim.now))
        sim.schedule(7, inner)

    def inner():
        hits.append(("inner", sim.now))

    sim.schedule(3, outer)
    sim.run()
    assert hits == [("outer", 3), ("inner", 10)]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_deadlock_detection_reports_blocked_tasks():
    sim = Simulator()

    class Stuck:
        is_blocked = True

        def __str__(self):
            return "stuck-task"

    sim.watch(Stuck())
    sim.schedule(1, lambda: None)
    with pytest.raises(DeadlockError, match="stuck-task"):
        sim.run()


def test_no_deadlock_when_watched_tasks_unblocked():
    sim = Simulator()

    class Fine:
        is_blocked = False

    sim.watch(Fine())
    sim.schedule(1, lambda: None)
    assert sim.run() == 1
