"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import DeadlockError, Scheduler, Simulator


class FirstChoice(Scheduler):
    """Always index 0 — reproduces the default seq order."""

    def choose(self, now, events):
        return 0


class LastChoice(Scheduler):
    """Always the highest seq — the maximally reordered schedule."""

    def choose(self, now, events):
        return len(events) - 1


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_monotonically():
    sim = Simulator()
    stamps = []
    sim.schedule(10, lambda: stamps.append(sim.now))
    sim.schedule(10, lambda: sim.schedule(0, lambda: stamps.append(sim.now)))
    sim.schedule(25, lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == [10, 10, 25]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_cancel_handle_suppresses_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_clock_and_preserves_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 100


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    hits = []

    def outer():
        hits.append(("outer", sim.now))
        sim.schedule(7, inner)

    def inner():
        hits.append(("inner", sim.now))

    sim.schedule(3, outer)
    sim.run()
    assert hits == [("outer", 3), ("inner", 10)]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_deadlock_detection_reports_blocked_tasks():
    sim = Simulator()

    class Stuck:
        is_blocked = True

        def __str__(self):
            return "stuck-task"

    sim.watch(Stuck())
    sim.schedule(1, lambda: None)
    with pytest.raises(DeadlockError, match="stuck-task"):
        sim.run()


def test_no_deadlock_when_watched_tasks_unblocked():
    sim = Simulator()

    class Fine:
        is_blocked = False

    sim.watch(Fine())
    sim.schedule(1, lambda: None)
    assert sim.run() == 1


# ----------------------------------------------------------------------
# same-tick cancellation races


def _cancel_race(scheduler):
    """Event ``a`` fires at t=5 and cancels its same-tick sibling ``b``."""
    sim = Simulator()
    sim.scheduler = scheduler
    fired = []
    handles = {}

    def a():
        fired.append("a")
        handles["b"].cancel()

    sim.schedule(5, a)
    handles["b"] = sim.schedule(5, fired.append, "b")
    sim.run()
    return fired


def test_cancellation_racing_same_tick_fire_default_mode():
    assert _cancel_race(None) == ["a"]


def test_cancellation_racing_same_tick_fire_controlled_mode():
    """In controlled mode the tick's batch is gathered *before* the
    chosen event runs; a sibling cancelled by the fired event must still
    be suppressed when it comes back off the heap."""
    assert _cancel_race(FirstChoice()) == ["a"]


def test_reordered_cancellation_kills_the_earlier_sibling():
    """The scheduler fires the later-scheduled event first; if it
    cancels the earlier one, the earlier event must never run even
    though it was already popped into the batch."""
    sim = Simulator()
    sim.scheduler = LastChoice()
    fired = []
    handle_a = sim.schedule(5, fired.append, "a")

    def b():
        fired.append("b")
        handle_a.cancel()

    sim.schedule(5, b)
    sim.run()
    assert fired == ["b"]


def test_controlled_mode_rejects_out_of_range_choice():
    class Bad(Scheduler):
        def choose(self, now, events):
            return len(events)  # one past the end

    sim = Simulator()
    sim.scheduler = Bad()
    sim.schedule(1, lambda: None)
    sim.schedule(1, lambda: None)
    with pytest.raises(IndexError):
        sim.run()


# ----------------------------------------------------------------------
# deadlock reporting


class _Stuck:
    is_blocked = True

    def __init__(self, name):
        self.name = name

    def __str__(self):
        return self.name


@pytest.mark.parametrize("scheduler", [None, FirstChoice()])
def test_deadlock_error_lists_every_blocked_task(scheduler):
    """The error must name *all* blocked watched tasks (not just the
    first) and exclude the runnable ones — that list is what the
    schedule explorer records as the deadlock's witness."""
    sim = Simulator()
    sim.scheduler = scheduler
    stuck = [_Stuck("worker-1"), _Stuck("worker-2"), _Stuck("worker-3")]

    class Fine:
        is_blocked = False

    for task in stuck:
        sim.watch(task)
    sim.watch(Fine())
    sim.schedule(1, lambda: None)
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert excinfo.value.blocked == stuck
    for name in ("worker-1", "worker-2", "worker-3"):
        assert name in str(excinfo.value)
