"""Unit tests for seeded RNG streams and the trace recorder."""

import pytest

from repro.sim.rng import RngStreams
from repro.sim.trace import NULL_TRACE, TraceRecorder


def test_streams_are_deterministic_per_seed_and_name():
    a = RngStreams(42).stream("ring").random(5).tolist()
    b = RngStreams(42).stream("ring").random(5).tolist()
    assert a == b


def test_streams_differ_across_names_and_seeds():
    r = RngStreams(42)
    assert r.stream("ring").random(3).tolist() != r.stream("pager-0").random(3).tolist()
    assert (
        RngStreams(42).stream("ring").random(3).tolist()
        != RngStreams(43).stream("ring").random(3).tolist()
    )


def test_stream_creation_order_does_not_matter():
    r1 = RngStreams(7)
    first_a = r1.stream("a").random(3).tolist()
    r2 = RngStreams(7)
    r2.stream("b")  # created before "a" this time
    assert r2.stream("a").random(3).tolist() == first_a


def test_stream_is_cached():
    r = RngStreams(1)
    assert r.stream("x") is r.stream("x")


def test_trace_records_and_selects():
    trace = TraceRecorder()
    now = [0]
    trace.bind_clock(lambda: now[0])
    trace.emit("cat", a=1)
    now[0] = 10
    trace.emit("cat", a=2)
    trace.emit("other", b=3)
    assert trace.count("cat") == 2
    assert trace.count("cat", a=2) == 1
    assert trace.select("cat", a=2)[0].time == 10
    assert trace.select("cat")[0]["a"] == 1
    assert len(list(trace)) == 3


def test_trace_category_filter():
    trace = TraceRecorder(categories={"keep"})
    trace.emit("keep", x=1)
    trace.emit("drop", x=2)
    assert trace.count("keep") == 1
    assert trace.count("drop") == 0


def test_null_trace_is_falsy_and_silent():
    assert not NULL_TRACE
    NULL_TRACE.emit("anything", x=1)
    assert NULL_TRACE.events == []


def test_cluster_trace_integration():
    """A traced cluster records protocol events with simulated times."""
    from repro.api.cluster import Cluster
    from repro.config import ClusterConfig

    trace = TraceRecorder()
    cluster = Cluster(ClusterConfig(nodes=2), trace=trace)
    addr = cluster.config.svm.shared_base

    def writer():
        yield from cluster.node(1).mem.write_i64(addr, 5)

    task = cluster.spawn_system(writer(), "w")
    cluster.run()
    assert task.error is None
    faults = trace.select("svm.write_fault", node=1)
    assert len(faults) == 1
    assert faults[0].time > 0
    assert trace.count("ring.send") > 0


def test_save_warns_about_unstamped_events(tmp_path):
    """Events emitted before bind_clock carry UNSTAMPED; save() keeps
    them (the stream stays complete) but warns with the exact count, and
    latency statistics skip them."""
    from repro.metrics.report import fault_latency_stats

    trace = TraceRecorder()
    trace.emit("svm.read_fault", node=0, page=1, ns=111)  # pre-boot
    now = [0]
    trace.bind_clock(lambda: now[0])
    now[0] = 50
    trace.emit("svm.read_fault", node=0, page=2, ns=40)

    path = tmp_path / "trace.jsonl"
    with pytest.warns(UserWarning, match="1 of 2 trace events are UNSTAMPED"):
        assert trace.save(str(path)) == 2
    # The unstamped event is saved, not dropped.
    assert len(TraceRecorder.load(str(path)).events) == 2

    stats = fault_latency_stats(trace)
    assert stats["svm.read_fault"].count == 1
    assert stats["svm.read_fault"].values() == [40]


def test_save_of_fully_stamped_trace_is_silent(tmp_path):
    import warnings

    trace = TraceRecorder()
    trace.bind_clock(lambda: 7)
    trace.emit("svm.read_fault", node=0, page=1, ns=3)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert trace.save(str(tmp_path / "t.jsonl")) == 1
