"""Unit tests for eventcounts, locks, sequencers and barriers through the
full Ivy stack (the record layouts live in real shared pages)."""

import numpy as np
import pytest

from repro import ClusterConfig, Ivy
from repro.sync.eventcount import EC_RECORD_BYTES, EventcountFull, waiter_capacity
from repro.sync.lock import LockFull


def run_program(main, nodes=2, **cfg):
    ivy = Ivy(ClusterConfig(nodes=nodes, **cfg))
    return ivy.run(main), ivy


def test_eventcount_read_and_advance_semantics():
    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        v0 = yield from ctx.ec_read(ec)
        yield from ctx.ec_advance(ec)
        yield from ctx.ec_advance(ec)
        v2 = yield from ctx.ec_read(ec)
        # Wait on an already-reached value returns immediately.
        got = yield from ctx.ec_wait(ec, 1)
        return v0, v2, got

    (v0, v2, got), _ = run_program(main)
    assert v0 == 0 and v2 == 2 and got >= 1


def test_eventcount_wakes_multiple_waiters_at_distinct_targets():
    woken = []

    def waiter(ctx, ec, target, done):
        value = yield from ctx.ec_wait(ec, target)
        woken.append((target, value))
        yield from ctx.ec_advance(done)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)
        yield from ctx.ec_init(done)
        for target in (1, 2, 2, 3):
            yield from ctx.spawn(waiter, ec, target, done, on=1)
        yield ctx.compute(20_000_000)
        for _ in range(3):
            yield from ctx.ec_advance(ec)
            yield ctx.compute(20_000_000)
        yield from ctx.ec_wait(done, 4)
        return True

    result, _ = run_program(main)
    assert result
    # Each waiter released at (or after) its own target.
    assert sorted(t for t, _ in woken) == [1, 2, 2, 3]
    for target, value in woken:
        assert value >= target


def test_eventcount_waiter_table_overflow_is_loud():
    cap = waiter_capacity(1024)

    def main(ctx):
        ec = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ec)

        def sleeper(cctx):
            yield from cctx.ec_wait(ec, 10**9)

        for _ in range(cap):
            yield from ctx.spawn(sleeper)
        yield ctx.compute(500_000_000)  # let them all register
        yield from ctx.ec_wait(ec, 10**9)  # one too many

    with pytest.raises(Exception) as exc_info:
        run_program(main, nodes=1)
    assert isinstance(exc_info.value.__cause__, EventcountFull) or "waiters" in str(
        exc_info.value.__cause__
    )


def test_lock_blocks_and_hands_off_in_fifo_order():
    order = []

    def contender(ctx, lock, tag, done):
        yield from ctx.lock_acquire(lock)
        order.append(tag)
        yield ctx.compute(5_000_000)
        yield from ctx.lock_release(lock)
        yield from ctx.ec_advance(done)

    def main(ctx):
        lock = yield from ctx.malloc(1024)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.lock_init(lock)
        yield from ctx.ec_init(done)
        yield from ctx.lock_acquire(lock)  # hold so contenders queue up
        for i, node in enumerate([0, 1, 0, 1]):
            yield from ctx.spawn(contender, lock, i, done, on=node)
            yield ctx.compute(10_000_000)  # deterministic arrival order
        yield ctx.compute(50_000_000)
        yield from ctx.lock_release(lock)
        yield from ctx.ec_wait(done, 4)
        return True

    result, _ = run_program(main)
    assert result
    assert order == [0, 1, 2, 3]  # strict FIFO hand-off


def test_lock_release_of_unheld_lock_raises():
    def main(ctx):
        lock = yield from ctx.malloc(1024)
        yield from ctx.lock_init(lock)
        yield from ctx.lock_release(lock)

    with pytest.raises(Exception, match="unheld"):
        run_program(main, nodes=1)


def test_sequencer_is_dense_and_ordered():
    def main(ctx):
        seq = yield from ctx.malloc(8)
        yield from ctx.seq_init(seq)
        tickets = []
        for _ in range(5):
            t = yield from ctx.seq_ticket(seq)
            tickets.append(t)
        return tickets

    tickets, _ = run_program(main, nodes=1)
    assert tickets == [0, 1, 2, 3, 4]


def test_barrier_reusable_across_many_rounds():
    trace = []

    def party(ctx, bar_addr, tag, rounds, done):
        barrier = ctx.barrier(bar_addr, 2)
        for r in range(rounds):
            trace.append((r, tag, "before"))
            yield from barrier.arrive(ctx)
            trace.append((r, tag, "after"))
        yield from ctx.ec_advance(done)

    def main(ctx):
        bar = yield from ctx.malloc(1024)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        barrier = ctx.barrier(bar, 2)
        yield from barrier.init(ctx)
        yield from ctx.ec_init(done)
        yield from ctx.spawn(party, bar, "a", 5, done, on=0)
        yield from ctx.spawn(party, bar, "b", 5, done, on=1)
        yield from ctx.ec_wait(done, 2)
        return True

    result, _ = run_program(main)
    assert result
    # No party's round-(r+1) "after" precedes the other's round-r "before".
    for r in range(5):
        befores = [i for i, e in enumerate(trace) if e == (r, "a", "before") or e == (r, "b", "before")]
        afters = [i for i, e in enumerate(trace) if e[0] == r and e[2] == "after"]
        assert max(befores) < min(afters) + 2  # arrivals strictly precede releases


def test_barrier_on_release_fires_exactly_once_per_round():
    releases = []

    def party(ctx, bar_addr, done):
        barrier = ctx.barrier(bar_addr, 3)
        for _ in range(4):
            yield from barrier.arrive(ctx, on_release=lambda: releases.append(1))
        yield from ctx.ec_advance(done)

    def main(ctx):
        bar = yield from ctx.malloc(1024)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        barrier = ctx.barrier(bar, 3)
        yield from barrier.init(ctx)
        yield from ctx.ec_init(done)
        for node in range(3):
            yield from ctx.spawn(party, bar, done, on=node)
        yield from ctx.ec_wait(done, 3)
        return True

    result, ivy = run_program(main, nodes=3)
    assert result
    assert len(releases) == 4  # one release callback per round, total


def test_lock_waiter_overflow_is_loud():
    def main(ctx):
        lock = yield from ctx.malloc(32)  # room for one waiter only
        # Geometry: (32/8 - 2) // 2 = 1 waiter slot. Place at page end.
        page_size = ctx.ivy.config.svm.page_size
        lock_addr = lock + page_size - 32
        yield from ctx.lock_init(lock_addr)

        def contender(cctx):
            yield from cctx.lock_acquire(lock_addr)

        yield from ctx.lock_acquire(lock_addr)
        yield from ctx.spawn(contender)
        yield from ctx.spawn(contender)
        yield from ctx.spawn(contender)
        yield ctx.compute(500_000_000)

    with pytest.raises(Exception) as exc_info:
        run_program(main, nodes=1)
    cause = exc_info.value.__cause__
    assert isinstance(cause, LockFull) or "waiters" in str(cause)
