"""Ablation — write-invalidate (IVY's choice) vs write-update.

Shape: update cuts message traffic on polling producer/consumer sharing
(readers never re-fault), but loses on migratory synchronisation pages
and on write-dominated pages — which is why invalidation is the right
default, as IVY chose.
"""

from repro.exps.ablation_writepolicy import run
from repro.metrics.report import ascii_table


def test_ablation_write_policies(run_once):
    data = run_once(run, quick=True, nodes=4)
    rows = []
    for workload, per_policy in data.items():
        for policy, stats in per_policy.items():
            rows.append([workload, policy, f"{stats['time_ns']/1e9:.3f}s", stats["msgs"]])
    print()
    print(ascii_table(["workload", "policy", "time", "msgs"], rows))

    polling = data["polling consumers"]
    assert polling["update"]["msgs"] < 0.75 * polling["invalidate"]["msgs"], (
        "update must cut producer/consumer traffic"
    )
    assert polling["update"]["read_faults"] < polling["invalidate"]["read_faults"]

    migratory = data["eventcount consumers"]
    assert migratory["update"]["time_ns"] > migratory["invalidate"]["time_ns"], (
        "migratory sync pages must hurt the update policy"
    )

    writeheavy = data["write dominated"]
    assert writeheavy["update"]["time_ns"] > 2 * writeheavy["invalidate"]["time_ns"]
    assert writeheavy["invalidate"].get("updates", 0) == 0
