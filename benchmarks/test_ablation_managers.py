"""Ablation — the coherence manager algorithms on one workload.

Shape: the paper's three algorithms complete the workload in the same
ballpark; the dynamic manager keeps forwarding chains short without any
manager table.  The extension variants bracket them: periodic hint
broadcasts change little on a well-behaved workload, while the pure
broadcast manager pays for its statelessness with far more ring
messages and slower faults (every fault interrupts every processor).
"""

from repro.exps.ablation_managers import run
from repro.metrics.report import ascii_table


def test_ablation_manager_algorithms(run_once):
    results = run_once(run, quick=True, nprocs=4)
    rows = [
        [r.algorithm, f"{r.time_ns/1e9:.3f}s", r.messages, r.faults, r.forwards]
        for r in results
    ]
    print()
    print(ascii_table(["algorithm", "time", "msgs", "faults", "forwards"], rows))

    by_name = {r.algorithm: r for r in results}
    paper_three = [by_name[a] for a in ("centralized", "fixed", "dynamic")]
    times = [r.time_ns for r in paper_three]
    # Same workload, same correctness; execution times within 25%.
    assert max(times) / min(times) < 1.25, rows
    # Dynamic's hint chains stay short: on this fault pattern it forwards
    # no more than the fixed distributed manager does.
    assert by_name["dynamic"].forwards <= by_name["fixed"].forwards
    # The broadcast manager never forwards but floods the ring and slows
    # every fault — the trade-off that motivated the other algorithms.
    bcast = by_name["broadcast"]
    assert bcast.forwards == 0
    assert bcast.messages > 1.4 * by_name["dynamic"].messages
    assert bcast.mean_fault_us > by_name["dynamic"].mean_fault_us
    # Every algorithm serviced a comparable number of faults.
    faults = [r.faults for r in results]
    assert max(faults) - min(faults) < 0.25 * max(faults)
