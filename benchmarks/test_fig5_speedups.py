"""Figure 5 — speedups of the six-program benchmark suite.

Shape assertions (from the paper's Figure 5 and its discussion):

- the well-behaved programs (linear solver, PDE, TSP, matmul) are
  "almost linear": clearly growing with p and well above the weak ones;
- dot-product is the deliberate weak case: little computation, lots of
  data movement — its curve is flat/poor at every p;
- the sort sits in between and well below linear.
"""

from repro.exps.fig5 import run
from repro.metrics.report import format_speedup_table


def test_fig5_speedups(run_once):
    results = run_once(run, quick=True)
    print()
    print(format_speedup_table(results))
    by_name = {r.app_name: r for r in results}

    for name in ("linear eqn (jacobi)", "TSP", "matrix multiply"):
        curve = dict(by_name[name].curve())
        assert curve[2] > 1.5, f"{name} should scale at p=2: {curve}"
        assert curve[8] > 3.5, f"{name} should keep scaling to p=8: {curve}"
        assert curve[8] > curve[2], name

    pde = dict(by_name["3-D PDE"].curve())
    assert pde[4] > 1.8 and pde[8] > 2.0, f"PDE should scale: {pde}"

    dot = dict(by_name["dot-product"].curve())
    assert dot[8] < 1.5, f"dot-product must stay communication-bound: {dot}"

    sort_curve = dict(by_name["merge-split sort"].curve())
    assert 1.0 < sort_curve[4] < 4.0, f"sort is sub-linear but positive: {sort_curve}"
    # Ranking: the strong apps beat sort, sort beats dot-product.
    assert dict(by_name["matrix multiply"].curve())[8] > sort_curve[8] > dot[8]
