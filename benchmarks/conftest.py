"""Benchmark harness conventions.

Each benchmark regenerates one table or figure of the paper (or one
ablation from DESIGN.md), asserts its qualitative *shape* (who wins, by
roughly what factor, where crossovers fall — absolute numbers are
simulator-dependent, see EXPERIMENTS.md), and prints the same rows the
experiment CLI prints.

Runs are deterministic simulations, so each benchmark executes exactly
once (``pedantic(rounds=1, iterations=1)``); the benchmark timer then
reports the harness cost of regenerating the result.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
