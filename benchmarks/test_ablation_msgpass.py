"""Ablation — shared virtual memory vs message passing for complex data.

Shape (the paper's motivating argument): shipping a pointer-linked
structure by message passing pays marshal/unmarshal per element and per
consumer, while on the SVM "passing a list data structure simply
requires passing a pointer" — and repeat traversals are free because
the pages are already cached.
"""

from repro.exps.ablation_msgpass import run
from repro.metrics.report import ascii_table


def test_ablation_svm_vs_message_passing(run_once):
    data = run_once(run, quick=True, nodes=4)
    rows = [
        [d["workload"], f"{d['svm_ns']/1e9:.3f}s",
         f"{d['msgpass_ns']/1e9:.3f}s", f"{d['ratio']:.2f}x"]
        for d in data
    ]
    print()
    print(ascii_table(["workload", "svm", "msgpass", "mp/svm"], rows))

    # SVM wins on linked structures (the paper's argument) and holds its
    # own on the same application with flat arrays.
    for d in data:
        assert d["ratio"] > 1.1, d
