"""Figure 4 — super-linear speedup of the 3-D PDE solver.

Shape: when the data set exceeds one node's physical memory the
speedup exceeds p (the combined memories eliminate disk paging), and
the single-processor run is the only one with heavy disk traffic.
"""

from repro.exps.fig4 import run
from repro.metrics.report import ascii_table


def test_fig4_superlinear_speedup(run_once):
    result = run_once(run, quick=True, procs=(1, 2, 4, 8))
    rows = [[p, f"{s:.2f}"] for p, s in result.curve()]
    print()
    print(ascii_table(["processors", "speedup"], rows, title="Figure 4"))

    curve = dict(result.curve())
    # Super-linear at every multi-processor point (the paper's headline).
    assert curve[2] > 2.0, f"expected super-linear at p=2: {curve}"
    assert curve[4] > 4.0, f"expected super-linear at p=4: {curve}"
    assert curve[8] > 8.0, f"expected super-linear at p=8: {curve}"
    # The effect is memory-capacity driven: only p=1 thrashes the disk.
    disk = {
        r.nprocs: r.counters["disk_reads"] + r.counters["disk_writes"]
        for r in result.runs
    }
    assert disk[1] > 4 * disk[2], f"1-proc run must dominate disk traffic: {disk}"
