"""Figure 6 — merge-split sort speedup vs the no-communication ideal.

Shape: the measured curve is positive but sub-linear and sits *below*
the already-sub-linear algorithmic ideal ("even with no communication
costs, the algorithm does not yield linear speedup").
"""

from repro.exps.fig6 import ideal_speedup, run
from repro.exps.presets import sort_factory
from repro.metrics.report import ascii_table


def test_fig6_sort_speedup(run_once):
    result = run_once(run, quick=True, procs=(1, 2, 4, 8))
    n = sort_factory(full=False)(1).nrecords
    rows = [
        [p, f"{s:.2f}", f"{ideal_speedup(n, p):.2f}"] for p, s in result.curve()
    ]
    print()
    print(ascii_table(["p", "measured", "ideal"], rows, title="Figure 6"))

    curve = dict(result.curve())
    for p in (2, 4, 8):
        ideal = ideal_speedup(n, p)
        assert ideal < p, "the algorithm itself is sub-linear"
        assert curve[p] < ideal + 0.05, (
            f"measured cannot beat the no-communication ideal at p={p}"
        )
    # Positive but clearly sub-linear ("does not look very good").
    assert curve[2] > 1.1
    assert curve[4] > 1.3
    assert curve[8] < 4.0
