"""Ablation — centralized first-fit vs two-level allocation.

Shape: the two-level allocator (the improvement the paper proposed but
never implemented) satisfies almost all requests locally, cutting both
network traffic and completion time by a large factor on an
allocation-heavy workload.
"""

from repro.exps.ablation_allocator import run
from repro.metrics.report import ascii_table


def test_ablation_allocators(run_once):
    data = run_once(run, quick=True, nodes=4)
    rows = [
        [d["allocator"], f"{d['time_ns']/1e9:.3f}s", d["ring_msgs"],
         d["chunk_refills"], d["local_allocations"]]
        for d in data
    ]
    print()
    print(ascii_table(["allocator", "time", "msgs", "refills", "local"], rows))

    central, twolevel = data[0], data[1]
    assert central["allocator"] == "central"
    # "Expected to have better performance" — confirmed, by a lot.
    assert twolevel["time_ns"] < central["time_ns"] / 2
    assert twolevel["ring_msgs"] < central["ring_msgs"] / 2
    # Nearly everything is served locally after a handful of refills.
    assert twolevel["local_allocations"] > 10 * twolevel["chunk_refills"]
