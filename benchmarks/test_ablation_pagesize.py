"""Ablation — page size: transfer amortisation vs contention.

Shape (the paper's discussion): larger pages mean fewer faults for
bulk, read-mostly workloads (jacobi), but fine-grained independent
writers suffer monotonically from false sharing as pages grow.  The
paper's 1 KB choice sits at/near the bulk workload's sweet spot.
"""

from repro.exps.ablation_pagesize import run
from repro.metrics.report import ascii_table


def test_ablation_page_size(run_once):
    data = run_once(run, quick=True)
    rows = [
        [d["page_size"], f"{d['jacobi_ns']/1e9:.3f}", d["jacobi_faults"],
         f"{d['false_sharing_ns']/1e9:.3f}"]
        for d in data
    ]
    print()
    print(ascii_table(["page", "jacobi s", "faults", "false-sharing s"], rows))

    by_size = {d["page_size"]: d for d in data}
    # Fault counts drop monotonically with page size (amortisation).
    faults = [d["jacobi_faults"] for d in data]
    assert faults == sorted(faults, reverse=True), faults
    # False sharing grows monotonically with page size (contention).
    sharing = [d["false_sharing_ns"] for d in data]
    assert sharing == sorted(sharing), sharing
    # The bulk workload's best size is an interior point (256 and 4096
    # are both worse than 1024 — "the right size is clearly application
    # dependent", but 1K is a sweet spot).
    assert by_size[1024]["jacobi_ns"] < by_size[256]["jacobi_ns"]
    assert by_size[1024]["jacobi_ns"] < by_size[4096]["jacobi_ns"]
