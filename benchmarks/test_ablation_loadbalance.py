"""Ablation — passive load balancing policies.

Shape: balancing sharply beats no balancing when work is born on one
node; the paper's thresholded total-process-count policy produces far
fewer rejected migration requests than the ready-count-only policy it
rejects ("will not work well if the number of ready processes ... is
used as the only criterion").
"""

from repro.exps.ablation_loadbalance import run
from repro.metrics.report import ascii_table


def test_ablation_load_balancing(run_once):
    data = run_once(run, quick=True, nodes=4)
    rows = [
        [d["policy"], f"{d['time_ns']/1e9:.3f}s", d["migrations"], d["rejections"]]
        for d in data
    ]
    print()
    print(ascii_table(["policy", "time", "migrations", "rejections"], rows))

    by_policy = {d["policy"]: d for d in data}
    off = by_policy["off"]
    ready = by_policy["ready-count"]
    thresholds = by_policy["thresholds"]
    # Balancing wins big over a node-0 pile-up.
    assert thresholds["time_ns"] < off["time_ns"] / 1.8
    assert ready["time_ns"] < off["time_ns"] / 1.8
    assert thresholds["migrations"] > 0
    # The paper's criterion: the thresholded policy minimises rejections.
    assert thresholds["rejections"] < ready["rejections"]
