"""Ablation — disk I/O overlap (the paper's proposed improvement).

Shape: with IVY's actual behaviour (a paging transfer stalls the node)
a compute-bound process is serialised behind a disk-bound neighbour;
with overlap the two pack together and the makespan drops by a large
factor — "the disk I/O overlap may also greatly improve IVY's
performance".
"""

from repro.exps.ablation_overlap import run
from repro.metrics.report import ascii_table


def test_ablation_disk_io_overlap(run_once):
    data = run_once(run, quick=True)
    rows = [
        ["overlap" if d["overlap"] else "stall", f"{d['time_ns']/1e9:.3f}s", d["disk_ops"]]
        for d in data
    ]
    print()
    print(ascii_table(["disk I/O", "time", "ops"], rows))

    stall, overlap = data[0], data[1]
    assert not stall["overlap"] and overlap["overlap"]
    # Both runs do the same paging work.
    assert abs(stall["disk_ops"] - overlap["disk_ops"]) <= 10
    # Overlap packs compute into disk waits: >= 1.4x faster here.
    assert overlap["time_ns"] < stall["time_ns"] / 1.4, rows
