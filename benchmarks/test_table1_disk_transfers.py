"""Table 1 — disk page transfers of each 3-D PDE iteration, 1 vs 2 procs.

Shape (paper: 699/2264/1702/1502/1586/1604 vs 1452/928/781/91/54/14):

- one processor keeps paying disk transfers every iteration (its sweep
  never fits in memory);
- two processors start with substantial traffic while the data
  structures spread out of the initialising node, then decay to ~zero.
"""

from repro.exps.table1 import run
from repro.metrics.report import ascii_table


def test_table1_disk_transfer_series(run_once):
    data = run_once(run, quick=True, procs=(1, 2))
    rows = [[f"{p} proc"] + series for p, series in sorted(data.items())]
    print()
    print(ascii_table(["config"] + [f"it{i+1}" for i in range(6)], rows, title="Table 1"))

    one, two = data[1], data[2]
    # 1 processor: steady thrash — late iterations stay high.
    tail_1p = one[3:]
    assert min(tail_1p) > 50, f"1-proc series must stay high: {one}"
    # 2 processors: decays — the tail is a small fraction of iteration 1
    # and far below the 1-processor tail.
    tail_2p = two[3:]
    assert max(tail_2p) < two[0] / 2, f"2-proc series must decay: {two}"
    assert max(tail_2p) < min(tail_1p) / 4, f"2-proc tail must be far below 1-proc: {two} vs {one}"
    # First iterations on 2 procs show real traffic (the spread-out phase).
    assert two[0] > 20, f"2-proc iteration 1 moves the data set: {two}"
