#!/usr/bin/env python
"""AST lint for the two classic footguns of the coherence protocol.

The protocol's locking discipline has two rules that reviews keep having
to re-check by hand; this script enforces them mechanically (CI runs it
over ``src/repro/svm``):

rule 1 — lock-free servers
    An invalidation, update or hint server (``_serve_inv``,
    ``_serve_update``, ``_serve_hint``) must never acquire a
    ``PageTableEntry`` lock.  Taking it deadlocks in the classic cycle:
    the new owner holds its entry lock awaiting invalidation acks while
    a copy holder's own write fault is parked behind that same lock (see
    the deviation notes in ``repro/svm/protocol.py``).

rule 2 — balanced entry locks
    Every ``<entry>.lock.acquire()`` yielded inside a function must be
    followed by a ``try``/``finally`` whose ``finally`` releases the
    *same* lock, so no exception path can leak a held entry lock (a
    leaked lock wedges every future fault on that page, cluster-wide).
    The uncontended fast path ``if not e.lock.try_acquire(): yield from
    e.lock.acquire()`` is balanced by the ``try``/``finally`` that
    follows the ``if`` in the enclosing suite.  Functions that
    intentionally hand the lock to their caller (``acquire_page_write``)
    annotate the acquire statement with ``# lint: keeps-lock``.

rule 3 — no ``return`` inside a generator's ``finally``
    Protocol handlers are effect generators; a ``return`` in a
    ``finally`` silently replaces whatever was in flight — a propagating
    ``InvariantViolation``, a ``TaskFailure``, even the generator's own
    ``GeneratorExit`` — with a normal return, so the checker's finding
    (or the simulator's cancellation) vanishes.  The ``finally`` of an
    effect generator may only clean up.

rule 4 — balanced page-write sections
    ``acquire_page_write(...)`` pins the page and holds its entry lock
    *cluster-wide*; every call must be followed by a ``try``/``finally``
    whose ``finally`` calls ``release_page_write`` (the shape of
    ``SharedAddressSpace.atomic_update``).  The same
    ``# lint: keeps-lock`` annotation marks intentional hand-offs.

rule 5 — balanced spans
    Inside an effect generator, every ``span_begin(...)`` must be
    followed by a ``try``/``finally`` whose ``finally`` calls
    ``span_end`` (the shape of every traced fault handler in
    ``repro/svm/protocol.py``).  A span left open by an exception path
    survives as an "open" record: latency histograms lose the sample
    and the Perfetto export draws the span to the end of the run —
    silently wrong observability instead of a loud failure.  The
    ``# lint: keeps-lock`` annotation marks intentional hand-offs
    (e.g. a helper that opens a span its caller closes).

rule 6 — no discarded cancel handles
    ``Simulator.schedule`` / ``schedule_at`` return a ``CancelHandle``;
    calling them as a bare expression statement throws that handle away
    while still paying its allocation on every event — and these
    modules schedule an event per message, fault and task step.  A
    never-cancelled event must use ``schedule_nocancel`` /
    ``schedule_at_nocancel``; a genuinely cancellable one must assign
    its handle (``pending.timer = self.sim.schedule(...)``).  Annotate
    with ``# lint: drops-handle`` for the rare intentional discard.

Usage::

    python tools/lint_protocol.py [paths...]
    # default: src/repro/svm src/repro/net src/repro/machine src/repro/obs

Exit status 1 if any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = [
    "src/repro/svm",
    "src/repro/net",
    "src/repro/machine",
    "src/repro/obs",
]

#: Servers that must stay lock-free (rule 1).
LOCK_FREE_SERVERS = ("_serve_inv", "_serve_update", "_serve_hint")

SUPPRESS_COMMENT = "# lint: keeps-lock"

#: Rule 6 override: a knowingly discarded CancelHandle.
SUPPRESS_HANDLE_COMMENT = "# lint: drops-handle"


def _is_lock_call(node: ast.AST, method: str) -> ast.expr | None:
    """If ``node`` is ``<something>.lock.<method>(...)``, return the
    ``<something>.lock`` expression, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == method):
        return None
    base = func.value
    if isinstance(base, ast.Attribute) and base.attr == "lock":
        return base
    return None


#: Nested scopes a same-function walk must not descend into.
_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _scope_walk(body: list[ast.stmt]):
    """Walk every node under ``body`` without entering nested function
    scopes (their yields/returns belong to *their* check, not ours)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _is_generator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in _scope_walk(fn.body)
    )


def _method_calls(node: ast.AST, method: str) -> list[ast.Call]:
    """``<something>.<method>(...)`` calls anywhere inside ``node``."""
    return [
        inner
        for inner in ast.walk(node)
        if isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Attribute)
        and inner.func.attr == method
    ]


def _lock_acquires(stmt: ast.AST) -> list[ast.expr]:
    """``.lock.acquire()`` expressions anywhere inside one node."""
    found = []
    for node in ast.walk(stmt):
        lock = _is_lock_call(node, "acquire")
        if lock is not None:
            found.append(lock)
        lock = _is_lock_call(node, "try_acquire")
        if lock is not None:
            found.append(lock)
    return found


def _releases_in_finally(stmt: ast.stmt) -> list[str]:
    """Unparsed lock expressions released in any ``finally`` within."""
    released = []
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Try,)) and node.finalbody:
            for final_stmt in node.finalbody:
                for inner in ast.walk(final_stmt):
                    lock = _is_lock_call(inner, "release")
                    if lock is not None:
                        released.append(ast.unparse(lock))
    return released


class ProtocolLinter:
    def __init__(self, path: Path, tree: ast.Module, source_lines: list[str]) -> None:
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        self.findings: list[str] = []

    def _report(self, lineno: int, message: str) -> None:
        self.findings.append(f"{self.path}:{lineno}: {message}")

    def _suppressed(self, lineno: int) -> bool:
        line = self.source_lines[lineno - 1] if lineno - 1 < len(self.source_lines) else ""
        return SUPPRESS_COMMENT in line

    # -- rule 1 --------------------------------------------------------

    def check_lock_free_servers(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in LOCK_FREE_SERVERS:
                continue
            for inner in ast.walk(node):
                lock = _is_lock_call(inner, "acquire")
                if lock is not None:
                    self._report(
                        inner.lineno,
                        f"{node.name} acquires {ast.unparse(lock)}: invalidation-"
                        "path servers must be lock-free (deadlock cycle; see "
                        "repro/svm/protocol.py)",
                    )

    # -- rule 2 --------------------------------------------------------

    def check_balanced_locks(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function_locks(node)

    def _check_function_locks(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if fn.name in LOCK_FREE_SERVERS:
            return  # rule 1 territory; no acquires allowed at all
        self._check_body(fn.body)

    def _check_body(
        self, body: list[ast.stmt], tail: tuple[ast.stmt, ...] = ()
    ) -> None:
        for index, stmt in enumerate(body):
            # A lock acquired inside an ``if`` branch (the try_acquire
            # fast-path idiom) may be balanced by a try/finally that
            # follows the ``if`` in the enclosing suite — those trailing
            # statements run next, so carry them as the continuation.
            inner_tail = (
                (*body[index + 1 :], *tail) if isinstance(stmt, ast.If) else ()
            )
            if isinstance(stmt, ast.If) and self._suppressed(stmt.lineno):
                continue  # annotated hand-off covers the whole fast-path idiom
            # Recurse into nested suites first (loops, with, try, if).
            for field_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(field_body, list) and field_body and isinstance(
                    field_body[0], ast.stmt
                ):
                    self._check_body(field_body, inner_tail)
            for handler in getattr(stmt, "handlers", []) or []:
                self._check_body(handler.body, inner_tail)

            if isinstance(stmt, ast.If):
                # Branch bodies were covered by the recursion above (with
                # the continuation); only the condition's own acquires
                # (``try_acquire`` in the fast-path idiom) remain ours.
                acquires = _lock_acquires(stmt.test)
            else:
                acquires = _lock_acquires(stmt)
            if not acquires:
                continue
            if isinstance(stmt, ast.Try):
                continue  # the acquire is inside the try: recursion covered it
            if self._suppressed(stmt.lineno):
                continue
            for lock in acquires:
                wanted = ast.unparse(lock)
                if not self._followed_by_release(body, index, wanted, tail):
                    self._report(
                        stmt.lineno,
                        f"{wanted}.acquire() is not followed by a try/finally "
                        f"releasing {wanted} — an exception would leak the "
                        "entry lock and wedge every fault on the page "
                        f"(annotate with '{SUPPRESS_COMMENT}' if the lock is "
                        "intentionally handed to the caller)",
                    )

    @staticmethod
    def _followed_by_release(
        body: list[ast.stmt],
        index: int,
        wanted: str,
        tail: tuple[ast.stmt, ...] = (),
    ) -> bool:
        for later in (*body[index + 1 :], *tail):
            if isinstance(later, ast.Try) and later.finalbody:
                released = _releases_in_finally(later)
                if wanted in released:
                    return True
                # ``entry.lock`` vs a local alias: accept a release whose
                # attribute tail matches (e.g. ``self.table.entry(page)
                # .lock`` released as ``entry.lock``).
                tail = wanted.split(".")[-2:]
                if any(r.split(".")[-2:] == tail for r in released):
                    return True
        return False

    # -- rule 3 --------------------------------------------------------

    def check_no_return_in_finally(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(node):
                continue
            seen: set[int] = set()
            for inner in _scope_walk(node.body):
                if not (isinstance(inner, ast.Try) and inner.finalbody):
                    continue
                for ret in _scope_walk(inner.finalbody):
                    if isinstance(ret, ast.Return) and ret.lineno not in seen:
                        seen.add(ret.lineno)
                        self._report(
                            ret.lineno,
                            f"return inside the finally of effect generator "
                            f"{node.name}: it replaces whatever was in flight "
                            "(a propagating violation, a cancellation) with a "
                            "normal return — the finally may only clean up",
                        )

    # -- rule 4 --------------------------------------------------------

    def check_page_write_sections(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_page_write_body(node.body)

    def _check_page_write_body(
        self, body: list[ast.stmt], tail: tuple[ast.stmt, ...] = ()
    ) -> None:
        for index, stmt in enumerate(body):
            # Recurse into nested suites (loops, with, try, if) — but not
            # nested defs, which ast.walk hands to us separately.  As in
            # rule 2, an ``if`` branch is balanced by the try/finally that
            # follows the ``if`` in the enclosing suite.
            inner_tail = (
                (*body[index + 1 :], *tail) if isinstance(stmt, ast.If) else ()
            )
            if isinstance(stmt, ast.If) and self._suppressed(stmt.lineno):
                continue  # annotated hand-off covers the whole branch
            if not isinstance(stmt, _SCOPE_BARRIERS):
                for field_body in (
                    getattr(stmt, "body", None),
                    getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None),
                ):
                    if isinstance(field_body, list) and field_body and isinstance(
                        field_body[0], ast.stmt
                    ):
                        self._check_page_write_body(field_body, inner_tail)
                for handler in getattr(stmt, "handlers", []) or []:
                    self._check_page_write_body(handler.body, inner_tail)

            if not _method_calls(stmt, "acquire_page_write"):
                continue
            if isinstance(stmt, (ast.Try, ast.If)):
                continue  # the acquire is inside the suite: recursion covered it
            if self._suppressed(stmt.lineno):
                continue
            if not self._followed_by_page_release(body, index, tail):
                self._report(
                    stmt.lineno,
                    "acquire_page_write(...) is not followed by a try/finally "
                    "calling release_page_write — an exception would leave "
                    "the page pinned with its entry lock held cluster-wide "
                    f"(annotate with '{SUPPRESS_COMMENT}' if the section is "
                    "intentionally handed to the caller)",
                )

    @staticmethod
    def _followed_by_page_release(
        body: list[ast.stmt], index: int, tail: tuple[ast.stmt, ...] = ()
    ) -> bool:
        for later in (*body[index + 1 :], *tail):
            if not (isinstance(later, ast.Try) and later.finalbody):
                continue
            for final_stmt in later.finalbody:
                if _method_calls(final_stmt, "release_page_write"):
                    return True
        return False

    # -- rule 5 --------------------------------------------------------

    def check_balanced_spans(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(node):
                continue  # plain code can't be abandoned mid-span by a yield
            self._check_span_body(node.body)

    def _check_span_body(
        self, body: list[ast.stmt], tail: tuple[ast.stmt, ...] = ()
    ) -> None:
        for index, stmt in enumerate(body):
            # As in rule 2: a span opened in an ``if`` branch (the
            # obs-gated fast path) may be closed by the try/finally that
            # follows the ``if`` in the enclosing suite.
            inner_tail = (
                (*body[index + 1 :], *tail) if isinstance(stmt, ast.If) else ()
            )
            if isinstance(stmt, ast.If) and self._suppressed(stmt.lineno):
                continue  # annotated hand-off covers the whole branch
            is_compound = False
            if not isinstance(stmt, _SCOPE_BARRIERS):
                for field_body in (
                    getattr(stmt, "body", None),
                    getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None),
                ):
                    if isinstance(field_body, list) and field_body and isinstance(
                        field_body[0], ast.stmt
                    ):
                        is_compound = True
                        self._check_span_body(field_body, inner_tail)
                for handler in getattr(stmt, "handlers", []) or []:
                    is_compound = True
                    self._check_span_body(handler.body, inner_tail)

            if is_compound:
                continue  # a span_begin nested in a suite: recursion covered it
            if not _method_calls(stmt, "span_begin"):
                continue
            if self._suppressed(stmt.lineno):
                continue
            if not self._followed_by_span_end(body, index, tail):
                self._report(
                    stmt.lineno,
                    "span_begin(...) in an effect generator is not followed "
                    "by a try/finally calling span_end — an exception path "
                    "would leave the span open (lost latency sample, span "
                    "drawn to end-of-run in the Perfetto export) "
                    f"(annotate with '{SUPPRESS_COMMENT}' if the span is "
                    "intentionally handed to the caller)",
                )

    @staticmethod
    def _followed_by_span_end(
        body: list[ast.stmt], index: int, tail: tuple[ast.stmt, ...] = ()
    ) -> bool:
        for later in (*body[index + 1 :], *tail):
            if not (isinstance(later, ast.Try) and later.finalbody):
                continue
            for final_stmt in later.finalbody:
                if _method_calls(final_stmt, "span_end"):
                    return True
        return False

    # -- rule 6 --------------------------------------------------------

    def check_no_discarded_schedule_handles(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("schedule", "schedule_at")
            ):
                continue
            line = (
                self.source_lines[node.lineno - 1]
                if node.lineno - 1 < len(self.source_lines)
                else ""
            )
            if SUPPRESS_HANDLE_COMMENT in line:
                continue
            variant = f"{func.attr}_nocancel"
            self._report(
                node.lineno,
                f"{ast.unparse(func)}(...) discards its CancelHandle — "
                "these modules schedule an event per message/fault, so a "
                f"never-cancelled event must use {variant} (assign the "
                "handle if the event is genuinely cancellable; annotate "
                f"with '{SUPPRESS_HANDLE_COMMENT}' to override)",
            )


def lint_file(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    linter = ProtocolLinter(path, tree, source.splitlines())
    linter.check_lock_free_servers()
    linter.check_balanced_locks()
    linter.check_no_return_in_finally()
    linter.check_page_write_sections()
    linter.check_balanced_spans()
    linter.check_no_discarded_schedule_handles()
    return linter.findings


def lint_paths(paths: list[str]) -> list[str]:
    findings: list[str] = []
    for raw in paths:
        path = Path(raw)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(lint_file(file))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    paths = args or DEFAULT_PATHS
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} protocol-lint finding(s)")
        return 1
    print(f"protocol lint clean ({', '.join(paths)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
