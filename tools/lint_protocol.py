#!/usr/bin/env python3
"""Protocol-discipline lint — thin CLI shim over the static verifier.

Historically this file implemented six statement-shape rules itself.
They are now ported onto the CFG-based engine in
:mod:`repro.analysis.static` (see ``locks.py`` there), which runs them
*path-sensitively*: the ``try_acquire`` fast path, the ``locked``-flag
servers and intentional lock hand-offs (``acquire_page_write`` returning
the locked entry) are understood from control flow instead of needing
``# lint: keeps-lock`` annotations.  The rules, unchanged in intent:

1. ``_serve_inv``/``_serve_update``/``_serve_hint`` never acquire an
   entry lock (lock-free invalidation path);
2. an acquired entry lock is released on every path out of the function
   (was: "wrapped in try/finally");
3. no ``return`` inside the ``finally`` of an effect generator;
4. ``acquire_page_write`` sections release on every path;
5. a span opened in an effect generator is closed on every path;
6. ``schedule``/``schedule_at`` results are not silently discarded.

The full verifier (wait-for deadlock-freedom, message exhaustiveness,
determinism lint) is ``python -m repro.analysis.static``; this shim
keeps the old entry point and output format for existing tooling.

Usage::

    python tools/lint_protocol.py [paths...]
    # default: src/repro/svm src/repro/net src/repro/machine src/repro/obs

Exit status 1 if any finding is reported.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.analysis.static.engine import discipline_lint
    from repro.analysis.static.locks import (
        LOCK_FREE_SERVERS,
        SUPPRESS_COMMENT,
        SUPPRESS_HANDLE_COMMENT,
    )
except ImportError:  # direct execution without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.static.engine import discipline_lint
    from repro.analysis.static.locks import (
        LOCK_FREE_SERVERS,
        SUPPRESS_COMMENT,
        SUPPRESS_HANDLE_COMMENT,
    )

__all__ = [
    "DEFAULT_PATHS",
    "LOCK_FREE_SERVERS",
    "SUPPRESS_COMMENT",
    "SUPPRESS_HANDLE_COMMENT",
    "lint_file",
    "lint_paths",
    "main",
]

DEFAULT_PATHS = [
    "src/repro/svm",
    "src/repro/net",
    "src/repro/machine",
    "src/repro/obs",
]


def lint_file(path: str | Path) -> list[str]:
    """Lint one file; returns ``path:line: message`` strings."""
    return discipline_lint([str(path)])


def lint_paths(paths: list[str]) -> list[str]:
    """Lint files and directories (directories recursively)."""
    return discipline_lint([str(p) for p in paths])


def main(argv: list[str] | None = None) -> int:
    paths = list(argv) if argv else DEFAULT_PATHS
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} protocol-lint finding(s)")
        return 1
    print(f"protocol lint clean ({', '.join(paths)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
