"""Process management: lightweight processes, LIFO dispatch, migration,
and passive load balancing — IVY's process-management module.

Processes are "lightweight" exactly as in the paper: they share the
node's address space, a context switch costs a few procedure calls, and
each is described by a PCB whose PID is (processor, PCB address).  The
per-node dispatcher runs one process at a time from a LIFO ready queue
with no priorities; when a process blocks (page fault in flight,
eventcount wait, disk transfer) the dispatcher runs the next ready
process, which is how IVY overlaps communication with computation.

Migration moves a ready process by sending its PCB, copying the current
stack page, and transferring ownership (only) of the upper stack pages;
the stale PCB keeps a forwarding pointer so remote resume operations
still find the process.
"""

from repro.proc.pcb import PCB, Pid, ProcState
from repro.proc.scheduler import NodeScheduler
from repro.proc.migration import MigrationService
from repro.proc.loadbalance import LoadBalancer

__all__ = ["PCB", "Pid", "ProcState", "NodeScheduler", "MigrationService", "LoadBalancer"]
