"""Process migration and remote resume.

A migration performs exactly the paper's four steps:

1. send the PCB of the process to the destination processor,
2. copy the *current* page of the process's stack and transfer its
   ownership (so the dispatcher on the destination does not page-fault),
3. transfer the ownership (only — "its content is meaningless") of the
   pages in the upper portion of the stack, and
4. put the PCB into the ready queue on the destination processor.

The stale PCB at the source becomes a forwarding pointer; the remote
resume operation (used by eventcounts to wake processes that have moved)
follows forwarding pointers with the remote-operation layer's Forward
mechanism, so a resume hops stale nodes without intermediate replies.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.api.cluster import NodeContext
from repro.metrics.collect import Counters
from repro.net.packet import request_size
from repro.net.remoteop import Forward, Reply
from repro.proc.pcb import PCB, PCB_WIRE_BYTES, Pid
from repro.proc.scheduler import NodeScheduler
from repro.sim.process import Effect

__all__ = ["MigrationService"]

OP_MIGRATE = "proc.migrate"
OP_RESUME = "proc.resume"
OP_WORKREQ = "proc.workreq"


class MigrationService:
    """Per-node migration/resume endpoints (registered remote operations)."""

    def __init__(self, node: NodeContext, sched: NodeScheduler) -> None:
        self.node = node
        self.sched = sched
        self.counters: Counters = node.counters
        node.remote.register(OP_MIGRATE, self._serve_migrate)
        node.remote.register(OP_RESUME, self._serve_resume)
        # OP_WORKREQ is registered by the load balancer, which owns policy.

    # ------------------------------------------------------------------
    # outbound

    def migrate_out(self, pcb: PCB, dst: int) -> Generator[Effect, Any, bool]:
        """Move a ready, migratable process to ``dst``.

        Must be called with ``pcb`` already removed from the ready queue
        (state MIGRATING; see :meth:`NodeScheduler.steal_ready`).
        """
        if dst == self.node.node_id:
            raise ValueError("migration to the same processor")
        src = self.node.node_id
        self.counters.inc("migrations_started")
        ok = yield from self.node.remote.request(
            dst, OP_MIGRATE, pcb, nbytes=request_size(PCB_WIRE_BYTES)
        )
        if not ok:  # pragma: no cover - destination never refuses today
            self.sched.make_ready(pcb)
            return False
        self.sched.disown(pcb, dst)
        if self.node.cluster.trace:
            self.node.cluster.trace.emit(
                "proc.migrate", pid=str(pcb.pid), src=src, dst=dst
            )
        return True

    def resume_remote(self, pid: Pid, value: Any = None) -> Generator[Effect, Any, bool]:
        """Wake process ``pid`` wherever it lives (follows forwarding)."""
        target: int = pid.node
        pcb, fwd = self.sched.lookup(pid)
        if pcb is not None:
            self.sched.wake(pcb.task, value)
            return True
        if fwd is not None:
            target = fwd
        ok = yield from self.node.remote.request(
            target, OP_RESUME, (pid.node, pid.serial, value), nbytes=request_size(24)
        )
        return bool(ok)

    # ------------------------------------------------------------------
    # servers

    def _serve_migrate(self, origin: int, pcb: PCB) -> Generator[Effect, Any, Any]:
        """Adopt an inbound process: stack transfer, then enqueue."""
        protocol = self.node.protocol
        if pcb.stack_pages:
            # Current stack page travels with its contents ("to avoid a
            # page fault in the process dispatcher")...
            yield from protocol.ensure_write(pcb.stack_pages[0])
            # ...the upper portion moves by ownership transfer only.
            for page in pcb.stack_pages[1:]:
                yield from protocol.take_ownership(page)
        self.sched.adopt(pcb)
        self.counters.inc("migrations_accepted")
        return Reply(True, nbytes=request_size(0))

    def _serve_resume(
        self, origin: int, payload: tuple[int, int, Any]
    ) -> Generator[Effect, Any, Any]:
        birth, serial, value = payload
        pid = Pid(birth, serial)
        pcb, fwd = self.sched.lookup(pid)
        if pcb is not None:
            self.sched.wake(pcb.task, value)
            return True
        if fwd is not None:
            return Forward(fwd)
        # Unknown pid: the process was born elsewhere and never lived
        # here — point the caller home (it may have raced a migration).
        if birth != self.node.node_id:
            return Forward(birth)
        return False
        yield  # pragma: no cover - makes this a generator
