"""Per-node process dispatcher: LIFO ready queue, no priorities.

"The process dispatcher always picks up the process in the front of the
ready queue.  If there is no ready process available, the dispatcher
runs a system process called the null process."

The dispatcher is a :class:`repro.sim.process.Driver`: application
lightweight processes yield the same effects as system tasks, but here
``Compute`` keeps the node's CPU busy (one running process per node, no
preemption), while ``Sleep``/``Suspend`` hand the CPU to the next ready
process — that hand-off during page-fault waits is how IVY overlaps
communication with computation.

The null process is represented by its two observable duties rather than
a spinning task: retransmission checking lives in the transport's
timers, and the passive load-balancing timeout is
`repro.proc.loadbalance` (which consults :meth:`NodeScheduler.idle`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.config import ClusterConfig
from repro.metrics.collect import Counters
from repro.obs import NULL_OBS, Observability
from repro.proc.pcb import PCB, Pid, ProcState
from repro.sim.kernel import Simulator
from repro.sim.process import (
    Compute,
    Driver,
    Effect,
    Sleep,
    Suspend,
    Task,
    TaskState,
    YieldCpu,
)

__all__ = ["NodeScheduler"]


class NodeScheduler(Driver):
    """Schedules lightweight processes on one simulated processor."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config: ClusterConfig,
        counters: Counters,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.counters = counters
        self.obs = obs
        self.ready: deque[PCB] = deque()
        self.current: PCB | None = None
        #: Live PCBs resident here, by pid (stubs live in `forwards`).
        self.registry: dict[Pid, PCB] = {}
        #: Forwarding pointers of migrated-away processes.
        self.forwards: dict[Pid, int] = {}
        #: Load hints gleaned from message piggybacks: node -> process count.
        self.load_hints: dict[int, int] = {}
        self._dispatch_pending = False

    # ------------------------------------------------------------------
    # creation / introspection

    def spawn(
        self,
        gen: Generator,
        name: str = "",
        migratable: bool = True,
        stack_addr: int = 0,
        stack_pages: tuple[int, ...] = (),
    ) -> PCB:
        """Create a lightweight process and make it ready (LIFO front)."""
        task = Task(gen, self, name)
        pcb = PCB(
            self.node_id, task, name, migratable,
            stack_addr=stack_addr, stack_pages=stack_pages,
        )
        task.pcb = pcb  # type: ignore[attr-defined]
        self.sim.watch(task)
        self.registry[pcb.pid] = pcb
        self.counters.inc("processes_created")
        self.make_ready(pcb)
        return pcb

    def process_count(self) -> int:
        """Ready + suspended + running processes on this node (the load
        criterion the paper found to work, vs. ready count alone)."""
        return sum(1 for pcb in self.registry.values() if not pcb.done)

    def ready_count(self) -> int:
        return len(self.ready)

    @property
    def idle(self) -> bool:
        return self.current is None and not self.ready

    def load_byte(self) -> int:
        """The load hint piggybacked on every outgoing message."""
        return min(255, self.process_count())

    def note_hint(self, src: int, load: int) -> None:
        self.load_hints[src] = load

    # ------------------------------------------------------------------
    # driver protocol

    def handle(self, task: Task, effect: Effect) -> None:
        pcb: PCB = task.pcb  # type: ignore[attr-defined]
        if isinstance(effect, Compute):
            # The running process keeps the CPU; no dispatch.
            if self.obs:
                # Application CPU time: the profiler's "compute" source.
                self.obs.interval(
                    self.node_id, "compute", self.sim.now, self.sim.now + effect.ns
                )
            self.sim.schedule_nocancel(effect.ns, self._resume, task)
        elif isinstance(effect, Sleep):
            task.state = TaskState.BLOCKED
            pcb.state = ProcState.BLOCKED
            self.current = None
            self.sim.schedule_nocancel(effect.ns, self.make_ready, pcb)
            self._schedule_dispatch()
        elif isinstance(effect, Suspend):
            task.state = TaskState.BLOCKED
            pcb.state = ProcState.BLOCKED
            self.current = None
            if effect.register is not None:
                effect.register(task)
            self._schedule_dispatch()
        elif isinstance(effect, YieldCpu):
            task.state = TaskState.READY
            pcb.state = ProcState.READY
            self.current = None
            self.ready.append(pcb)  # back of the queue: give others a turn
            self._schedule_dispatch()
        else:  # pragma: no cover - Effect subclasses are closed
            raise TypeError(f"unknown effect {effect!r}")

    def wake(self, task: Task, value: Any = None) -> None:
        pcb: PCB = task.pcb  # type: ignore[attr-defined]
        if pcb.done:
            return
        pcb.wake_value = value
        self.make_ready(pcb)

    def finished(self, task: Task) -> None:
        pcb: PCB = task.pcb  # type: ignore[attr-defined]
        pcb.state = ProcState.DONE
        self.counters.inc("processes_finished")
        if self.current is pcb:
            self.current = None
        self._schedule_dispatch()

    def escalate(self, failure: BaseException) -> None:
        self.sim.report_failure(failure)

    # ------------------------------------------------------------------
    # queue management

    def make_ready(self, pcb: PCB) -> None:
        """Put a process at the front of the ready queue (LIFO policy).

        Idempotent against spurious wake-ups: a process that is already
        READY or RUNNING is left alone.
        """
        if pcb.done or pcb.state in (ProcState.READY, ProcState.RUNNING):
            return
        pcb.state = ProcState.READY
        pcb.task.state = TaskState.READY
        self.ready.appendleft(pcb)
        self._schedule_dispatch()

    def steal_ready(self, want_migratable: bool = True) -> PCB | None:
        """Remove and return a migratable process from the *back* of the
        ready queue (the coldest one), for migration."""
        for pcb in reversed(self.ready):
            if pcb.migratable or not want_migratable:
                self.ready.remove(pcb)
                pcb.state = ProcState.MIGRATING
                return pcb
        return None

    def adopt(self, pcb: PCB) -> None:
        """Install a migrated-in PCB and make it ready here."""
        pcb.node = self.node_id
        pcb.task.driver = self
        pcb.forwarded_to = None
        self.registry[pcb.pid] = pcb
        self.counters.inc("processes_adopted")
        self.make_ready(pcb)

    def disown(self, pcb: PCB, dst: int) -> None:
        """Leave a forwarding stub for a migrated-away process."""
        self.registry.pop(pcb.pid, None)
        self.forwards[pcb.pid] = dst
        self.counters.inc("processes_migrated_out")

    def lookup(self, pid: Pid) -> tuple[PCB | None, int | None]:
        """Resolve a pid locally: (live PCB, None) or (None, forward node)."""
        pcb = self.registry.get(pid)
        if pcb is not None:
            return pcb, None
        return None, self.forwards.get(pid)

    # ------------------------------------------------------------------
    # dispatch machinery

    def _schedule_dispatch(self) -> None:
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.sim.schedule_nocancel(0, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if self.current is not None or not self.ready:
            return
        pcb = self.ready.popleft()
        self.current = pcb
        pcb.state = ProcState.RUNNING
        self.counters.inc("context_switches")
        if self.obs:
            self.obs.interval(
                self.node_id, "compute",
                self.sim.now, self.sim.now + self.config.cpu.context_switch,
            )
        value, pcb.wake_value = pcb.wake_value, None
        self.sim.schedule_nocancel(
            self.config.cpu.context_switch, self._first_step, pcb, value
        )

    def _first_step(self, pcb: PCB, value: Any) -> None:
        if not pcb.task.done:
            pcb.task.step(value)

    def _resume(self, task: Task) -> None:
        if not task.done:
            task.step(None)
