"""Process control blocks and process identifiers.

"Each process has a process control block (PCB) that contains necessary
information like process state, stack, context ... The PCBs are stored
in the private memory of the address space.  Therefore, the PID of a
process is represented as a pair — processor number and the address of
its PCB."

Here the PID is ``(birth_node, serial)``: the serial plays the role of
the PCB address within the birth processor's private memory.  After a
migration the birth node's registry keeps a stub PCB holding a
forwarding pointer, exactly as the paper describes ("the PCBs of
migrated processes are used for storing forwarding pointers"; stub
collection was not implemented in IVY and is not implemented here).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Task

__all__ = ["Pid", "ProcState", "PCB", "PCB_WIRE_BYTES"]

#: Simulated wire size of a marshalled PCB (state, context, registers).
PCB_WIRE_BYTES = 256


@dataclass(frozen=True, order=True)
class Pid:
    """Process identifier: (birth processor, PCB serial)."""

    node: int
    serial: int

    def __str__(self) -> str:
        return f"{self.node}.{self.serial}"


class ProcState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    MIGRATING = "migrating"
    DONE = "done"


class PCB:
    """One lightweight process."""

    _serials = itertools.count(1)

    def __init__(
        self,
        birth_node: int,
        task: "Task",
        name: str = "",
        migratable: bool = True,
        stack_addr: int = 0,
        stack_pages: tuple[int, ...] = (),
    ) -> None:
        self.pid = Pid(birth_node, next(PCB._serials))
        self.task = task
        self.name = name or f"proc-{self.pid}"
        # Born BLOCKED; the scheduler's make_ready performs the READY
        # transition (which also guards against double-queueing).
        self.state = ProcState.BLOCKED
        #: Node the process currently resides on.
        self.node = birth_node
        #: Clients may toggle this at run time via a primitive.
        self.migratable = migratable
        #: Forwarding pointer left behind after migration (paper: stored
        #: in the stale PCB).  None while the PCB is live here.
        self.forwarded_to: int | None = None
        #: Shared-memory stack reservation (address + page numbers).
        self.stack_addr = stack_addr
        self.stack_pages = stack_pages
        #: Value to deliver when the task next resumes.
        self.wake_value: Any = None

    @property
    def done(self) -> bool:
        return self.state is ProcState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PCB {self.name} pid={self.pid} on={self.node} {self.state.value}>"
