"""Passive load balancing — the null process's timeout duty.

"The main idea of the algorithm is to let each processor ask for work
when it is idle using some hints."  Processors keep each other's load
hints fresh by piggybacking a process-count byte on every message; an
idle processor picks the busiest-looking peer and sends a work request;
the peer grants it by migrating a ready process only while its own
process count exceeds the upper threshold.

The paper reports that using the *ready* process count as the only
criterion "will not work well"; the better policy uses the total process
count (ready + suspended) gated by lower/upper thresholds.  Both
policies are implemented — ``SchedConfig.ready_count_only`` selects the
bad one, so the ablation benchmark can reproduce the claim.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.api.cluster import NodeContext
from repro.net.packet import request_size
from repro.proc.migration import OP_WORKREQ, MigrationService
from repro.proc.scheduler import NodeScheduler
from repro.sim.kernel import CancelHandle

__all__ = ["LoadBalancer"]

OP_ANNOUNCE = "lb.announce"
OP_PING = "lb.ping"


class LoadBalancer:
    """Per-node passive load balancer driven by the null-process timeout."""

    def __init__(
        self, node: NodeContext, sched: NodeScheduler, migration: MigrationService
    ) -> None:
        self.node = node
        self.sched = sched
        self.migration = migration
        self.config = node.cluster.config.sched
        self.counters = node.counters
        self._timer: CancelHandle | None = None
        self._asking = False
        self._stopped = True
        node.remote.register(OP_WORKREQ, self._serve_workreq)
        node.remote.register(OP_ANNOUNCE, self._serve_announce)
        node.remote.register(OP_PING, self._serve_ping)

    # ------------------------------------------------------------------
    # lifecycle (timers must stop when the program ends, or the event
    # queue never drains)

    def start(self) -> None:
        self._stopped = False
        self._arm()

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm(self) -> None:
        if self._stopped:
            return
        self._timer = self.node.cluster.sim.schedule(
            self.config.null_timeout, self._tick
        )

    # ------------------------------------------------------------------
    # the timeout duty

    def _tick(self) -> None:
        if self._stopped:
            return
        if self._wants_work() and not self._asking:
            target = self._pick_target()
            self._asking = True
            if target is not None:
                self.node.cluster.driver.spawn(
                    self._ask(target), f"lb-ask-{self.node.node_id}"
                )
            else:
                # No usable hint yet: broadcast our (lack of) load with the
                # no-reply scheme — the paper's stated use of that scheme
                # ("broadcasting approximate information for process
                # scheduling").  Busy peers ping back; the ping's
                # piggybacked load byte seeds our hint table.
                self.node.cluster.driver.spawn(
                    self._announce(), f"lb-announce-{self.node.node_id}"
                )
        self._arm()

    def _wants_work(self) -> bool:
        if self.config.ready_count_only:
            return self.sched.ready_count() == 0
        return self.sched.process_count() < self.config.lower_threshold or (
            self.sched.idle and self.sched.process_count() == 0
        )

    def _busy_enough(self) -> bool:
        if self.config.ready_count_only:
            return self.sched.ready_count() > 0
        return self.sched.process_count() > self.config.upper_threshold

    def _pick_target(self) -> int | None:
        """Busiest peer according to the piggybacked hints."""
        best, best_load = None, 0
        for peer, load in sorted(self.sched.load_hints.items()):
            if peer == self.node.node_id:
                continue
            if load > best_load:
                best, best_load = peer, load
        threshold = 1 if self.config.ready_count_only else self.config.upper_threshold
        if best is not None and best_load > threshold:
            return best
        return None

    def _announce(self) -> Generator:
        try:
            yield from self.node.remote.broadcast(
                OP_ANNOUNCE, self.node.node_id, nbytes=request_size(8), scheme="none"
            )
            self.counters.inc("lb_announcements")
        finally:
            self._asking = False

    def _serve_announce(self, origin: int, idle_node: int) -> Generator:
        """A peer announced it is starving; if we are busy, ping it so our
        piggybacked load byte lands in its hint table."""
        if self._busy_enough():
            yield from self.node.remote.request(
                idle_node, OP_PING, None, nbytes=request_size(0)
            )
        return None

    def _serve_ping(self, origin: int, payload: Any) -> Generator:
        return True
        yield  # pragma: no cover - makes this a generator

    def _ask(self, target: int) -> Generator:
        try:
            granted = yield from self.node.remote.request(
                target, OP_WORKREQ, self.node.node_id, nbytes=request_size(8)
            )
            if granted:
                self.counters.inc("work_requests_granted")
            else:
                self.counters.inc("work_requests_rejected")
        finally:
            self._asking = False

    # ------------------------------------------------------------------

    def _serve_workreq(self, origin: int, requester: int) -> Generator[Any, Any, bool]:
        """Grant a work request by migrating a ready process out."""
        if not self._busy_enough():
            return False
        pcb = self.sched.steal_ready(want_migratable=True)
        if pcb is None:
            return False
        ok = yield from self.migration.migrate_out(pcb, requester)
        return ok
        yield  # pragma: no cover - makes this a generator
