"""Shared-memory allocation: IVY's memory-allocation module.

`repro.alloc.firstfit` is the paper's allocator: "a simple memory
allocation module that uses a 'first fit' algorithm with one-level
centralized control.  The processor with which the user directly
contacts will be appointed to the centralized memory manager.  To
reduce the memory contention, the memory allocators allocate each piece
of memory to the boundary of a page."

`repro.alloc.twolevel` is the improvement the paper describes but had
not implemented: per-node local allocators that carve big chunks from
the central one, so most allocations complete without a remote
operation.  The allocator ablation benchmark compares the two.
"""

from repro.alloc.firstfit import CentralAllocator, FreeList, OutOfSharedMemory
from repro.alloc.twolevel import TwoLevelAllocator

__all__ = ["CentralAllocator", "TwoLevelAllocator", "FreeList", "OutOfSharedMemory"]
