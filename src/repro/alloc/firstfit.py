"""First-fit allocation with one-level centralized control.

The free list lives in the contact node's private memory; remote
processors allocate and free through remote operations.  Every piece is
rounded up to page boundaries to reduce contention (false sharing) —
exactly the paper's design.  ``allocate``/``free`` are atomic: the
manager serialises them with a lock, mirroring the binary-lock guard of
the paper's primitives.
"""

from __future__ import annotations

import bisect
from typing import Any, Generator

from repro.api.cluster import NodeContext
from repro.net.packet import request_size
from repro.sim.process import Compute, Effect
from repro.sim.sync import SimLock

__all__ = ["FreeList", "CentralAllocator", "OutOfSharedMemory"]

OP_ALLOC = "mem.alloc"
OP_FREE = "mem.free"


class OutOfSharedMemory(MemoryError):
    """No free-list hole can satisfy the request."""


class FreeList:
    """A first-fit free list of (addr, size) holes with coalescing.

    Pure data structure (no simulation costs) so it can be reused by the
    local level of the two-level allocator and tested exhaustively.
    """

    def __init__(self, base: int = 0, size: int = 0) -> None:
        self._starts: list[int] = []
        self._holes: dict[int, int] = {}
        self.capacity = size
        self.allocated: dict[int, int] = {}
        if size > 0:
            self._insert(base, size)

    def free_bytes(self) -> int:
        return sum(self._holes.values())

    def alloc(self, size: int) -> int:
        """First fit: the lowest-addressed hole large enough."""
        for start in self._starts:
            hole = self._holes[start]
            if hole >= size:
                self._remove(start)
                if hole > size:
                    self._insert(start + size, hole - size)
                self.allocated[start] = size
                return start
        raise OutOfSharedMemory(
            f"no hole of {size} bytes (largest free: "
            f"{max(self._holes.values(), default=0)})"
        )

    def free(self, addr: int) -> int:
        """Return a block; coalesces with adjacent holes.  Returns size."""
        size = self.allocated.pop(addr, None)
        if size is None:
            raise ValueError(f"free of unallocated address {addr:#x}")
        # Coalesce with the hole ending at addr and the one starting after.
        idx = bisect.bisect_left(self._starts, addr)
        if idx > 0:
            prev = self._starts[idx - 1]
            if prev + self._holes[prev] == addr:
                addr, size = prev, self._holes[prev] + size
                self._remove(prev)
        nxt = addr + size
        if nxt in self._holes:
            size += self._holes[nxt]
            self._remove(nxt)
        self._insert(addr, size)
        return size

    def donate(self, addr: int, size: int) -> None:
        """Seed the list with an externally-acquired region (two-level)."""
        self.allocated[addr] = size
        self.free(addr)

    def _insert(self, start: int, size: int) -> None:
        bisect.insort(self._starts, start)
        self._holes[start] = size

    def _remove(self, start: int) -> None:
        self._starts.remove(start)
        del self._holes[start]


class CentralAllocator:
    """Per-node allocation endpoint backed by the contact node's free list.

    Instantiate one per node with a shared :class:`FreeList` held by the
    manager instance; non-manager instances go through remote operations.
    """

    def __init__(
        self,
        node: NodeContext,
        manager_node: int,
        heap_base: int,
        heap_size: int,
    ) -> None:
        self.node = node
        self.manager_node = manager_node
        self.page_size = node.cluster.config.svm.page_size
        self.is_manager = node.node_id == manager_node
        #: The free list exists only on the manager (private memory).
        self.freelist: FreeList | None = (
            FreeList(heap_base, heap_size) if self.is_manager else None
        )
        self._lock = SimLock()  # the paper's binary lock on the primitive
        node.remote.register(OP_ALLOC, self._serve_alloc)
        node.remote.register(OP_FREE, self._serve_free)

    # ------------------------------------------------------------------
    # client API (generators, run in process context)

    def allocate(self, nbytes: int) -> Generator[Effect, Any, int]:
        """Allocate ``nbytes`` (rounded up to whole pages); returns addr."""
        if nbytes <= 0:
            raise ValueError(f"allocation of {nbytes} bytes")
        size = self._round(nbytes)
        if self.is_manager:
            addr = yield from self._local_alloc(size)
        else:
            addr = yield from self.node.remote.request(
                self.manager_node, OP_ALLOC, size, nbytes=request_size(8)
            )
        if addr == 0:
            raise OutOfSharedMemory(f"central allocator rejected {size} bytes")
        self.node.counters.inc("allocations")
        return addr

    def release(self, addr: int) -> Generator[Effect, Any, None]:
        """Free a previous allocation."""
        if self.is_manager:
            yield from self._local_free(addr)
        else:
            ok = yield from self.node.remote.request(
                self.manager_node, OP_FREE, addr, nbytes=request_size(8)
            )
            if not ok:
                raise ValueError(f"remote free of unallocated address {addr:#x}")
        self.node.counters.inc("frees")

    def _round(self, nbytes: int) -> int:
        return -(-nbytes // self.page_size) * self.page_size

    # ------------------------------------------------------------------
    # manager side

    def _local_alloc(self, size: int) -> Generator[Effect, Any, int]:
        yield from self._lock.acquire()
        try:
            yield Compute(self.node.cluster.config.cpu.ns_per_op * 50)
            try:
                return self.freelist.alloc(size)
            except OutOfSharedMemory:
                return 0
        finally:
            self._lock.release()

    def _local_free(self, addr: int) -> Generator[Effect, Any, bool]:
        yield from self._lock.acquire()
        try:
            yield Compute(self.node.cluster.config.cpu.ns_per_op * 50)
            try:
                self.freelist.free(addr)
                return True
            except ValueError:
                return False
        finally:
            self._lock.release()

    def _serve_alloc(self, origin: int, size: int) -> Generator[Effect, Any, int]:
        if not self.is_manager:
            raise RuntimeError("allocation request reached a non-manager node")
        addr = yield from self._local_alloc(size)
        return addr

    def _serve_free(self, origin: int, addr: int) -> Generator[Effect, Any, bool]:
        if not self.is_manager:
            raise RuntimeError("free request reached a non-manager node")
        ok = yield from self._local_free(addr)
        return ok
