"""Two-level memory management — the improvement the paper proposes.

"Each processor has a local allocator maintaining a big chunk of memory
allocated from the central memory allocator. ... When there is not
enough free memory left in the big chunk, the local allocator will
allocate another big chunk from the central allocator.  This approach
has not been implemented yet, though it is expected to have better
performance."

We implement it: most allocations are satisfied from the node-local
free list with no network traffic; only chunk refills go to the central
manager.  Frees return memory to the local list (chunks are never
returned to the centre — the simple policy).  A free of an address
allocated on *another* node is routed to its allocating node, which the
caller's bookkeeping makes unnecessary in practice; the benchmark apps
free where they allocate, as IVY programs did.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.alloc.firstfit import CentralAllocator, FreeList, OutOfSharedMemory
from repro.api.cluster import NodeContext
from repro.sim.process import Compute, Effect
from repro.sim.sync import SimLock

__all__ = ["TwoLevelAllocator"]


class TwoLevelAllocator:
    """Node-local allocator over a central chunk source."""

    def __init__(self, node: NodeContext, central: CentralAllocator) -> None:
        self.node = node
        self.central = central
        self.page_size = node.cluster.config.svm.page_size
        self.chunk_bytes = (
            node.cluster.config.sched.alloc_chunk_pages * self.page_size
        )
        self._local = FreeList()  # starts empty; seeded by chunk refills
        self._lock = SimLock()

    # ------------------------------------------------------------------

    def allocate(self, nbytes: int) -> Generator[Effect, Any, int]:
        if nbytes <= 0:
            raise ValueError(f"allocation of {nbytes} bytes")
        size = -(-nbytes // self.page_size) * self.page_size
        yield from self._lock.acquire()
        try:
            yield Compute(self.node.cluster.config.cpu.ns_per_op * 50)
            try:
                addr = self._local.alloc(size)
                self.node.counters.inc("local_allocations")
                return addr
            except OutOfSharedMemory:
                pass
            # Refill: fetch a chunk big enough for this request.
            chunk = max(size, self.chunk_bytes)
            addr = yield from self.central.allocate(chunk)
            self.node.counters.inc("chunk_refills")
            self._local.donate(addr, chunk)
            return self._local.alloc(size)
        finally:
            self._lock.release()

    def release(self, addr: int) -> Generator[Effect, Any, None]:
        yield from self._lock.acquire()
        try:
            yield Compute(self.node.cluster.config.cpu.ns_per_op * 50)
            self._local.free(addr)
            self.node.counters.inc("local_frees")
        finally:
            self._lock.release()
