"""Iteration barriers from a sequencer + an eventcount.

"All the processes are synchronized at each iteration by using an
eventcount" — the classic composition: each arrival takes a ticket,
advances the eventcount, and waits for the count to reach the end of
its own round.  Works for any number of rounds without reinitialisation
and tolerates processes arriving at different rounds simultaneously
(ticket arithmetic keeps rounds disjoint).

Record layout: ``[sequencer int64][eventcount record]`` — note this
makes a barrier record share one page, like all IVY synchronisation
structures.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sync.context import SyncContext
from repro.sync.eventcount import ec_advance, ec_init, ec_wait
from repro.sync.sequencer import SEQ_RECORD_BYTES, seq_init, seq_ticket

__all__ = ["BARRIER_RECORD_BYTES", "Barrier"]

#: Conventional allocation size for one barrier (one 1 KB page).
BARRIER_RECORD_BYTES = 1024


class Barrier:
    """A reusable n-party barrier at a fixed shared address."""

    def __init__(self, addr: int, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.addr = addr
        self.parties = parties
        self._seq_addr = addr
        self._ec_addr = addr + SEQ_RECORD_BYTES

    def init(self, ctx: SyncContext) -> Generator[Any, Any, None]:
        """Initialise the record (call once, any process)."""
        yield from seq_init(ctx, self._seq_addr)
        yield from ec_init(ctx, self._ec_addr)

    def arrive(self, ctx: SyncContext, on_release=None) -> Generator[Any, Any, None]:
        """Block until all ``parties`` processes of this round arrive.

        ``on_release``, if given, is invoked (plain call, no yields) by
        exactly one process — the one whose Advance completed the round —
        at the simulated instant the barrier opens.  Experiments use this
        to close measurement epochs exactly at iteration boundaries.
        """
        racedetect = getattr(ctx, "racedetect", None)
        if racedetect is not None:
            racedetect.note_sync_op("barrier.arrive", self.addr, ctx.self_pid())
        ticket = yield from seq_ticket(ctx, self._seq_addr)
        round_end = (ticket // self.parties + 1) * self.parties
        value = yield from ec_advance(ctx, self._ec_addr)
        if value == round_end and on_release is not None:
            on_release()
        yield from ec_wait(ctx, self._ec_addr, round_end)
