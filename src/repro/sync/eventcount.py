"""Eventcounts in shared memory: Init / Read / Wait / Advance.

Record layout inside a shared page (all little-endian int64)::

    offset 0   value      — the count
    offset 8   nwaiters   — live entries in the waiter table
    offset 16  waiters[]  — (birth_node, serial, target) per waiter

The whole record must fit in one page (the paper: "the data structures
of an eventcount usually reside together in one page"); with 1 KB pages
that is 42 concurrent waiters per eventcount, far above what the
benchmark suite needs.  Multi-page chaining (the paper links additional
pages) is intentionally not implemented — see DESIGN.md's simplification
list.

Atomicity comes from ``atomic_update``: the page is owned, pinned and
its table-entry lock held for the duration of the read-modify-write, so
Wait's decide-and-register and Advance's bump-and-collect are
indivisible cluster-wide.  Waking remote waiters uses the remote
notification operation (``proc.resume``), which follows migration
forwarding pointers.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.proc.pcb import Pid
from repro.sync.context import SyncContext

__all__ = [
    "EC_RECORD_BYTES",
    "EventcountFull",
    "ec_init",
    "ec_read",
    "ec_wait",
    "ec_advance",
    "waiter_capacity",
]

_HEADER_WORDS = 2  # value, nwaiters
_WAITER_WORDS = 3  # birth, serial, target


class EventcountFull(RuntimeError):
    """The single-page waiter table overflowed."""


def waiter_capacity(page_size: int) -> int:
    """Waiters that fit alongside the header in one page."""
    return (page_size // 8 - _HEADER_WORDS) // _WAITER_WORDS


def _geometry(ctx: "SyncContext", addr: int) -> tuple[int, int]:
    """(record size, waiter capacity) for a record at ``addr``.

    The record occupies the rest of its page from ``addr``, so an
    eventcount embedded mid-page (e.g. inside a barrier record) simply
    has a smaller waiter table.
    """
    layout = ctx.mem.layout
    avail = layout.page_size - layout.offset_in_page(addr)
    capacity = (avail // 8 - _HEADER_WORDS) // _WAITER_WORDS
    if capacity < 1:
        raise ValueError(f"no room for an eventcount at {addr:#x}")
    return 8 * (_HEADER_WORDS + _WAITER_WORDS * capacity), capacity


#: Conventional allocation size for one eventcount (one 1 KB page).
EC_RECORD_BYTES = 1024


def ec_init(ctx: SyncContext, addr: int) -> Generator[Any, Any, None]:
    """Init(ec): zero the record.  Any process may then use it without
    knowing where it resides."""
    size, _ = _geometry(ctx, addr)

    def clear(view: np.ndarray) -> None:
        view[:] = 0

    yield from ctx.mem.atomic_update(addr, size, clear)


def ec_read(ctx: SyncContext, addr: int) -> Generator[Any, Any, int]:
    """Read(ec): the current value (a plain shared-memory read)."""
    value = yield from ctx.mem.read_i64(addr)
    return value


def ec_wait(ctx: SyncContext, addr: int, target: int) -> Generator[Any, Any, int]:
    """Wait(ec, value): suspend until the count reaches ``target``.

    Returns the count observed when the process continues.
    """
    size, capacity = _geometry(ctx, addr)
    pid = ctx.self_pid()
    racedetect = getattr(ctx, "racedetect", None)
    if racedetect is not None:
        racedetect.note_sync_op("ec.wait", addr, pid)

    def decide(view: np.ndarray) -> int:
        words = view.view(np.int64)
        value = int(words[0])
        if value >= target:
            return value
        n = int(words[1])
        if n >= capacity:
            raise EventcountFull(
                f"eventcount at {addr:#x} has {n} waiters (capacity {capacity})"
            )
        base = _HEADER_WORDS + n * _WAITER_WORDS
        words[base : base + 3] = (pid.node, pid.serial, target)
        words[1] = n + 1
        return -1

    value = yield from ctx.mem.atomic_update(addr, size, decide)
    if value >= 0:
        return value
    # Registered as a waiter inside the atomic section; park in the same
    # simulation event (no advance can slip in between).
    woken_value = yield from ctx.park()
    return int(woken_value) if woken_value is not None else target


def ec_advance(ctx: SyncContext, addr: int) -> Generator[Any, Any, int]:
    """Advance(ec): increment and wake every waiter whose target is
    reached.  Returns the new value."""
    size, _ = _geometry(ctx, addr)
    racedetect = getattr(ctx, "racedetect", None)
    if racedetect is not None:
        racedetect.note_sync_op("ec.advance", addr, ctx.self_pid())

    def bump(view: np.ndarray) -> tuple[int, list[tuple[int, int]]]:
        words = view.view(np.int64)
        value = int(words[0]) + 1
        words[0] = value
        n = int(words[1])
        ripe: list[tuple[int, int]] = []
        keep = 0
        for i in range(n):
            base = _HEADER_WORDS + i * _WAITER_WORDS
            birth, serial, target = (int(w) for w in words[base : base + 3])
            if target <= value:
                ripe.append((birth, serial))
            else:
                dst = _HEADER_WORDS + keep * _WAITER_WORDS
                if dst != base:
                    words[dst : dst + 3] = words[base : base + 3]
                keep += 1
        words[1] = keep
        return value, ripe

    value, ripe = yield from ctx.mem.atomic_update(addr, size, bump)
    resume_async = getattr(ctx, "resume_async", None)
    for birth, serial in ripe:
        if resume_async is not None:
            # Notifications are fired back-to-back; the transport still
            # guarantees delivery.  Waiting for each ack in turn would put
            # n round-trips on the critical path of every barrier release.
            resume_async(Pid(birth, serial), value)
        else:
            yield from ctx.resume(Pid(birth, serial), value)
    return value
