"""Binary locks in shared memory with a FIFO waiter queue.

"IVY uses a binary lock ... a test-and-set operation is performed on
the lock.  A failed process will be put into a queue and will be
awakened by an unlock operation."

Record layout (int64 words)::

    offset 0   held       — 0 free, 1 held
    offset 8   nwaiters
    offset 16  waiters[]  — (birth_node, serial) per waiter, FIFO

Release performs a direct hand-off: the lock stays held and the oldest
waiter is resumed as the new holder, so the lock cannot be stolen
between release and wake-up.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.proc.pcb import Pid
from repro.sync.context import SyncContext

__all__ = ["LOCK_RECORD_BYTES", "LockFull", "lock_init", "lock_acquire", "lock_release"]

_HEADER_WORDS = 2
_WAITER_WORDS = 2


class LockFull(RuntimeError):
    """The single-page waiter queue overflowed."""


def _geometry(ctx: SyncContext, addr: int) -> tuple[int, int]:
    """(record size, waiter capacity) for the rest of the page at addr."""
    layout = ctx.mem.layout
    avail = layout.page_size - layout.offset_in_page(addr)
    capacity = (avail // 8 - _HEADER_WORDS) // _WAITER_WORDS
    if capacity < 1:
        raise ValueError(f"no room for a lock at {addr:#x}")
    return 8 * (_HEADER_WORDS + _WAITER_WORDS * capacity), capacity


#: Conventional allocation size for one lock (one 1 KB page).
LOCK_RECORD_BYTES = 1024


def lock_init(ctx: SyncContext, addr: int) -> Generator[Any, Any, None]:
    size, _ = _geometry(ctx, addr)

    def clear(view: np.ndarray) -> None:
        view[:] = 0

    yield from ctx.mem.atomic_update(addr, size, clear)


def lock_acquire(ctx: SyncContext, addr: int) -> Generator[Any, Any, None]:
    """Test-and-set; on failure enqueue and suspend until handed the lock."""
    size, capacity = _geometry(ctx, addr)
    pid = ctx.self_pid()
    racedetect = getattr(ctx, "racedetect", None)
    if racedetect is not None:
        racedetect.note_sync_op("lock.acquire", addr, pid)

    def test_and_set(view: np.ndarray) -> bool:
        words = view.view(np.int64)
        if words[0] == 0:
            words[0] = 1
            return True
        n = int(words[1])
        if n >= capacity:
            raise LockFull(f"lock at {addr:#x} has {n} waiters")
        base = _HEADER_WORDS + n * _WAITER_WORDS
        words[base : base + 2] = (pid.node, pid.serial)
        words[1] = n + 1
        return False

    got = yield from ctx.mem.atomic_update(addr, size, test_and_set)
    if not got:
        yield from ctx.park()  # the releaser hands the lock to us directly


def lock_release(ctx: SyncContext, addr: int) -> Generator[Any, Any, None]:
    """Unlock; hands off to the oldest waiter if one is queued."""
    size, _ = _geometry(ctx, addr)
    racedetect = getattr(ctx, "racedetect", None)
    if racedetect is not None:
        racedetect.note_sync_op("lock.release", addr, ctx.self_pid())

    def unlock(view: np.ndarray) -> tuple[int, int] | None:
        words = view.view(np.int64)
        if words[0] == 0:
            raise RuntimeError(f"release of unheld lock at {addr:#x}")
        n = int(words[1])
        if n == 0:
            words[0] = 0
            return None
        birth, serial = int(words[_HEADER_WORDS]), int(words[_HEADER_WORDS + 1])
        # Compact the FIFO; the lock stays held for the new owner.
        for i in range(1, n):
            src = _HEADER_WORDS + i * _WAITER_WORDS
            dst = _HEADER_WORDS + (i - 1) * _WAITER_WORDS
            words[dst : dst + 2] = words[src : src + 2]
        words[1] = n - 1
        return birth, serial

    heir = yield from ctx.mem.atomic_update(addr, size, unlock)
    if heir is not None:
        yield from ctx.resume(Pid(heir[0], heir[1]))
