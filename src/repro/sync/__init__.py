"""Client-visible synchronisation, built **on** the shared virtual memory.

Exactly as in IVY, the primitives are ordinary data structures living in
shared pages, manipulated with pinned-page test-and-set atomic sections
(`SharedAddressSpace.atomic_update`), plus a remote *notification*
operation to wake processes on other processors.  "The data structures
of an eventcount usually reside together in one page", which also makes
the operations local once the page has migrated to the caller —
the performance property the paper highlights.

- `repro.sync.eventcount` — Init / Read / Wait / Advance (Aegis's native
  mechanism and IVY's primary synchronisation primitive);
- `repro.sync.lock`       — binary locks with a waiter queue ("a failed
  process will be put into a queue and will be awakened by an unlock");
- `repro.sync.sequencer`  — atomic ticket dispenser (Reed & Kanodia's
  companion to eventcounts);
- `repro.sync.barrier`    — iteration barrier composed from a sequencer
  and an eventcount, used by the Jacobi-style benchmarks.
"""

from repro.sync.eventcount import (
    EC_RECORD_BYTES,
    ec_advance,
    ec_init,
    ec_read,
    ec_wait,
    waiter_capacity,
)
from repro.sync.lock import LOCK_RECORD_BYTES, lock_acquire, lock_init, lock_release
from repro.sync.sequencer import SEQ_RECORD_BYTES, seq_init, seq_ticket
from repro.sync.barrier import BARRIER_RECORD_BYTES, Barrier

__all__ = [
    "EC_RECORD_BYTES",
    "ec_init",
    "ec_read",
    "ec_wait",
    "ec_advance",
    "waiter_capacity",
    "LOCK_RECORD_BYTES",
    "lock_init",
    "lock_acquire",
    "lock_release",
    "SEQ_RECORD_BYTES",
    "seq_init",
    "seq_ticket",
    "BARRIER_RECORD_BYTES",
    "Barrier",
]
