"""Sequencers: atomic ticket dispensers (Reed & Kanodia's companion
primitive to eventcounts).

A sequencer is a single shared int64; ``seq_ticket`` is an atomic
fetch-and-increment.  Combined with an eventcount it yields total
orderings — the barrier uses exactly that composition.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.sync.context import SyncContext

__all__ = ["SEQ_RECORD_BYTES", "seq_init", "seq_ticket"]

SEQ_RECORD_BYTES = 8


def seq_init(ctx: SyncContext, addr: int) -> Generator[Any, Any, None]:
    def clear(view: np.ndarray) -> None:
        view.view(np.int64)[0] = 0

    yield from ctx.mem.atomic_update(addr, SEQ_RECORD_BYTES, clear)


def seq_ticket(ctx: SyncContext, addr: int) -> Generator[Any, Any, int]:
    """Atomically return the current ticket and advance the dispenser."""

    def take(view: np.ndarray) -> int:
        cell = view.view(np.int64)
        ticket = int(cell[0])
        cell[0] = ticket + 1
        return ticket

    ticket = yield from ctx.mem.atomic_update(addr, SEQ_RECORD_BYTES, take)
    return ticket
