"""The capability bundle synchronisation primitives operate through.

A :class:`SyncContext` is what a *process* brings to a synchronisation
call: its node's view of the shared memory, its own identity, and the
ability to park itself and to wake others (locally or via the remote
notification operation).  `repro.api.ivy.IvyProcessContext` implements
this against the live cluster; unit tests implement it with stubs.
"""

from __future__ import annotations

from typing import Any, Generator, Protocol

from repro.proc.pcb import Pid
from repro.svm.address_space import SharedAddressSpace

__all__ = ["SyncContext"]


class SyncContext(Protocol):
    """What eventcounts/locks need from their caller."""

    @property
    def mem(self) -> SharedAddressSpace:
        """The *current* node's shared address space (follows migration)."""
        ...

    def self_pid(self) -> Pid:
        """The calling process's identifier."""
        ...

    def park(self) -> Generator[Any, Any, Any]:
        """Suspend the calling process until a resume arrives.

        Must be invoked in the same simulation event as the atomic
        section that registered the caller as a waiter — the simulator's
        event atomicity is what makes register-then-park race-free.
        """
        ...

    def resume(self, pid: Pid, value: Any = None) -> Generator[Any, Any, None]:
        """Wake a process anywhere in the cluster (remote notification)."""
        ...
