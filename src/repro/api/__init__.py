"""Client-facing API: cluster assembly and the IVY programming facade."""

from repro.api.cluster import Cluster, NodeContext
from repro.api.ivy import Ivy, IvyProcessContext

__all__ = ["Cluster", "NodeContext", "Ivy", "IvyProcessContext"]
