"""Cluster assembly: boots one complete simulated node stack per station.

A :class:`Cluster` owns the simulator, the network fabric, and N
:class:`NodeContext` objects, each wiring together the full IVY stack of
Figure 2 in the paper::

    client programs
      process management | memory allocation | initialization   (repro.api.ivy)
      remote operation   | memory mapping                        (here)
      OS low-level support                                       (repro.machine)

This module stops at the "memory mapping" layer: hardware + network +
coherence protocol + shared address space.  `repro.api.ivy` adds
processes, synchronisation and allocation on top.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import ClusterConfig, ObsConfig
from repro.machine.disk import Disk
from repro.machine.memory import PhysicalMemory
from repro.machine.mmu import AddressLayout
from repro.machine.pager import Pager
from repro.metrics.collect import Counters
from repro.net.fabric import Fabric, make_fabric
from repro.net.remoteop import RemoteOp
from repro.net.transport import Transport
from repro.obs import NULL_OBS, Observability
from repro.sim.kernel import Simulator, make_simulator
from repro.sim.process import SimDriver, Task
from repro.sim.rng import RngStreams
from repro.sim.trace import NULL_TRACE, TraceRecorder
from repro.svm.address_space import SharedAddressSpace
from repro.svm.page import PageTable
from repro.svm.protocol import CoherenceProtocol, make_protocol

__all__ = ["Cluster", "NodeContext"]


class NodeContext:
    """Everything that lives on one simulated processor."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        config = cluster.config
        self.cluster = cluster
        self.node_id = node_id
        self.counters = Counters()
        self.memory = PhysicalMemory(
            config.svm.page_size,
            config.memory.frames,
            replacement=config.memory.replacement,
            rng=cluster.rngs.stream(f"pager-{node_id}"),
        )
        self.disk = Disk(
            config.disk, config.svm.page_size, self.counters,
            node_id=node_id, obs=cluster.obs,
        )
        self.pager = Pager(self.memory, self.disk, self.counters, obs=cluster.obs)
        self.table = PageTable(
            node_id, cluster.layout.npages, config.svm.manager_node
        )
        self.transport = Transport(
            cluster.sim, cluster.driver, cluster.ring, node_id, config, cluster.trace
        )
        self.remote = RemoteOp(
            self.transport, cluster.driver, config, cluster.trace, obs=cluster.obs
        )
        self.protocol: CoherenceProtocol = make_protocol(
            config.svm.algorithm,
            sim=cluster.sim,
            node_id=node_id,
            nnodes=config.nodes,
            layout=cluster.layout,
            table=self.table,
            memory=self.memory,
            pager=self.pager,
            remote=self.remote,
            config=config,
            counters=self.counters,
            trace=cluster.trace,
            obs=cluster.obs,
        )
        self.mem = SharedAddressSpace(
            self.protocol, cluster.layout, config.cpu, self.counters
        )
        #: Filled in by repro.api.ivy when process management boots.
        self.sched = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NodeContext {self.node_id}>"


class Cluster:
    """A simulated loosely-coupled multiprocessor running the SVM."""

    def __init__(
        self,
        config: ClusterConfig,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability | None = None,
    ) -> None:
        if config.nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.config = config
        self.sim: Simulator = make_simulator(config.kernel)
        self.trace = trace
        #: Observability bundle (repro.obs): an explicit instance wins,
        #: else ``config.obs`` decides between a live one and NULL_OBS
        #: (an :class:`ObsConfig` additionally selects the timeline,
        #: span sampling, and histogram backend).
        if obs is not None:
            self.obs = obs
        elif isinstance(config.obs, ObsConfig) and config.obs:
            self.obs = Observability.from_config(config.obs)
        else:
            self.obs = Observability() if config.obs else NULL_OBS
        clock = self.sim.clock()
        trace.bind_clock(clock)
        if self.obs:  # never rebind the shared NULL_OBS
            self.obs.bind_clock(clock)
        self.rngs = RngStreams(config.seed)
        self.driver = SimDriver(self.sim)
        self.layout = AddressLayout(
            config.svm.shared_base, config.svm.shared_size, config.svm.page_size
        )
        self.fabric: Fabric = make_fabric(
            self.sim, config, self.rngs, trace, obs=self.obs
        )
        #: Historical alias — the medium was a TokenRing before fabrics
        #: became pluggable, and a lot of code reads ``cluster.ring``.
        self.ring = self.fabric
        self.nodes = [NodeContext(self, n) for n in range(config.nodes)]
        #: Online coherence oracle (set when ``config.checker`` is on).
        self.oracle: Any = None
        if config.checker:
            from repro.analysis.oracle import CoherenceOracle

            self.oracle = CoherenceOracle(self)
            for node in self.nodes:
                node.protocol.checker = self.oracle
        if trace:
            trace.emit(
                "cluster.boot",
                nodes=config.nodes,
                manager=config.svm.manager_node,
                algorithm=config.svm.algorithm,
                write_policy=config.svm.write_policy,
                page_size=config.svm.page_size,
            )

    # ------------------------------------------------------------------

    def node(self, node_id: int) -> NodeContext:
        return self.nodes[node_id]

    def spawn_system(self, gen: Generator, name: str = "system") -> Task:
        """Run a generator as a system-level (interrupt-context) task."""
        return self.driver.spawn(gen, name)

    def run(self, until: int | None = None) -> int:
        """Drive the simulation; returns the final simulated time (ns)."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # cluster-wide measurement

    def total_counters(self) -> Counters:
        return Counters.merge(node.counters for node in self.nodes)

    def counter_by_node(self, name: str) -> list[int]:
        return [node.counters[name] for node in self.nodes]

    def check_coherence_invariants(self) -> None:
        """Assert the protocol's global invariants (used by tests after
        quiescence): exactly one owner per materialised page, writability
        implies sole copy, copy sets cover all readers."""
        npages_seen: set[int] = set()
        for node in self.nodes:
            npages_seen.update(node.table.known_entries())
        for page in sorted(npages_seen):
            owners = [
                n.node_id for n in self.nodes if n.table.entry(page).is_owner
            ]
            if len(owners) != 1:
                raise AssertionError(f"page {page} has owners {owners}")
            owner = self.nodes[owners[0]]
            entry = owner.table.entry(page)
            holders = {
                n.node_id
                for n in self.nodes
                if n.node_id != owner.node_id
                and n.table.entry(page).access.permits_read()
            }
            update_policy = self.config.svm.write_policy == "update"
            if entry.access.permits_write() and holders and not update_policy:
                raise AssertionError(
                    f"page {page}: owner {owner.node_id} writable but copies at {holders}"
                )
            if not holders <= entry.copy_set:
                raise AssertionError(
                    f"page {page}: readers {holders} not covered by "
                    f"copy_set {entry.copy_set}"
                )
            if update_policy and page in owner.memory:
                # Update policy: every live copy must hold the owner's bytes.
                golden = owner.memory.data(page)
                for holder in holders:
                    node = self.nodes[holder]
                    if page in node.memory:
                        if not (node.memory.data(page) == golden).all():
                            raise AssertionError(
                                f"page {page}: stale copy at node {holder}"
                            )

    def resident_bytes(self) -> dict[int, int]:
        """Bytes of shared pages resident per node (memory-spread metric)."""
        return {
            node.node_id: len(node.memory) * self.config.svm.page_size
            for node in self.nodes
        }
