"""The IVY client interface: initialization, process management, memory
allocation — the top three modules of the paper's Figure 2.

:class:`Ivy` boots the full per-node stack (schedulers, migration,
load balancing, allocation) on top of a :class:`repro.api.cluster.Cluster`
and runs *parallel programs*: generator functions of the form::

    def main(ctx, *args):
        a = yield from ctx.malloc(nbytes)
        yield from ctx.write_array(a, ...)
        pid = yield from ctx.spawn(worker, arg, on=2)
        yield from ctx.ec_wait(done_ec, nworkers)
        return result

Each process receives an :class:`IvyProcessContext` — its window onto
the shared virtual memory, synchronisation, allocation and process
primitives.  The context always resolves against the process's *current*
node, so after a migration the same code transparently runs against the
destination's page tables, exactly the transparency the paper claims
for process migration.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.alloc.firstfit import CentralAllocator
from repro.alloc.twolevel import TwoLevelAllocator
from repro.api.cluster import Cluster, NodeContext
from repro.config import ClusterConfig
from repro.net.packet import request_size
from repro.obs import Observability
from repro.proc.loadbalance import LoadBalancer
from repro.proc.migration import MigrationService
from repro.proc.pcb import PCB, Pid
from repro.proc.scheduler import NodeScheduler
from repro.sim.process import Compute, Effect, Suspend, TaskFailure, YieldCpu
from repro.sim.trace import NULL_TRACE, TraceRecorder
from repro.sync import barrier as _barrier
from repro.sync import eventcount as _ec
from repro.sync import lock as _lock
from repro.sync import sequencer as _seq

__all__ = ["Ivy", "IvyProcessContext"]

OP_SPAWN = "proc.spawn"


class Ivy:
    """A booted IVY system on a simulated cluster."""

    def __init__(
        self,
        config: ClusterConfig,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability | None = None,
    ) -> None:
        self.config = config
        self.cluster = Cluster(config, trace, obs=obs)
        #: Observability bundle (live when ``obs`` was passed or
        #: ``config.obs`` is set; the shared NULL_OBS otherwise).
        self.obs = self.cluster.obs
        #: Vector-clock race detector (repro.analysis), enabled together
        #: with the coherence oracle by ``ClusterConfig.checker``.
        self.races = None
        if config.checker:
            from repro.analysis.racedetect import RaceDetector

            self.races = RaceDetector(self.cluster)
        self.schedulers: list[NodeScheduler] = []
        self.migrations: list[MigrationService] = []
        self.balancers: list[LoadBalancer] = []
        manager = config.svm.manager_node
        heap_base = config.svm.shared_base
        heap_size = config.svm.shared_size
        self._centrals: list[CentralAllocator] = []
        self.allocators: list[Any] = []
        for node in self.cluster.nodes:
            sched = NodeScheduler(
                self.cluster.sim, node.node_id, config, node.counters,
                obs=self.cluster.obs,
            )
            node.sched = sched
            node.transport.load_provider = sched.load_byte
            node.transport.hint_sink = sched.note_hint
            self.schedulers.append(sched)
            migration = MigrationService(node, sched)
            self.migrations.append(migration)
            self.balancers.append(LoadBalancer(node, sched, migration))
            central = CentralAllocator(node, manager, heap_base, heap_size)
            self._centrals.append(central)
            if config.sched.allocator == "twolevel":
                self.allocators.append(TwoLevelAllocator(node, central))
            elif config.sched.allocator == "central":
                self.allocators.append(central)
            else:
                raise ValueError(f"unknown allocator {config.sched.allocator!r}")
            node.remote.register(OP_SPAWN, self._make_spawn_server(node))

    # ------------------------------------------------------------------

    def node(self, node_id: int) -> NodeContext:
        return self.cluster.node(node_id)

    def run(self, main: Callable[..., Generator], *args: Any, on: int = 0) -> Any:
        """Run ``main(ctx, *args)`` as the initial process; returns its
        result once the whole program (simulation) quiesces."""
        pcb_holder: list[PCB] = []

        def body() -> Generator:
            ctx = IvyProcessContext(self, pcb_holder[0])
            result = yield from main(ctx, *args)
            return result

        sched = self.schedulers[on]
        pcb = sched.spawn(body(), name="main", migratable=False)
        pcb_holder.append(pcb)
        if self.config.sched.load_balancing:
            for balancer in self.balancers:
                balancer.start()
            pcb.task.on_done(lambda _t: [b.stop() for b in self.balancers])
        self.cluster.run()
        if pcb.task.error is not None:
            raise TaskFailure(f"main process failed") from pcb.task.error
        if self.cluster.oracle is not None:
            # The simulation drained: every invariant must now hold at
            # full strength (no in-flight-fault gating).
            self.cluster.oracle.check_quiescent()
        return pcb.task.result

    @property
    def time_ns(self) -> int:
        return self.cluster.sim.now

    # ------------------------------------------------------------------
    # remote spawn (manual scheduling: "tell where a process goes")

    def _make_spawn_server(self, node: NodeContext):
        def serve_spawn(origin: int, payload: tuple) -> Generator:
            fn, args, name, migratable, stack_addr, stack_pages, parent_clock = payload
            pid = yield from self._spawn_here(
                node.node_id, fn, args, name, migratable, stack_addr, stack_pages,
                parent_clock=parent_clock,
            )
            return (pid.node, pid.serial)

        return serve_spawn

    def _spawn_here(
        self,
        node_id: int,
        fn: Callable[..., Generator],
        args: tuple,
        name: str,
        migratable: bool,
        stack_addr: int,
        stack_pages: tuple[int, ...],
        parent_clock: dict | None = None,
    ) -> Generator[Effect, Any, Pid]:
        node = self.cluster.node(node_id)
        sched = self.schedulers[node_id]
        yield Compute(self.config.cpu.process_create)
        if stack_pages:
            # Claim the first stack page here so the dispatcher never
            # page-faults on it (see Figure 3 of the paper).
            yield from node.protocol.ensure_write(stack_pages[0])
        pcb_holder: list[PCB] = []

        def body() -> Generator:
            ctx = IvyProcessContext(self, pcb_holder[0])
            result = yield from fn(ctx, *args)
            return result

        pcb = sched.spawn(
            body(), name=name, migratable=migratable,
            stack_addr=stack_addr, stack_pages=stack_pages,
        )
        pcb_holder.append(pcb)
        if self.races is not None and parent_clock is not None:
            # The edge must be in place before the child's first access;
            # a remotely spawned child can run before the spawn reply
            # reaches the parent, which is why the clock rides in the
            # spawn payload instead of being registered on return.
            self.races.on_spawn(pcb.pid, parent_clock)
        return pcb.pid


class IvyProcessContext:
    """A process's handle on the IVY system (follows the process around)."""

    def __init__(self, ivy: Ivy, pcb: PCB) -> None:
        self.ivy = ivy
        self.pcb = pcb
        self._cpu = ivy.config.cpu
        #: Per-node TrackedMemory proxies (race detection only).
        self._tracked: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # location-transparent accessors

    @property
    def node_id(self) -> int:
        """The processor this process currently runs on."""
        return self.pcb.node

    @property
    def node(self) -> NodeContext:
        return self.ivy.cluster.node(self.pcb.node)

    @property
    def mem(self):
        inner = self.node.mem
        races = self.ivy.races
        if races is None:
            return inner
        node_id = self.pcb.node
        proxy = self._tracked.get(node_id)
        if proxy is None:
            from repro.analysis.racedetect import TrackedMemory

            proxy = TrackedMemory(inner, races, self.pcb.pid, node_id)
            self._tracked[node_id] = proxy
        return proxy

    @property
    def racedetect(self):
        """The cluster's race detector, or None when checking is off."""
        return self.ivy.races

    def declare_benign_race(self, label: str, addr: int, nbytes: int) -> None:
        """Declare ``[addr, addr+nbytes)`` as racy by design under
        ``label`` (no-op when checking is off).  Reports there are
        suppressed only when the run's ``CheckerConfig.known_races``
        also lists the label — the program locates, the config
        authorises."""
        if self.ivy.races is not None:
            self.ivy.races.declare_benign_race(label, addr, nbytes)

    @property
    def nnodes(self) -> int:
        return self.ivy.config.nodes

    def self_pid(self) -> Pid:
        return self.pcb.pid

    # ------------------------------------------------------------------
    # computation cost model

    def compute(self, ns: int) -> Effect:
        """``yield ctx.compute(ns)`` — hold the CPU for ns."""
        return Compute(int(ns))

    def flops(self, n: float) -> Effect:
        """Charge ``n`` floating-point operations."""
        return Compute(int(n * self._cpu.ns_per_flop))

    def ops(self, n: float) -> Effect:
        """Charge ``n`` simple integer/pointer operations."""
        return Compute(int(n * self._cpu.ns_per_op))

    def yield_cpu(self) -> Effect:
        return YieldCpu()

    # ------------------------------------------------------------------
    # shared memory (delegates to the current node)

    def read_bytes(self, addr, n):
        return self.mem.read_bytes(addr, n)

    def write_bytes(self, addr, data):
        return self.mem.write_bytes(addr, data)

    def read_array(self, addr, dtype, count):
        return self.mem.read_array(addr, dtype, count)

    def write_array(self, addr, values):
        return self.mem.write_array(addr, values)

    def read_f64(self, addr):
        return self.mem.read_f64(addr)

    def write_f64(self, addr, value):
        return self.mem.write_f64(addr, value)

    def read_i64(self, addr):
        return self.mem.read_i64(addr)

    def write_i64(self, addr, value):
        return self.mem.write_i64(addr, value)

    def atomic_update(self, addr, nbytes, fn):
        return self.mem.atomic_update(addr, nbytes, fn)

    # ------------------------------------------------------------------
    # memory allocation

    def malloc(self, nbytes: int) -> Generator[Effect, Any, int]:
        addr = yield from self.ivy.allocators[self.pcb.node].allocate(nbytes)
        return addr

    def free(self, addr: int) -> Generator[Effect, Any, None]:
        yield from self.ivy.allocators[self.pcb.node].release(addr)

    # ------------------------------------------------------------------
    # process management

    def spawn(
        self,
        fn: Callable[..., Generator],
        *args: Any,
        on: int | None = None,
        migratable: bool = True,
        name: str = "",
    ) -> Generator[Effect, Any, Pid]:
        """Create a lightweight process running ``fn(ctx, *args)``.

        ``on`` pins the birth processor (manual scheduling); the default
        is the caller's current processor (system scheduling then relies
        on the passive load balancer to spread work).
        """
        name = name or f"{getattr(fn, '__name__', 'proc')}"
        stack_bytes = self.ivy.config.sched.stack_bytes
        stack_addr = yield from self.malloc(stack_bytes)
        layout = self.ivy.cluster.layout
        stack_pages = tuple(layout.pages_spanned(stack_addr, stack_bytes))
        target = self.pcb.node if on is None else on
        races = self.ivy.races
        parent_clock = races.fork(self.pcb.pid) if races is not None else None
        if target == self.pcb.node:
            pid = yield from self.ivy._spawn_here(
                target, fn, args, name, migratable, stack_addr, stack_pages,
                parent_clock=parent_clock,
            )
            return pid
        raw = yield from self.node.remote.request(
            target,
            OP_SPAWN,
            (fn, args, name, migratable, stack_addr, stack_pages, parent_clock),
            nbytes=request_size(64 + 16 * len(args)),
        )
        return Pid(raw[0], raw[1])

    def set_migratable(self, flag: bool) -> None:
        """Toggle the PCB's migratable attribute at run time."""
        self.pcb.migratable = bool(flag)

    def migrate_to(self, dst: int) -> Generator[Effect, Any, None]:
        """Manually migrate the calling process to processor ``dst``."""
        if dst == self.pcb.node:
            return
        migration = self.ivy.migrations[self.pcb.node]
        pcb = self.pcb

        def shipper() -> Generator:
            ok = yield from migration.migrate_out(pcb, dst)
            if not ok:  # pragma: no cover - destination never refuses
                migration.sched.make_ready(pcb)

        self.ivy.cluster.driver.spawn(shipper(), f"ship-{pcb.pid}")
        # Park; the destination's adopt() makes us ready over there.
        yield Suspend()

    def park(self) -> Generator[Effect, Any, Any]:
        """Suspend until resumed (used by synchronisation primitives)."""
        value = yield Suspend()
        if self.ivy.races is not None:
            # Join the clocks every resume() aimed at us published: the
            # waker's history happened-before anything we do from here.
            self.ivy.races.on_wake(self.pcb.pid)
        return value

    def resume(self, pid: Pid, value: Any = None) -> Generator[Effect, Any, None]:
        """Remote notification: wake ``pid`` wherever it lives."""
        if self.ivy.races is not None:
            self.ivy.races.on_resume(self.pcb.pid, pid)
        yield from self.ivy.migrations[self.pcb.node].resume_remote(pid, value)

    def resume_async(self, pid: Pid, value: Any = None) -> None:
        """Fire a remote notification without waiting for its ack.

        The transport still retransmits until delivery, so the wake-up is
        reliable; the caller just does not sit on the round-trip.  Used by
        Advance(ec), which may have many waiters to wake.
        """
        if self.ivy.races is not None:
            # The edge is captured at send time — the notification's
            # content is exactly the sender's history up to this point.
            self.ivy.races.on_resume(self.pcb.pid, pid)
        migration = self.ivy.migrations[self.pcb.node]
        self.ivy.cluster.driver.spawn(
            migration.resume_remote(pid, value), f"resume-{pid}"
        )

    # ------------------------------------------------------------------
    # synchronisation (eventcounts, locks, sequencers, barriers)

    def ec_init(self, addr: int):
        return _ec.ec_init(self, addr)

    def ec_read(self, addr: int):
        return _ec.ec_read(self, addr)

    def ec_wait(self, addr: int, target: int):
        return _ec.ec_wait(self, addr, target)

    def ec_advance(self, addr: int):
        return _ec.ec_advance(self, addr)

    def lock_init(self, addr: int):
        return _lock.lock_init(self, addr)

    def lock_acquire(self, addr: int):
        return _lock.lock_acquire(self, addr)

    def lock_release(self, addr: int):
        return _lock.lock_release(self, addr)

    def seq_init(self, addr: int):
        return _seq.seq_init(self, addr)

    def seq_ticket(self, addr: int):
        return _seq.seq_ticket(self, addr)

    def barrier(self, addr: int, parties: int) -> _barrier.Barrier:
        return _barrier.Barrier(addr, parties)
