"""Ablation — page size.

"Our experience with a page size of 1K bytes has been pleasant and we
expect that smaller page sizes (perhaps as low as 256 bytes) will work
well also, but we are not as confident about larger page sizes, due to
the contention problem.  The right size is clearly application
dependent."

Two workloads bracket the trade-off: jacobi (bulk read-mostly slices —
bigger pages amortise transfer overhead) and a deliberately
fine-grained mixed-writer workload (adjacent counters — bigger pages
mean more false sharing and invalidation ping-pong).
"""

from __future__ import annotations

import argparse
from collections.abc import Generator
from typing import Any

from repro.api.ivy import Ivy
from repro.config import ClusterConfig
from repro.exps.parallel import Job, run_jobs
from repro.metrics.report import ascii_table
from repro.sync.eventcount import EC_RECORD_BYTES

__all__ = ["run", "main", "PAGE_SIZES"]

PAGE_SIZES = (256, 512, 1024, 2048, 4096)


def _false_sharing_time(page_size: int, rounds: int) -> int:
    """Four nodes each repeatedly increment their own counter; counters
    sit ``256`` bytes apart, so pages above 256 bytes force unrelated
    writers to share a page."""
    config = ClusterConfig(nodes=4).with_svm(page_size=page_size)
    ivy = Ivy(config)

    def worker(ctx: Any, base: Any, k: int, done: Any) -> Generator[Any, Any, Any]:
        addr = base + 256 * k
        for i in range(rounds):
            yield from ctx.write_i64(addr, i)
            yield ctx.ops(50)
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        base = yield from ctx.malloc(4096)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for k in range(4):
            yield from ctx.spawn(worker, base, k, done, on=k)
        yield from ctx.ec_wait(done, 4)
        return True

    ivy.run(main_prog)
    return int(ivy.time_ns)


def run(quick: bool = True, workers: int | None = None) -> list[dict[str, Any]]:
    jn, jiters = (128, 6) if quick else (256, 12)
    rounds = 30 if quick else 100
    # The jacobi runs at each page size are independent simulations —
    # fan them through the parallel runner (serial on one core).
    jobs = [
        Job(
            "jacobi", {"n": jn, "iters": jiters}, nprocs=4,
            config=ClusterConfig().with_svm(page_size=page_size), key=page_size,
        )
        for page_size in PAGE_SIZES
    ]
    rows = []
    for job, jr in zip(jobs, run_jobs(jobs, workers=workers)):
        rows.append(
            {
                "page_size": job.key,
                "jacobi_ns": jr.time_ns,
                "jacobi_faults": jr.counters["read_faults"] + jr.counters["write_faults"],
                "false_sharing_ns": _false_sharing_time(job.key, rounds),
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()
    data = run(quick=not args.full, workers=args.workers)
    rows = [
        [
            d["page_size"],
            f"{d['jacobi_ns'] / 1e9:.3f}s",
            d["jacobi_faults"],
            f"{d['false_sharing_ns'] / 1e9:.3f}s",
        ]
        for d in data
    ]
    print("Ablation — page size (bulk workload vs. fine-grained writers)")
    print()
    print(
        ascii_table(
            ["page bytes", "jacobi time", "jacobi faults", "false-sharing time"], rows
        )
    )


if __name__ == "__main__":
    main()
