"""Ablation — the memory-coherence manager algorithms.

The paper implemented three "for experimental purposes" and refers to
Li & Hudak's analysis for the trade-offs: the centralized manager
funnels every fault through one processor; the fixed distributed
manager spreads that duty by ``H(p) = p mod N``; the dynamic
distributed manager forwards along probOwner hints, shortening chains
as it learns.  Two variants from the same analysis are included as
extensions: the dynamic manager with periodic hint broadcasts, and the
pure broadcast manager (owner location by ring broadcast — cheap in
state, expensive in interrupts and messages).  This experiment runs the
same workload under each and reports fault latency and message traffic.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.apps.jacobi import JacobiApp
from repro.config import ClusterConfig
from repro.metrics.report import ascii_table
from repro.metrics.speedup import run_app

__all__ = ["run", "main", "ALGORITHMS"]

ALGORITHMS = ("centralized", "fixed", "dynamic", "dynamic+bcast", "broadcast")


@dataclass
class ManagerResult:
    algorithm: str
    time_ns: int
    messages: int
    faults: int
    forwards: int
    mean_fault_us: float


def run(quick: bool = True, nprocs: int = 4) -> list[ManagerResult]:
    if quick:
        def factory(p: int) -> JacobiApp:
            return JacobiApp(p, n=128, iters=8)
    else:
        def factory(p: int) -> JacobiApp:
            return JacobiApp(p, n=256, iters=16)
    out = []
    for algorithm in ALGORITHMS:
        if algorithm == "dynamic+bcast":
            config = ClusterConfig().with_svm(
                algorithm="dynamic", dynamic_broadcast_period=4
            )
        else:
            config = ClusterConfig().with_svm(algorithm=algorithm)
        r = run_app(factory, nprocs, config=config)
        faults = r.counters["read_faults"] + r.counters["write_faults"]
        fault_ns = r.counters["read_fault_ns"] + r.counters["write_fault_ns"]
        out.append(
            ManagerResult(
                algorithm=algorithm,
                time_ns=r.time_ns,
                messages=r.ring_stats["messages"],
                faults=faults,
                forwards=r.counters["faults_forwarded"],
                mean_fault_us=(fault_ns / faults / 1000.0) if faults else 0.0,
            )
        )
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--procs", type=int, default=4)
    args = parser.parse_args()
    results = run(quick=not args.full, nprocs=args.procs)
    rows = [
        [
            r.algorithm,
            f"{r.time_ns / 1e9:.3f}s",
            r.messages,
            r.faults,
            r.forwards,
            f"{r.mean_fault_us:.0f}us",
        ]
        for r in results
    ]
    print(f"Ablation — coherence manager algorithms (jacobi, {args.procs} processors)")
    print()
    print(
        ascii_table(
            ["algorithm", "exec time", "ring msgs", "faults", "forwards", "mean fault"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
