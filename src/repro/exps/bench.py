"""Machine-readable benchmark artifacts (``BENCH_obs.json``, ``BENCH_perf.json``).

A tiny harness that runs scaled-down Figure 5 and Figure 4 (capacity)
configurations and writes one JSON document with simulated runtimes,
key protocol counters, and the observability profiler's cluster-time
attribution per run — so regressions in either *performance* (simulated
time drifting) or *behaviour* (fault/disk counts drifting) are visible
to tooling without parsing ASCII tables.  CI's ``obs-smoke`` job uploads
the file as a workflow artifact.

::

    python -m repro.exps.bench --out BENCH_obs.json

The workloads are deliberately small (a few seconds of wall clock): the
artifact is a tripwire, not a calibration.  Determinism makes the
numbers exact — two checkouts producing different values differ in
behaviour, not in measurement noise.

**Wall-clock mode** (``--perf``) measures the *simulator itself*: each
case runs with observability off (the configuration the fast paths
serve), best-of-``--repeats`` wall time, and reports kernel events per
second.  ``events`` is deterministic — a drift there is a behaviour
change, not noise — while ``wall_s`` is hardware-dependent, so the
committed ``BENCH_perf.json`` is a *trajectory record* for one
environment, not a portable constant.  ``--check`` compares a fresh
measurement against the committed file (events must match exactly;
events/sec may regress at most ``--tolerance``); ``--profile-wall``
wraps one pass in cProfile and prints/saves the hot functions.

::

    python -m repro.exps.bench --perf --out BENCH_perf.json
    python -m repro.exps.bench --perf --check BENCH_perf.json
    python -m repro.exps.bench --perf --profile-wall --profile-out bench.pstats
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any

from repro.api.ivy import Ivy
from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.pde3d import Pde3dApp
from repro.config import ClusterConfig
from repro.exps.presets import PAGE_BYTES
from repro.metrics.speedup import run_app
from repro.obs import CATEGORIES, Observability

__all__ = ["run_bench", "run_perf", "run_perf_ab", "check_perf", "host_metadata", "main"]

#: Environment override for the --check throughput tolerance (CI knob:
#: loosen on noisy shared runners without touching the workflow matrix).
TOLERANCE_ENV = "REPRO_PERF_TOLERANCE"

#: Counters worth tracking run-over-run (behavioural tripwires).
KEY_COUNTERS = (
    "read_faults",
    "write_faults",
    "read_fault_ns",
    "write_fault_ns",
    "invalidations_sent",
    "faults_forwarded",
    "page_copies_sent",
    "page_transfers_sent",
    "disk_reads",
    "disk_writes",
    "evictions",
)


def host_metadata() -> dict[str, Any]:
    """What machine produced a wall-clock number (recorded per artifact).

    ``events`` is portable; ``events_per_sec`` is not — the committed
    trajectory only means something next to the host that measured it.
    Best-effort on non-Linux: absent facts are reported as ``None``
    rather than guessed.
    """
    cpu_model: str | None = None
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        cpu_model = platform.processor() or None
    governor: str | None = None
    try:
        with open(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
            encoding="utf-8",
        ) as fh:
            governor = fh.read().strip()
    except OSError:
        pass
    return {
        "cpu_model": cpu_model,
        "cores": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        # "performance" pins the clock; anything else ("powersave",
        # "schedutil", None=unknown) means wall numbers wander with load.
        "cpufreq_governor": governor,
        "platform": platform.platform(),
    }


def _capacity_config(m: int) -> ClusterConfig:
    # The Figure 4 regime at bench scale (see presets.pde_capacity).
    vector_pages = (m**3 * 8 + PAGE_BYTES - 1) // PAGE_BYTES
    return ClusterConfig().with_memory(
        frames=int(1.8 * vector_pages), replacement="random"
    )


def _bench_cases() -> list[tuple[str, Any, int, ClusterConfig | None]]:
    """(name, factory, nprocs, config) — small but representative."""
    return [
        ("dotprod_p1", lambda p: DotProductApp(p, n=32768), 1, None),
        ("dotprod_p2", lambda p: DotProductApp(p, n=32768), 2, None),
        ("jacobi_p1", lambda p: JacobiApp(p, n=128, iters=6), 1, None),
        ("jacobi_p2", lambda p: JacobiApp(p, n=128, iters=6), 2, None),
        ("pde_capacity_p1", lambda p: Pde3dApp(p, m=14, iters=4), 1, _capacity_config(14)),
        ("pde_capacity_p2", lambda p: Pde3dApp(p, m=14, iters=4), 2, _capacity_config(14)),
    ]


def _timeline_bench(nodes: int = 64, window_ms: int = 20, sample_every: int = 64) -> dict[str, Any]:
    """Windowed-telemetry section: one sampled ≥64-node switched run.

    The fig5-class scale point observed with a simulated-time timeline:
    per-window cluster profile attribution, busiest links, and the SLO
    report whose ``saturation_onset_window`` is the artifact's headline —
    the first 20 ms window where the run stops meeting its latency or
    link-occupancy targets.  Every value is deterministic (sampling is a
    pure hash of span ids), so drift here is behaviour change.
    """
    from repro.config import MILLISECOND
    from repro.exps.presets import scale_fig5
    from repro.exps.parallel import APP_REGISTRY
    from repro.exps.scale import DEFAULT_SLOS
    from repro.obs.slo import evaluate, parse_slo

    app, app_args, config = scale_fig5(nodes, "switched")
    ctor = APP_REGISTRY[app]
    obs = Observability(
        timeline_window_ns=window_ms * MILLISECOND,
        sample_every=sample_every,
        hist_backend="logbucket",
    )
    res = run_app(
        lambda p: ctor(p, **app_args), nodes, config=config, check=True, obs=obs
    )
    tl = obs.timeline
    assert tl is not None
    per_node = obs.window_breakdowns(nodes, res.time_ns)
    nwin = tl.nwindows(res.time_ns)
    profile = [
        {cat: sum(
            windows[w].get(cat, 0)
            for windows in per_node.values() if w < len(windows)
        ) for cat in CATEGORIES}
        for w in range(nwin)
    ]
    report = evaluate(
        tl, res.time_ns, [parse_slo(text) for text in DEFAULT_SLOS]
    )
    return {
        "case": f"fig5/n{nodes}/switched",
        "nodes": nodes,
        "fabric": "switched",
        "time_ns": res.time_ns,
        "events": res.events_executed,
        "window_ns": tl.window_ns,
        "windows": nwin,
        "sample_every": sample_every,
        "spans_recorded": len(obs.spans),
        "spans_dropped": obs.spans.dropped,
        "profile_ns_per_window": profile,
        "busiest_links": [
            {"link": name, "busy_ns": busy, "peak_window_utilisation": round(peak, 4)}
            for name, busy, peak in tl.busiest_links(res.time_ns, limit=4)
        ],
        "slo": report.summary(),
    }


def run_bench() -> dict[str, Any]:
    runs: dict[str, Any] = {}
    for name, factory, nprocs, config in _bench_cases():
        obs = Observability()
        res = run_app(factory, nprocs, config=config, obs=obs)
        cluster = Observability.cluster_breakdown(obs.breakdown(nprocs, res.time_ns))
        runs[name] = {
            "nprocs": nprocs,
            "time_ns": res.time_ns,
            "counters": {k: res.counters[k] for k in KEY_COUNTERS},
            "profile_ns": {cat: cluster[cat] for cat in CATEGORIES},
            "spans": len(obs.spans),
        }
    # Simulated times are deterministic; derived ratios are free to add.
    doc = {
        "schema": "repro.bench/1",
        "runs": runs,
        "speedups": {
            "dotprod": runs["dotprod_p1"]["time_ns"] / runs["dotprod_p2"]["time_ns"],
            "jacobi": runs["jacobi_p1"]["time_ns"] / runs["jacobi_p2"]["time_ns"],
            "pde_capacity": (
                runs["pde_capacity_p1"]["time_ns"] / runs["pde_capacity_p2"]["time_ns"]
            ),
        },
        "timeline": _timeline_bench(),
    }
    return doc


def _perf_run_case(
    factory: Any, nprocs: int, config: ClusterConfig | None, kernel: str | None = None
) -> tuple[float, int]:
    """One obs-off wall-clock measurement: (seconds, kernel events)."""
    base = config or ClusterConfig()
    app = factory(nprocs)
    ivy = Ivy(base.replace(nodes=nprocs, kernel=kernel))
    started = time.perf_counter()
    ivy.run(app.main)
    wall = time.perf_counter() - started
    return wall, ivy.cluster.sim.events_executed


def run_perf(repeats: int = 3, kernel: str | None = None) -> dict[str, Any]:
    """Wall-clock throughput of the simulator over the bench suite.

    Observability is *off* (the default production configuration and the
    one the hot-path fast paths serve); each case reports its
    best-of-``repeats`` wall time — the minimum is the standard estimator
    under one-sided scheduler/host noise.  ``kernel`` selects the event
    kernel (``None`` = config/env default).
    """
    runs: dict[str, Any] = {}
    total_events = 0
    total_wall = 0.0
    for name, factory, nprocs, config in _bench_cases():
        best = float("inf")
        events = 0
        for _ in range(repeats):
            wall, events = _perf_run_case(factory, nprocs, config, kernel)
            best = min(best, wall)
        runs[name] = {
            "wall_s": round(best, 5),
            "events": events,
            "events_per_sec": round(events / best),
        }
        total_events += events
        total_wall += best
    return {
        "schema": "repro.bench-perf/1",
        "measurement": (
            "best-of-N wall clock per case, observability disabled; "
            "'events' is deterministic, 'events_per_sec' is hardware-bound"
        ),
        "repeats": repeats,
        "host": host_metadata(),
        "runs": runs,
        "aggregate": {
            "events": total_events,
            "wall_s": round(total_wall, 5),
            "events_per_sec": round(total_events / total_wall),
        },
    }


def run_perf_ab(repeats: int = 5) -> dict[str, Any]:
    """Interleaved A/B of the two event kernels over the bench suite.

    Repeats alternate heap/calendar *within* each case (heap, calendar,
    heap, ...) so slow host drift — thermal throttling, a neighbour VM —
    hits both arms equally instead of biasing whichever ran second.
    Event counts must match across kernels (they are the same schedule);
    a mismatch raises rather than reporting a meaningless speedup.
    """
    cases: dict[str, Any] = {}
    totals = {"heap": 0.0, "calendar": 0.0}
    total_events = 0
    for name, factory, nprocs, config in _bench_cases():
        best = {"heap": float("inf"), "calendar": float("inf")}
        events = {"heap": 0, "calendar": 0}
        for _ in range(repeats):
            for kernel in ("heap", "calendar"):
                wall, events[kernel] = _perf_run_case(factory, nprocs, config, kernel)
                best[kernel] = min(best[kernel], wall)
        if events["heap"] != events["calendar"]:
            raise AssertionError(
                f"{name}: kernels disagree on event count "
                f"(heap {events['heap']} != calendar {events['calendar']})"
            )
        cases[name] = {
            "events": events["calendar"],
            "heap_wall_s": round(best["heap"], 5),
            "calendar_wall_s": round(best["calendar"], 5),
            "speedup": round(best["heap"] / best["calendar"], 4),
        }
        totals["heap"] += best["heap"]
        totals["calendar"] += best["calendar"]
        total_events += events["calendar"]
    return {
        "measurement": (
            "interleaved best-of-N per kernel; identical event counts "
            "asserted, so 'speedup' is pure dispatch cost"
        ),
        "repeats": repeats,
        "events": total_events,
        "cases": cases,
        "aggregate": {
            "heap_events_per_sec": round(total_events / totals["heap"]),
            "calendar_events_per_sec": round(total_events / totals["calendar"]),
            "speedup": round(totals["heap"] / totals["calendar"], 4),
        },
    }


def check_perf(
    doc: dict[str, Any], baseline: dict[str, Any], tolerance: float = 0.30
) -> list[str]:
    """Compare a fresh ``run_perf`` doc against a committed baseline.

    Returns human-readable problems (empty = pass).  Event counts must
    match *exactly* — they are deterministic, so a drift is a behaviour
    change and the baseline must be regenerated deliberately.  Throughput
    may regress at most ``tolerance`` (machine jitter makes tighter
    bounds flaky in CI).
    """
    problems: list[str] = []
    for name, base_run in baseline["runs"].items():
        run = doc["runs"].get(name)
        if run is None:
            problems.append(f"{name}: case missing from this measurement")
            continue
        if run["events"] != base_run["events"]:
            problems.append(
                f"{name}: events {run['events']} != baseline {base_run['events']} "
                "(behaviour drift — regenerate BENCH_perf.json deliberately)"
            )
    floor = baseline["aggregate"]["events_per_sec"] * (1.0 - tolerance)
    got = doc["aggregate"]["events_per_sec"]
    if got < floor:
        problems.append(
            f"aggregate events/sec {got} below floor {floor:.0f} "
            f"(baseline {baseline['aggregate']['events_per_sec']}, "
            f"tolerance {tolerance:.0%})"
        )
    return problems


def _profile_wall(out: str | None) -> None:
    """One cProfile'd pass over the suite; print hot functions."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    for _, factory, nprocs, config in _bench_cases():
        _perf_run_case(factory, nprocs, config)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("tottime")
    stats.print_stats(15)
    if out:
        stats.dump_stats(out)
        print(f"profile written to {out}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exps.bench", description=__doc__
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--perf", action="store_true",
        help="measure wall-clock throughput (obs off) instead of simulated metrics",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--kernel", choices=("calendar", "heap"), default=None,
        help="event kernel for --perf (default: config/REPRO_KERNEL default)",
    )
    parser.add_argument(
        "--ab", action="store_true",
        help="with --perf: also measure both kernels interleaved and add "
        "an 'ab' section (heap vs calendar, identical events asserted)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a committed BENCH_perf.json; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get(TOLERANCE_ENV, "0.30")),
        help="allowed fractional events/sec regression for --check "
        f"(default 0.30, or the {TOLERANCE_ENV} environment variable)",
    )
    parser.add_argument(
        "--profile-wall", action="store_true",
        help="cProfile one pass of the suite and print hot functions",
    )
    parser.add_argument("--profile-out", default=None, help="dump pstats here")
    args = parser.parse_args(argv)

    if args.profile_wall:
        _profile_wall(args.profile_out)
        return 0

    if args.perf:
        doc = run_perf(repeats=args.repeats, kernel=args.kernel)
        for name, run in doc["runs"].items():
            print(
                f"{name}: {run['wall_s'] * 1e3:.1f} ms wall, "
                f"{run['events']} events, {run['events_per_sec']} ev/s"
            )
        agg = doc["aggregate"]
        print(f"aggregate: {agg['events']} events in {agg['wall_s']:.3f} s "
              f"= {agg['events_per_sec']} ev/s")
        if args.ab:
            ab = run_perf_ab(repeats=args.repeats)
            doc["ab"] = ab
            print(
                f"A/B: heap {ab['aggregate']['heap_events_per_sec']} ev/s, "
                f"calendar {ab['aggregate']['calendar_events_per_sec']} ev/s "
                f"= {ab['aggregate']['speedup']:.3f}x"
            )
        if args.check:
            with open(args.check, encoding="utf-8") as fh:
                baseline = json.load(fh)
            problems = check_perf(doc, baseline, tolerance=args.tolerance)
            for problem in problems:
                print(f"PERF CHECK FAILED: {problem}")
            if problems:
                return 1
            print(f"perf check passed against {args.check}")
        if args.out:
            # Preserve the committed baseline note if one exists at the
            # destination — the trajectory section is hand-maintained.
            doc_out = dict(doc)
            try:
                with open(args.out, encoding="utf-8") as fh:
                    doc_out["trajectory"] = json.load(fh).get("trajectory")
            except (OSError, ValueError):
                pass
            if doc_out.get("trajectory") is None:
                doc_out.pop("trajectory", None)
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(doc_out, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.out}")
        return 0

    doc = run_bench()
    out = args.out or "BENCH_obs.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, run in doc["runs"].items():
        print(f"{name}: {run['time_ns'] / 1e6:.1f} ms simulated")
    for app, speedup in doc["speedups"].items():
        print(f"speedup {app} p1->p2: {speedup:.2f}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
