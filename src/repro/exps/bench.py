"""Machine-readable benchmark artifacts (``BENCH_obs.json``).

A tiny harness that runs scaled-down Figure 5 and Figure 4 (capacity)
configurations and writes one JSON document with simulated runtimes,
key protocol counters, and the observability profiler's cluster-time
attribution per run — so regressions in either *performance* (simulated
time drifting) or *behaviour* (fault/disk counts drifting) are visible
to tooling without parsing ASCII tables.  CI's ``obs-smoke`` job uploads
the file as a workflow artifact.

::

    python -m repro.exps.bench --out BENCH_obs.json

The workloads are deliberately small (a few seconds of wall clock): the
artifact is a tripwire, not a calibration.  Determinism makes the
numbers exact — two checkouts producing different values differ in
behaviour, not in measurement noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.pde3d import Pde3dApp
from repro.config import ClusterConfig
from repro.exps.presets import PAGE_BYTES
from repro.metrics.speedup import run_app
from repro.obs import CATEGORIES, Observability

__all__ = ["run_bench", "main"]

#: Counters worth tracking run-over-run (behavioural tripwires).
KEY_COUNTERS = (
    "read_faults",
    "write_faults",
    "read_fault_ns",
    "write_fault_ns",
    "invalidations_sent",
    "faults_forwarded",
    "page_copies_sent",
    "page_transfers_sent",
    "disk_reads",
    "disk_writes",
    "evictions",
)


def _capacity_config(m: int) -> ClusterConfig:
    # The Figure 4 regime at bench scale (see presets.pde_capacity).
    vector_pages = (m**3 * 8 + PAGE_BYTES - 1) // PAGE_BYTES
    return ClusterConfig().with_memory(
        frames=int(1.8 * vector_pages), replacement="random"
    )


def _bench_cases() -> list[tuple[str, Any, int, ClusterConfig | None]]:
    """(name, factory, nprocs, config) — small but representative."""
    return [
        ("dotprod_p1", lambda p: DotProductApp(p, n=32768), 1, None),
        ("dotprod_p2", lambda p: DotProductApp(p, n=32768), 2, None),
        ("jacobi_p1", lambda p: JacobiApp(p, n=128, iters=6), 1, None),
        ("jacobi_p2", lambda p: JacobiApp(p, n=128, iters=6), 2, None),
        ("pde_capacity_p1", lambda p: Pde3dApp(p, m=14, iters=4), 1, _capacity_config(14)),
        ("pde_capacity_p2", lambda p: Pde3dApp(p, m=14, iters=4), 2, _capacity_config(14)),
    ]


def run_bench() -> dict[str, Any]:
    runs: dict[str, Any] = {}
    for name, factory, nprocs, config in _bench_cases():
        obs = Observability()
        res = run_app(factory, nprocs, config=config, obs=obs)
        cluster = Observability.cluster_breakdown(obs.breakdown(nprocs, res.time_ns))
        runs[name] = {
            "nprocs": nprocs,
            "time_ns": res.time_ns,
            "counters": {k: res.counters[k] for k in KEY_COUNTERS},
            "profile_ns": {cat: cluster[cat] for cat in CATEGORIES},
            "spans": len(obs.spans),
        }
    # Simulated times are deterministic; derived ratios are free to add.
    doc = {
        "schema": "repro.bench/1",
        "runs": runs,
        "speedups": {
            "dotprod": runs["dotprod_p1"]["time_ns"] / runs["dotprod_p2"]["time_ns"],
            "jacobi": runs["jacobi_p1"]["time_ns"] / runs["jacobi_p2"]["time_ns"],
            "pde_capacity": (
                runs["pde_capacity_p1"]["time_ns"] / runs["pde_capacity_p2"]["time_ns"]
            ),
        },
    }
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exps.bench", description=__doc__
    )
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)
    doc = run_bench()
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, run in doc["runs"].items():
        print(f"{name}: {run['time_ns'] / 1e6:.1f} ms simulated")
    for app, speedup in doc["speedups"].items():
        print(f"speedup {app} p1->p2: {speedup:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
