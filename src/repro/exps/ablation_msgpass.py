"""Ablation — shared virtual memory vs. message passing.

The paper's motivating argument, measured: "the difficulty of passing
complex data structures is the main drawback of message passing".

Workload: a producer on node 0 builds a linked structure of E elements
(a list of records); consumers on every other node traverse it.

- Message passing must marshal the structure (chase E pointers, tag,
  relocate), ship it to each consumer, and unmarshal (allocate + fix up)
  on arrival — per-element costs from `repro.msgpass.marshal`.
- On the SVM, "passing a list data structure simply requires passing a
  pointer": consumers fault the pages over on first touch, and a repeat
  traversal is free because the pages are already cached read copies.

Both sides traverse the structure ``touches`` times, so re-use is part
of the comparison (the second traversal is where DSM wins big).
"""

from __future__ import annotations

import argparse
from collections.abc import Generator
from typing import Any

import numpy as np

from repro.api.ivy import Ivy
from repro.config import ClusterConfig
from repro.metrics.report import ascii_table
from repro.msgpass import MessagePassing
from repro.sync.eventcount import EC_RECORD_BYTES

__all__ = ["run", "main"]

#: Bytes per linked element (a cons cell with a small payload).
ELEMENT_BYTES = 32
#: Simple ops to visit one element during a traversal.
VISIT_OPS = 6


def _svm_run(nodes: int, elements: int, touches: int) -> int:
    ivy = Ivy(ClusterConfig(nodes=nodes))

    def consumer(ctx: Any, addr: Any, done: Any) -> Generator[Any, Any, Any]:
        for _ in range(touches):
            data = yield from ctx.mem.fetch_array(
                addr, np.uint8, ELEMENT_BYTES * elements
            )
            assert data[0] == 1
            yield ctx.ops(elements * VISIT_OPS)
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        addr = yield from ctx.malloc(ELEMENT_BYTES * elements)
        structure = np.ones(ELEMENT_BYTES * elements, dtype=np.uint8)
        yield from ctx.write_array(addr, structure)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for k in range(1, nodes):
            yield from ctx.spawn(consumer, addr, done, on=k)
        yield from ctx.ec_wait(done, nodes - 1)
        return True

    ivy.run(main_prog)
    return int(ivy.time_ns)


def _msgpass_run(nodes: int, elements: int, touches: int) -> int:
    ivy = Ivy(ClusterConfig(nodes=nodes))
    mp = MessagePassing(ivy)
    nbytes = ELEMENT_BYTES * elements

    def consumer(ctx: Any, done: Any) -> Generator[Any, Any, Any]:
        structure = yield from mp.receive(ctx, port=1)
        assert structure == "linked-structure"
        for _ in range(touches):
            yield ctx.ops(elements * VISIT_OPS)
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for k in range(1, nodes):
            yield from ctx.spawn(consumer, done, on=k)
        for k in range(1, nodes):
            # One marshalled copy per consumer: E pointer-linked elements.
            yield from mp.send(
                ctx, k, 1, "linked-structure", nbytes=nbytes, elements=elements
            )
        yield from ctx.ec_wait(done, nodes - 1)
        return True

    ivy.run(main_prog)
    return int(ivy.time_ns)


def run(quick: bool = True, nodes: int = 4) -> list[dict[str, Any]]:
    elements = 2000 if quick else 8000
    out = []
    for touches in (1, 3):
        svm = _svm_run(nodes, elements, touches)
        mp = _msgpass_run(nodes, elements, touches)
        out.append(
            {
                "workload": f"linked structure x{touches}",
                "elements": elements,
                "touches": touches,
                "svm_ns": svm,
                "msgpass_ns": mp,
                "ratio": mp / svm,
            }
        )
    out.append(_matmul_pair(nodes, quick))
    return out


def _matmul_pair(nodes: int, quick: bool) -> dict[str, Any]:
    """The same application under both models.  Flat bulk arrays mean
    marshalling is only a copy (no per-element pointer chasing), yet the
    natural master/worker program still loses: the master re-marshals A
    per worker and its sends serialise, while SVM workers pull pages
    concurrently on demand."""
    from repro.apps.matmul import MatmulApp
    from repro.apps.mp_matmul import run_mp_matmul
    from repro.metrics.speedup import run_app

    n = 96 if quick else 160
    svm = run_app(lambda p: MatmulApp(p, n=n), nodes).time_ns
    _, ivy = run_mp_matmul(nodes, n=n)
    return {
        "workload": f"matmul n={n} (flat arrays)",
        "elements": 0,
        "touches": 1,
        "svm_ns": svm,
        "msgpass_ns": ivy.time_ns,
        "ratio": ivy.time_ns / svm,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    data = run(quick=not args.full)
    rows = [
        [
            d["workload"],
            f"{d['svm_ns'] / 1e9:.3f}s",
            f"{d['msgpass_ns'] / 1e9:.3f}s",
            f"{d['ratio']:.2f}x",
        ]
        for d in data
    ]
    print("Ablation — SVM vs message passing")
    print()
    print(ascii_table(["workload", "SVM time", "msg-pass time", "mp/svm"], rows))


if __name__ == "__main__":
    main()
