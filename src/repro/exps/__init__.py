"""Experiment drivers: one module per table/figure of the paper, plus
ablations for the design choices DESIGN.md calls out.

Every module exposes ``run(quick=...) -> data`` (used by the pytest
benchmarks) and a ``main()`` CLI that prints the paper-style rows::

    python -m repro.exps.fig4            # Figure 4: super-linear speedup
    python -m repro.exps.fig5            # Figure 5: speedups of the suite
    python -m repro.exps.fig6            # Figure 6: merge-split sort
    python -m repro.exps.table1          # Table 1: disk page transfers
    python -m repro.exps.ablation_managers
    python -m repro.exps.ablation_pagesize
    python -m repro.exps.ablation_allocator
    python -m repro.exps.ablation_loadbalance
    python -m repro.exps.ablation_msgpass
    python -m repro.exps.ablation_overlap
    python -m repro.exps.ablation_writepolicy

``--full`` selects the paper-scale workloads; the default is a quicker
configuration with the same qualitative shape.
"""
