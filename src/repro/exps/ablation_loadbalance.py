"""Ablation — passive load balancing policies.

"Experiments with many parallel application programs show that the
algorithm will not work well if the number of ready processes on each
processor is used as the only criterion for migrating processes.  A
better way is to use the number of processes (including both ready and
suspended) controlled by thresholds."

Workload: a burst of unequal compute-bound processes all born on node 0
with *system* scheduling — exactly the case the balancer exists for.
Three policies: balancing off, ready-count-only, and the paper's
thresholded total-count policy.
"""

from __future__ import annotations

import argparse
from collections.abc import Generator
from typing import Any

from repro.api.ivy import Ivy
from repro.config import ClusterConfig, MILLISECOND
from repro.metrics.report import ascii_table
from repro.sync.eventcount import EC_RECORD_BYTES

__all__ = ["run", "main", "POLICIES"]

POLICIES = ("off", "ready-count", "thresholds")


def _burst(policy: str, nodes: int, nprocs: int, quick: bool) -> dict[str, Any]:
    sched_kw = dict(
        load_balancing=policy != "off",
        ready_count_only=policy == "ready-count",
        lower_threshold=1,
        upper_threshold=2,
        null_timeout=50 * MILLISECOND,
    )
    config = ClusterConfig(nodes=nodes).with_sched(**sched_kw)
    ivy = Ivy(config)
    slice_ns = 20_000_000 if quick else 60_000_000

    def worker(ctx: Any, slices: Any, done: Any) -> Generator[Any, Any, Any]:
        # Compute in slices, with a blocking (suspended) phase every few
        # slices — the paper's point is precisely that suspended
        # processes make the ready count a misleading load signal.
        from repro.sim.process import Sleep

        for i in range(slices):
            yield ctx.compute(slice_ns)
            if i % 3 == 2:
                yield Sleep(slice_ns)  # blocked: not ready, still load
            else:
                yield ctx.yield_cpu()
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for i in range(nprocs):
            # Uneven work: between 8 and 22 slices.
            yield from ctx.spawn(worker, 8 + (i * 7) % 15, done)
        yield from ctx.ec_wait(done, nprocs)
        return True

    ivy.run(main_prog)
    migrations = sum(
        node.counters["processes_migrated_out"] for node in ivy.cluster.nodes
    )
    rejections = sum(
        node.counters["work_requests_rejected"] for node in ivy.cluster.nodes
    )
    return {
        "policy": policy,
        "time_ns": ivy.time_ns,
        "migrations": migrations,
        "rejections": rejections,
    }


def run(quick: bool = True, nodes: int = 4) -> list[dict[str, Any]]:
    nprocs = 12 if quick else 24
    return [_burst(policy, nodes, nprocs, quick) for policy in POLICIES]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    data = run(quick=not args.full)
    rows = [
        [d["policy"], f"{d['time_ns'] / 1e9:.3f}s", d["migrations"], d["rejections"]]
        for d in data
    ]
    print("Ablation — passive load balancing (uneven burst born on node 0)")
    print()
    print(ascii_table(["policy", "completion time", "migrations", "rejections"], rows))


if __name__ == "__main__":
    main()
