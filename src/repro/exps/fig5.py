"""Figure 5 — speedup curves of the benchmark suite.

Paper's claim: "parallel programs using a shared virtual memory yield
almost linear and occasionally super-linear speedups"; the well-behaved
programs (linear solver, PDE, TSP, matrix multiply) scale near-linearly
while dot-product — lots of data movement, almost no computation —
does not.
"""

from __future__ import annotations

import argparse

from repro.exps.parallel import Job, run_jobs
from repro.exps.presets import fig5_factories, fig5_procs, fig5_specs
from repro.metrics.report import ascii_table, format_speedup_table
from repro.metrics.speedup import SpeedupResult, run_app

__all__ = ["run", "profile", "main"]


def run(
    quick: bool = True,
    procs: tuple[int, ...] | None = None,
    workers: int | None = None,
) -> list[SpeedupResult]:
    """The full sweep is |apps| x |procs| independent simulations, so it
    goes through the parallel runner: job specs fan out across worker
    processes (``workers`` > 1) or run serially in-process (the
    single-core fallback) — the merged curves are identical either way."""
    specs = fig5_specs(full=not quick)
    procs = procs or fig5_procs(full=not quick)
    jobs = [
        Job(app, kwargs, nprocs=p, key=name)
        for name, (app, kwargs) in specs.items()
        for p in procs
    ]
    results = run_jobs(jobs, workers=workers)
    by_name: dict[str, SpeedupResult] = {}
    for job, res in zip(jobs, results):
        curve = by_name.setdefault(job.key, SpeedupResult(app_name=job.key))
        curve.runs.append(res)
    return list(by_name.values())


def profile(quick: bool = True, nprocs: int = 2) -> list[list[str]]:
    """Where each benchmark's simulated time goes at ``nprocs`` (one row
    per app: % of cluster CPU-time per profiler category).  This is the
    observability layer's explanation of the Figure 5 shapes: dot-product
    scales poorly because its nodes sit in fault stalls, Jacobi scales
    because its time is overwhelmingly compute."""
    from repro.obs import CATEGORIES, Observability

    rows = []
    for name, factory in fig5_factories(full=not quick).items():
        obs = Observability()
        res = run_app(factory, nprocs, obs=obs)
        per_node = obs.breakdown(nprocs, res.time_ns)
        cluster = Observability.cluster_breakdown(per_node)
        denom = res.time_ns * nprocs
        rows.append(
            [name] + [f"{100.0 * cluster[c] / denom:.1f}%" for c in CATEGORIES]
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale workloads")
    parser.add_argument(
        "--profile", action="store_true",
        help="also attribute each app's simulated time (repro.obs profiler)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sweep (default: REPRO_WORKERS or cpu count)",
    )
    args = parser.parse_args()
    results = run(quick=not args.full, workers=args.workers)
    print("Figure 5 — speedups of the benchmark suite")
    print("(every run's numerical output is checked against the sequential golden)")
    print()
    print(format_speedup_table(results))
    if args.profile:
        from repro.obs import CATEGORIES

        print()
        print(
            ascii_table(
                ["program"] + list(CATEGORIES),
                profile(quick=not args.full),
                title="simulated-time attribution at p=2 (cluster-wide %)",
            )
        )


if __name__ == "__main__":
    main()
