"""Figure 5 — speedup curves of the benchmark suite.

Paper's claim: "parallel programs using a shared virtual memory yield
almost linear and occasionally super-linear speedups"; the well-behaved
programs (linear solver, PDE, TSP, matrix multiply) scale near-linearly
while dot-product — lots of data movement, almost no computation —
does not.
"""

from __future__ import annotations

import argparse

from repro.exps.presets import fig5_factories, fig5_procs
from repro.metrics.report import format_speedup_table
from repro.metrics.speedup import SpeedupResult, measure_speedups

__all__ = ["run", "main"]


def run(quick: bool = True, procs: tuple[int, ...] | None = None) -> list[SpeedupResult]:
    factories = fig5_factories(full=not quick)
    procs = procs or fig5_procs(full=not quick)
    results = []
    for name, factory in factories.items():
        result = measure_speedups(factory, procs=procs)
        result.app_name = name
        results.append(result)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale workloads")
    args = parser.parse_args()
    results = run(quick=not args.full)
    print("Figure 5 — speedups of the benchmark suite")
    print("(every run's numerical output is checked against the sequential golden)")
    print()
    print(format_speedup_table(results))


if __name__ == "__main__":
    main()
