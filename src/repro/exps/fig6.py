"""Figure 6 — speedup of the merge-split sort.

"The curve does not look very good because even with no communication
costs, the algorithm does not yield linear speedup."  The figure
therefore carries two series: the measured speedup on the SVM and the
*algorithmic ideal* with communication free.

Ideal model (comparisons only, which dominate): on one processor the
program performs one internal sort of the whole vector, ``n log2 n``
comparisons.  On N processors each of the N processes quick-sorts its
two blocks, ``(n/N) log2 (n/N)``, and then performs ``2N-1`` merge
phases of ``2 n/(2N) = n/N`` comparisons each (at most one active pair
per process per phase).
"""

from __future__ import annotations

import argparse
import math

from repro.exps.presets import sort_factory
from repro.metrics.report import ascii_table
from repro.metrics.speedup import SpeedupResult, measure_speedups

__all__ = ["run", "ideal_speedup", "main"]


def ideal_speedup(n: int, nprocs: int) -> float:
    """Algorithmic speedup of merge-split sort with free communication."""
    if nprocs == 1:
        return 1.0
    t1 = n * math.log2(n)
    per = n / nprocs
    tn = per * math.log2(max(per, 2.0)) + (2 * nprocs - 1) * per
    return t1 / tn


def run(quick: bool = True, procs: tuple[int, ...] = (1, 2, 4, 8)) -> SpeedupResult:
    return measure_speedups(sort_factory(full=not quick), procs=procs)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    result = run(quick=not args.full)
    n = sort_factory(full=args.full)(1).nrecords
    rows = [
        [p, f"{s:.2f}", f"{ideal_speedup(n, p):.2f}"]
        for p, s in result.curve()
    ]
    print("Figure 6 — merge-split sort speedup (measured vs. no-communication ideal)")
    print()
    print(ascii_table(["processors", "measured", "ideal (no comm)"], rows))


if __name__ == "__main__":
    main()
