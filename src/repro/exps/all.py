"""Run the complete experiment battery and write a consolidated report.

::

    python -m repro.exps.all [--full] [--out results/report.txt]

Runs every figure, table and ablation in sequence, echoes each one's
paper-style output, and (optionally) tees everything into a report file
— the file committed as ``results/full_experiments.txt`` was produced
this way with ``--full``.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
import time

from repro.exps import (
    ablation_allocator,
    ablation_loadbalance,
    ablation_managers,
    ablation_msgpass,
    ablation_overlap,
    ablation_pagesize,
    ablation_writepolicy,
    fig4,
    fig5,
    fig6,
    table1,
)

EXPERIMENTS = [
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("table1", table1),
    ("ablation_managers", ablation_managers),
    ("ablation_pagesize", ablation_pagesize),
    ("ablation_allocator", ablation_allocator),
    ("ablation_loadbalance", ablation_loadbalance),
    ("ablation_msgpass", ablation_msgpass),
    ("ablation_overlap", ablation_overlap),
    ("ablation_writepolicy", ablation_writepolicy),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale workloads")
    parser.add_argument("--out", default=None, help="also write the report here")
    args = parser.parse_args()

    chunks: list[str] = []
    saved_argv = sys.argv
    for name, module in EXPERIMENTS:
        started = time.time()
        buffer = io.StringIO()
        sys.argv = [name] + (["--full"] if args.full else [])
        try:
            with contextlib.redirect_stdout(buffer):
                module.main()
        finally:
            sys.argv = saved_argv
        body = buffer.getvalue().rstrip()
        chunk = f"=== {name} ===\n{body}\n"
        chunks.append(chunk)
        print(chunk)
        print(f"[{name}: {time.time() - started:.1f}s wall]\n")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(chunks))
        print(f"report written to {args.out}")


if __name__ == "__main__":
    main()
