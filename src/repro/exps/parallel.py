"""Parallel experiment runner — fan independent simulations across processes.

Every experiment in this repo is a *batch of independent simulations*
(one per app × processor-count × config point).  Each simulation is
single-threaded and deterministic, so the batch is embarrassingly
parallel: the only thing parallelism may never change is the *results*.
This module guarantees that by construction:

- a :class:`Job` is a **picklable spec** (app name + constructor kwargs
  + cluster config), not a closure — the worker process rebuilds the app
  factory from the registry, so parent and worker run byte-identical
  simulations;
- results are **merged by job index**, not completion order: the output
  of :func:`run_jobs` is position-for-position what a serial loop would
  produce, regardless of which worker finished first;
- with one worker (or one job) the pool is skipped entirely and jobs run
  in-process — the serial fallback for single-core machines, and the
  reason ``workers=None`` is always safe to pass.

Simulated clocks are unaffected — parallelism here buys *wall-clock*
time on multi-core machines running sweeps (Figure 5 is |apps| × |procs|
independent runs), never different numbers.

::

    jobs = [Job("jacobi", {"n": 256, "iters": 12}, nprocs=p) for p in (1, 2, 4, 8)]
    results = run_jobs(jobs, workers=4)   # list[RunResult], in job order
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.matmul import MatmulApp
from repro.apps.pde3d import Pde3dApp
from repro.apps.sort import MergeSplitSortApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig
from repro.metrics.speedup import RunResult, SpeedupResult, run_app

__all__ = [
    "APP_REGISTRY",
    "Job",
    "register_app",
    "resolve_workers",
    "run_jobs",
    "measure_speedups_parallel",
]

#: App name -> constructor ``(nprocs, **kwargs)``.  The registry is what
#: makes jobs picklable: a spec ships the *name*, the worker looks the
#: class up in its own interpreter.
APP_REGISTRY: dict[str, Callable[..., Any]] = {
    "dotprod": DotProductApp,
    "jacobi": JacobiApp,
    "matmul": MatmulApp,
    "pde3d": Pde3dApp,
    "sort": MergeSplitSortApp,
    "tsp": TspApp,
}


def register_app(name: str, ctor: Callable[..., Any]) -> None:
    """Register an app constructor for job specs (tests, extensions).

    The constructor must be importable in a fresh interpreter (a
    module-level class or function, not a lambda) or the spec will only
    work with the serial fallback.
    """
    if name in APP_REGISTRY:
        raise ValueError(f"app {name!r} already registered")
    APP_REGISTRY[name] = ctor


@dataclass(frozen=True)
class Job:
    """One independent simulation, as a picklable spec.

    ``app`` names an :data:`APP_REGISTRY` entry; ``app_args`` are the
    constructor kwargs *besides* ``nprocs`` (which the speedup harness
    injects).  ``key`` is an opaque caller label carried through to the
    result merge (e.g. ``("dot-product", 4)`` in a Figure 5 sweep).
    """

    app: str
    app_args: dict[str, Any] = field(default_factory=dict)
    nprocs: int = 1
    config: ClusterConfig | None = None
    check: bool = True
    key: Any = None

    def factory(self) -> Callable[[int], Any]:
        """The ``nprocs -> app`` factory the speedup harness expects."""
        ctor = APP_REGISTRY.get(self.app)
        if ctor is None:
            known = ", ".join(sorted(APP_REGISTRY))
            raise KeyError(f"unknown app {self.app!r} (registered: {known})")
        args = self.app_args
        return lambda p: ctor(p, **args)


def _execute(job: Job) -> RunResult:
    """Run one job (worker-process entry point; must stay module-level
    so the pool can pickle it by reference)."""
    return run_app(job.factory(), job.nprocs, config=job.config, check=job.check)


def resolve_workers(workers: int | None, njobs: int) -> int:
    """Effective worker count: explicit > ``REPRO_WORKERS`` > cpu count,
    never more than there are jobs."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(workers, njobs))


def run_jobs(jobs: Sequence[Job], workers: int | None = None) -> list[RunResult]:
    """Run every job; return results **in job order**.

    With an effective worker count of 1 (single-core machine, one job,
    or ``workers=1``) this is a plain serial loop in the current
    process — no pool, no pickling, bit-identical to calling
    :func:`repro.metrics.speedup.run_app` yourself.
    """
    jobs = list(jobs)
    nworkers = resolve_workers(workers, len(jobs))
    if nworkers <= 1:
        return [_execute(job) for job in jobs]

    import multiprocessing

    # Fork keeps the warm interpreter (cheap on Linux); spawn is the
    # portable fallback and works because Job specs are picklable.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    ctx = multiprocessing.get_context(method)
    with ctx.Pool(processes=nworkers) as pool:
        # Pool.map returns results positionally: completion order cannot
        # leak into the merge.
        return pool.map(_execute, jobs)


def measure_speedups_parallel(
    app: str,
    app_args: dict[str, Any] | None = None,
    procs: Sequence[int] = (1, 2, 4, 8),
    config: ClusterConfig | None = None,
    check: bool = True,
    workers: int | None = None,
) -> SpeedupResult:
    """Parallel drop-in for :func:`repro.metrics.speedup.measure_speedups`:
    the per-``p`` runs of one speedup curve are independent simulations."""
    args = dict(app_args or {})
    jobs = [
        Job(app, args, nprocs=p, config=config, check=check, key=p) for p in procs
    ]
    results = run_jobs(jobs, workers=workers)
    name = jobs[0].factory()(1).name
    out = SpeedupResult(app_name=name)
    out.runs.extend(results)
    return out
