"""Table 1 — disk page transfers of the first six 3-D PDE iterations.

Paper's numbers (50^3 problem on Apollos)::

    1 processor :  699  2264  1702  1502  1586  1604   (steady thrash)
    2 processors: 1452   928   781    91    54    14   (decays to ~0)

We reproduce the *shape*: one processor sweeps a working set larger
than its memory every iteration and pays disk transfers forever; with
two processors the pages spread across the combined memories during the
first iterations and the disk traffic dies out.
"""

from __future__ import annotations

import argparse

from repro.api.ivy import Ivy
from repro.exps.presets import pde_capacity
from repro.metrics.collect import EpochLog
from repro.metrics.report import ascii_table

__all__ = ["run", "main"]


def run(quick: bool = True, procs: tuple[int, ...] = (1, 2)) -> dict[int, list[int]]:
    """Per-iteration total disk transfers for each processor count."""
    factory, config = pde_capacity(full=not quick)
    out: dict[int, list[int]] = {}
    for p in procs:
        ivy = Ivy(config.replace(nodes=p))
        log = EpochLog([node.counters for node in ivy.cluster.nodes])
        app = factory(p)
        app.epoch_log = log
        result = ivy.run(app.main)
        app.check(result)
        reads = log.series("disk_reads")
        writes = log.series("disk_writes")
        out[p] = [r + w for (_, r), (_, w) in zip(reads, writes)][: app.iters]
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    data = run(quick=not args.full)
    iters = max(len(v) for v in data.values())
    headers = ["configuration"] + [f"iter {i + 1}" for i in range(iters)]
    rows = [
        [f"{p} processor{'s' if p > 1 else ''}"] + series
        for p, series in sorted(data.items())
    ]
    print("Table 1 — disk page transfers of each 3-D PDE iteration")
    print()
    print(ascii_table(headers, rows))


if __name__ == "__main__":
    main()
