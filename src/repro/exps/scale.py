"""Scale-out benchmark: ring vs switched fabric at 64–256 nodes (``BENCH_scale.json``).

The pluggable-fabric question in one artifact: how much simulated
throughput does a switched point-to-point interconnect buy over the
paper's shared token ring as the cluster grows past the ring's design
point?  Two workload classes per (node count, backend) point, both from
:mod:`repro.exps.presets`:

- **fig5-class** (``scale_fig5``): communication-bound dot product,
  offered load growing linearly with nodes;
- **fig4-class** (``scale_fig4``): capacity-bound 3-D PDE whose data
  set exceeds any single node's memory.

The headline metric is **events per simulated second** —
``events_executed / (time_ns / 1e9)``.  Both numerator and denominator
are exact products of the deterministic simulation, so the metric is
bit-reproducible across hosts: on the serialising ring, simulated time
balloons with queueing delay while the event count barely moves, so the
ring's events/s collapses as nodes grow; the switched fabric's
concurrent links keep it up.  ``--check`` therefore compares *exactly*
(no tolerance) and additionally asserts the crossover claim: switched
throughput beats ring at every measured node count >= 64.

::

    python -m repro.exps.scale --out BENCH_scale.json
    python -m repro.exps.scale --nodes 64 --check BENCH_scale.json   # CI smoke

    # Windowed telemetry for selected points: per-point timeline JSONL +
    # OpenMetrics exports plus an SLO report with the saturation onset.
    python -m repro.exps.scale --nodes 64 --classes fig5 \
        --backends switched --timeline out_dir --sample-every 64

Runs are driven through :func:`repro.exps.parallel.run_jobs` — each
point is an independent deterministic simulation, so the sweep
parallelises across cores where available and falls back to a serial
loop on single-core machines, with identical numbers either way.
``--timeline`` mode instead runs its points serially in-process (the
observability handle holds the windowed series and cannot cross a
process boundary); the simulated numbers are identical either way
because observation is pure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.exps.parallel import Job, run_jobs
from repro.exps.presets import SCALE_NODE_COUNTS, scale_fig4, scale_fig5
from repro.metrics.speedup import RunResult

__all__ = [
    "scale_jobs", "run_scale", "run_dispatch", "run_timeline", "check_scale", "main",
]

BACKENDS = ("ring", "switched")

CLASSES = {"fig5": scale_fig5, "fig4": scale_fig4}

#: Default SLO specs for ``--timeline`` (tuned to the fig5-class knee:
#: the scatter phase pushes read-fault service past 4 ms and the hottest
#: port past half occupancy).
DEFAULT_SLOS = ("p99(fault.read_ns) < 4ms", "link_utilisation < 50%")


def scale_jobs(
    nodes_list: Sequence[int] = SCALE_NODE_COUNTS,
    classes: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
) -> list[Job]:
    """One :class:`Job` per workload class x node count x backend."""
    jobs: list[Job] = []
    for klass, preset in CLASSES.items():
        if classes is not None and klass not in classes:
            continue
        for nodes in nodes_list:
            for backend in BACKENDS:
                if backends is not None and backend not in backends:
                    continue
                app, app_args, config = preset(nodes, backend)
                jobs.append(
                    Job(
                        app,
                        app_args,
                        nprocs=nodes,
                        config=config,
                        check=True,
                        key=f"{klass}/n{nodes}/{backend}",
                    )
                )
    return jobs


def _events_per_sim_sec(result: RunResult) -> float:
    return result.events_executed / (result.time_ns / 1e9)


def run_scale(
    nodes_list: Sequence[int] = SCALE_NODE_COUNTS,
    workers: int | None = None,
    classes: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
) -> dict[str, Any]:
    jobs = scale_jobs(nodes_list, classes=classes, backends=backends)
    results = run_jobs(jobs, workers=workers)
    runs: dict[str, Any] = {}
    for job, result in zip(jobs, results):
        runs[str(job.key)] = {
            "nodes": result.nprocs,
            "fabric": result.fabric,
            "time_ns": result.time_ns,
            "events": result.events_executed,
            "events_per_sim_sec": round(_events_per_sim_sec(result), 1),
            "medium": {
                k: result.ring_stats[k]
                for k in ("messages", "broadcasts", "bytes_sent", "busy_ns")
            },
        }
    return {
        "schema": "repro.scale/1",
        "measurement": (
            "events per simulated second (deterministic: both event count "
            "and simulated time are exact), per workload class x node "
            "count x fabric backend"
        ),
        "runs": runs,
    }


def run_dispatch(
    nodes_list: Sequence[int] = SCALE_NODE_COUNTS, repeats: int = 3
) -> dict[str, Any]:
    """Kernel-dispatch flatness: wall-clock events/s per node count.

    The question the calendar queue exists to answer: does the cost of
    dispatching one event stay flat as the pending-timer population grows
    with the cluster (every in-flight request parks a 500 ms retransmit
    timer in the queue)?  One fig5-class switched run per (node count,
    kernel), interleaved heap/calendar within each repeat, best-of-N.
    Wall numbers are hardware-bound — this section is a trajectory
    record like ``BENCH_perf.json``, *not* part of ``--check``'s exact
    comparison (which only walks ``runs``).
    """
    import time

    from repro.exps.parallel import APP_REGISTRY
    from repro.metrics.speedup import run_app

    points: dict[str, Any] = {}
    for nodes in nodes_list:
        app, app_args, config = scale_fig5(nodes, "switched")
        ctor = APP_REGISTRY[app]
        best = {"heap": float("inf"), "calendar": float("inf")}
        events = {"heap": 0, "calendar": 0}
        for _ in range(repeats):
            for kernel in ("heap", "calendar"):
                cfg = config.replace(kernel=kernel)
                started = time.perf_counter()
                result = run_app(
                    lambda p: ctor(p, **app_args), nodes, config=cfg, check=True
                )
                best[kernel] = min(best[kernel], time.perf_counter() - started)
                events[kernel] = result.events_executed
        if events["heap"] != events["calendar"]:
            raise AssertionError(
                f"n{nodes}: kernels disagree on event count "
                f"(heap {events['heap']} != calendar {events['calendar']})"
            )
        points[f"n{nodes}"] = {
            "nodes": nodes,
            "events": events["calendar"],
            "heap_events_per_wall_sec": round(events["heap"] / best["heap"]),
            "calendar_events_per_wall_sec": round(
                events["calendar"] / best["calendar"]
            ),
            "speedup": round(best["heap"] / best["calendar"], 4),
        }
    return {
        "measurement": (
            "fig5-class switched run per node count, interleaved "
            "heap/calendar best-of-N wall clock; 'events' is exact, "
            "'*_events_per_wall_sec' is hardware-bound (trajectory record)"
        ),
        "repeats": repeats,
        "points": points,
    }


def run_timeline(
    out_dir: str,
    nodes_list: Sequence[int],
    classes: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
    window_ms: float = 20.0,
    sample_every: int = 64,
    slos: Sequence[str] = DEFAULT_SLOS,
) -> int:
    """Serial in-process observed runs over the selected scale points.

    Writes ``<klass>_n<nodes>_<backend>.jsonl`` (timeline records) and
    ``.om`` (OpenMetrics) into ``out_dir`` and prints each point's SLO
    report.  Returns the number of points run.
    """
    import os

    from repro.config import MILLISECOND
    from repro.exps.parallel import APP_REGISTRY
    from repro.metrics.report import format_busiest_links, format_slo_report
    from repro.metrics.speedup import run_app
    from repro.obs import Observability
    from repro.obs.export import openmetrics, save_timeline_jsonl
    from repro.obs.slo import evaluate, parse_slo

    specs = [parse_slo(text) for text in slos]
    os.makedirs(out_dir, exist_ok=True)
    npoints = 0
    for klass, preset in CLASSES.items():
        if classes is not None and klass not in classes:
            continue
        for nodes in nodes_list:
            for backend in BACKENDS:
                if backends is not None and backend not in backends:
                    continue
                app, app_args, config = preset(nodes, backend)
                ctor = APP_REGISTRY[app]
                obs = Observability(
                    timeline_window_ns=int(window_ms * MILLISECOND),
                    sample_every=sample_every,
                    hist_backend="logbucket",
                )
                result = run_app(
                    lambda p: ctor(p, **app_args),
                    nodes, config=config, check=True, obs=obs,
                )
                tl = obs.timeline
                assert tl is not None
                stem = os.path.join(out_dir, f"{klass}_n{nodes}_{backend}")
                nrec = save_timeline_jsonl(
                    f"{stem}.jsonl", obs, nodes, result.time_ns
                )
                with open(f"{stem}.om", "w", encoding="utf-8") as fh:
                    fh.write(openmetrics(obs, nodes, result.time_ns))
                print(
                    f"{klass}/n{nodes}/{backend}: "
                    f"{result.time_ns / 1e9:.2f} s simulated, "
                    f"{tl.nwindows(result.time_ns)} windows, "
                    f"{len(obs.spans)} spans recorded "
                    f"({obs.spans.dropped} sampled out), "
                    f"{nrec} records -> {stem}.jsonl"
                )
                print(format_busiest_links(tl.busiest_links(result.time_ns)))
                print(format_slo_report(evaluate(tl, result.time_ns, specs)))
                print()
                npoints += 1
    return npoints


def check_scale(doc: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Compare a fresh (possibly partial) sweep against the committed file.

    Every measured run must exist in the baseline with *identical*
    ``events`` and ``time_ns`` — these are deterministic, so any drift
    is a behaviour change and the artifact must be regenerated
    deliberately.  On top of that the sweep's claim is re-asserted from
    the fresh numbers: at every measured node count, the switched
    fabric's events/s must beat the ring's for both workload classes.
    """
    problems: list[str] = []
    for name, run in doc["runs"].items():
        base = baseline["runs"].get(name)
        if base is None:
            problems.append(f"{name}: not in the committed baseline")
            continue
        for field in ("events", "time_ns"):
            if run[field] != base[field]:
                problems.append(
                    f"{name}: {field} {run[field]} != baseline {base[field]} "
                    "(behaviour drift — regenerate BENCH_scale.json deliberately)"
                )
    pairs: dict[tuple[str, int], dict[str, float]] = {}
    for name, run in doc["runs"].items():
        klass = name.split("/", 1)[0]
        pairs.setdefault((klass, run["nodes"]), {})[run["fabric"]] = run[
            "events_per_sim_sec"
        ]
    for (klass, nodes), by_fabric in sorted(pairs.items()):
        if nodes < 64 or len(by_fabric) < 2:
            continue
        if by_fabric["switched"] <= by_fabric["ring"]:
            problems.append(
                f"{klass}/n{nodes}: switched {by_fabric['switched']} ev/s "
                f"does not beat ring {by_fabric['ring']} ev/s"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exps.scale", description=__doc__
    )
    parser.add_argument(
        "--nodes", type=int, nargs="+", default=list(SCALE_NODE_COUNTS),
        help="node counts to sweep (default: 64 128 256)",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a committed BENCH_scale.json; exit 1 on drift "
        "or if switched fails to beat ring at any measured count >= 64",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel runner processes (default: cpu count)",
    )
    parser.add_argument(
        "--classes", nargs="+", choices=sorted(CLASSES), default=None,
        help="restrict to these workload classes (default: all)",
    )
    parser.add_argument(
        "--backends", nargs="+", choices=BACKENDS, default=None,
        help="restrict to these fabric backends (default: all)",
    )
    parser.add_argument(
        "--dispatch", action="store_true",
        help="also measure the kernel-dispatch flatness curve (wall-clock "
        "events/s per node count, heap vs calendar kernel) and write it "
        "as the 'dispatch' section of --out",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-clock repeats per --dispatch point (default 3)",
    )
    parser.add_argument(
        "--timeline", metavar="DIR",
        help="windowed-telemetry mode: run the selected points serially "
        "with a timeline, write JSONL + OpenMetrics exports into DIR, "
        "print SLO reports (incompatible with --check/--out)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=20.0,
        help="timeline window width in simulated ms (--timeline only)",
    )
    parser.add_argument(
        "--sample-every", type=int, default=64,
        help="span sampling rate for --timeline (pure hash of span id)",
    )
    parser.add_argument(
        "--slo", action="append", default=None,
        help="SLO spec for --timeline, repeatable (default: "
        + "; ".join(DEFAULT_SLOS) + ")",
    )
    args = parser.parse_args(argv)

    if args.timeline:
        if args.check or args.out:
            parser.error("--timeline is incompatible with --check/--out")
        run_timeline(
            args.timeline, args.nodes,
            classes=args.classes, backends=args.backends,
            window_ms=args.window_ms, sample_every=args.sample_every,
            slos=args.slo if args.slo is not None else DEFAULT_SLOS,
        )
        return 0

    doc = run_scale(
        args.nodes, workers=args.workers,
        classes=args.classes, backends=args.backends,
    )
    for name, run in doc["runs"].items():
        print(
            f"{name}: {run['time_ns'] / 1e9:.2f} s simulated, "
            f"{run['events']} events, {run['events_per_sim_sec']} ev/sim-s"
        )
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = check_scale(doc, baseline)
        for problem in problems:
            print(f"SCALE CHECK FAILED: {problem}")
        if problems:
            return 1
        print(f"scale check passed against {args.check}")
    if args.dispatch:
        dispatch = run_dispatch(args.nodes, repeats=args.repeats)
        doc["dispatch"] = dispatch
        for name, point in dispatch["points"].items():
            print(
                f"dispatch {name}: heap {point['heap_events_per_wall_sec']} ev/s, "
                f"calendar {point['calendar_events_per_wall_sec']} ev/s "
                f"= {point['speedup']:.3f}x"
            )
    elif args.out:
        # Keep a previously measured dispatch section when rewriting the
        # exact part of the artifact without --dispatch.
        try:
            with open(args.out, encoding="utf-8") as fh:
                prior = json.load(fh).get("dispatch")
            if prior is not None:
                doc["dispatch"] = prior
        except (OSError, ValueError):
            pass
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
