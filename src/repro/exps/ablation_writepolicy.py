"""Ablation — write-invalidate (IVY) vs write-update coherence.

"The memory coherence strategies implemented [in] IVY use [the]
invalidation approach."  The other classic design point pushes fresh
page contents to the copy set on every write.  Two workloads bracket
the trade-off:

- **polling consumers**: one writer publishes versions of a datum,
  every other node polls the datum itself.  Invalidation makes every
  reader re-fault per version; update delivers the bytes before they
  ask, so polls stay local.
- **eventcount consumers**: the same handshake built on eventcounts —
  and update *loses*, because synchronisation pages are migratory
  (ownership bounces on every Advance/Wait) and the update policy keeps
  refreshing every past owner's demoted read copy.  This migratory-page
  pathology is the classic reason DSM systems, IVY included, chose
  invalidation as the default.
- **write dominated**: readers look once, then the writer keeps
  writing.  Update pays a multicast per write to refresh copies nobody
  reads again; invalidation pays one invalidation and writes for free.
"""

from __future__ import annotations

import argparse
from collections.abc import Generator
from typing import Any

from repro.api.ivy import Ivy
from repro.config import ClusterConfig
from repro.metrics.report import ascii_table
from repro.sync.eventcount import EC_RECORD_BYTES

__all__ = ["run", "main"]


def _polling_consumers(policy: str, nodes: int, versions: int) -> dict[str, Any]:
    """Readers poll the shared datum itself (no sync pages involved).

    This isolates the data page's behaviour: under invalidation every
    new version costs each reader a fresh fault; under update the
    reader's polls stay local and the push delivers the new version.
    """
    from repro.sim.process import Sleep

    config = ClusterConfig(nodes=nodes).with_svm(write_policy=policy)
    ivy = Ivy(config)

    def reader(ctx: Any, data_addr: Any, done: Any) -> Generator[Any, Any, Any]:
        seen = 0
        while seen < versions:
            value = yield from ctx.read_i64(data_addr)
            if value > seen:
                seen = value
            else:
                yield Sleep(300_000)  # 0.3 ms poll backoff
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        data = yield from ctx.malloc(8)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        yield from ctx.write_i64(data, 0)
        for k in range(1, nodes):
            yield from ctx.spawn(reader, data, done, on=k)
        for version in range(1, versions + 1):
            yield ctx.compute(2_000_000)  # produce the next version
            yield from ctx.write_i64(data, version)
        yield from ctx.ec_wait(done, nodes - 1)
        return True

    ivy.run(main_prog)
    total = ivy.cluster.total_counters()
    return {
        "time_ns": ivy.time_ns,
        "read_faults": total["read_faults"],
        "msgs": ivy.cluster.ring.stats.messages,
    }


def _producer_consumer(policy: str, nodes: int, versions: int) -> dict[str, Any]:
    config = ClusterConfig(nodes=nodes).with_svm(write_policy=policy)
    ivy = Ivy(config)

    def reader(ctx: Any, data_addr: Any, ready_ec: Any, ack_ec: Any) -> Generator[Any, Any, Any]:
        for version in range(1, versions + 1):
            yield from ctx.ec_wait(ready_ec, version)
            value = yield from ctx.read_i64(data_addr)
            assert value == version, (value, version)
            yield from ctx.ec_advance(ack_ec)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        data = yield from ctx.malloc(8)
        ready = yield from ctx.malloc(EC_RECORD_BYTES)
        ack = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(ready)
        yield from ctx.ec_init(ack)
        for k in range(1, nodes):
            yield from ctx.spawn(reader, data, ready, ack, on=k)
        for version in range(1, versions + 1):
            yield from ctx.write_i64(data, version)
            yield from ctx.ec_advance(ready)
            yield from ctx.ec_wait(ack, version * (nodes - 1))
        return True

    ivy.run(main_prog)
    total = ivy.cluster.total_counters()
    return {
        "time_ns": ivy.time_ns,
        "read_faults": total["read_faults"],
        "msgs": ivy.cluster.ring.stats.messages,
    }


def _write_dominated(policy: str, nodes: int, writes: int) -> dict[str, Any]:
    config = ClusterConfig(nodes=nodes).with_svm(write_policy=policy)
    ivy = Ivy(config)

    def reader(ctx: Any, data_addr: Any, done: Any) -> Generator[Any, Any, Any]:
        yield from ctx.read_i64(data_addr)  # one look, then never again
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        data = yield from ctx.malloc(8)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        yield from ctx.write_i64(data, 0)
        for k in range(1, nodes):
            yield from ctx.spawn(reader, data, done, on=k)
        yield from ctx.ec_wait(done, nodes - 1)
        for i in range(writes):
            yield from ctx.write_i64(data, i)
        return True

    ivy.run(main_prog)
    total = ivy.cluster.total_counters()
    return {
        "time_ns": ivy.time_ns,
        "updates": total["updates_sent"],
        "msgs": ivy.cluster.ring.stats.messages,
    }


def run(quick: bool = True, nodes: int = 4) -> dict[str, Any]:
    versions = 12 if quick else 40
    writes = 40 if quick else 150
    return {
        "polling consumers": {
            policy: _polling_consumers(policy, nodes, versions)
            for policy in ("invalidate", "update")
        },
        "eventcount consumers": {
            policy: _producer_consumer(policy, nodes, versions)
            for policy in ("invalidate", "update")
        },
        "write dominated": {
            policy: _write_dominated(policy, nodes, writes)
            for policy in ("invalidate", "update")
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    data = run(quick=not args.full)
    rows = []
    for workload, per_policy in data.items():
        for policy, stats in per_policy.items():
            rows.append(
                [workload, policy, f"{stats['time_ns'] / 1e9:.3f}s", stats["msgs"]]
            )
    print("Ablation — write-invalidate (IVY) vs write-update")
    print()
    print(ascii_table(["workload", "policy", "exec time", "ring msgs"], rows))


if __name__ == "__main__":
    main()
