"""Figure 4 — super-linear speedup of the 3-D PDE solver.

"The data structure for the problem is greater than the size of
physical memory on a single processor, so when the program is run on
one processor there is a large amount of paging between the physical
memory and disk. ... the shared virtual memory can effectively exploit
not only the available processors but also the combined physical
memories."
"""

from __future__ import annotations

import argparse

from repro.exps.presets import pde_capacity
from repro.metrics.report import ascii_table
from repro.metrics.speedup import SpeedupResult, measure_speedups, run_app

__all__ = ["run", "profile", "main"]


def run(quick: bool = True, procs: tuple[int, ...] = (1, 2, 4, 8)) -> SpeedupResult:
    factory, config = pde_capacity(full=not quick)
    return measure_speedups(factory, procs=procs, config=config)


def profile(quick: bool = True, procs: tuple[int, ...] = (1, 2, 4)) -> list[list[str]]:
    """Per-processor-count cluster time attribution for the capacity-bound
    PDE.  This is the profiler's explanation of the super-linear region:
    at p=1 the node spends nearly all of its time on the disk; as the
    combined memories absorb the working set the disk share collapses and
    compute takes over — speedup greater than p falls out of removing the
    disk component, not out of extra CPUs."""
    from repro.obs import CATEGORIES, Observability

    factory, config = pde_capacity(full=not quick)
    rows = []
    for p in procs:
        obs = Observability()
        res = run_app(factory, p, config=config, obs=obs)
        cluster = Observability.cluster_breakdown(obs.breakdown(p, res.time_ns))
        denom = res.time_ns * p
        rows.append(
            [p] + [f"{100.0 * cluster[c] / denom:.1f}%" for c in CATEGORIES]
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute each run's simulated time (repro.obs profiler)",
    )
    args = parser.parse_args()
    result = run(quick=not args.full)
    rows = []
    for p, s in result.curve():
        run_ = next(r for r in result.runs if r.nprocs == p)
        disk = run_.counters["disk_reads"] + run_.counters["disk_writes"]
        rows.append([p, f"{s:.2f}", "yes" if s > p else "no", disk])
    print("Figure 4 — 3-D PDE speedup when the data set exceeds one node's memory")
    print()
    print(
        ascii_table(
            ["processors", "speedup", "super-linear?", "disk transfers"], rows
        )
    )
    if args.profile:
        from repro.obs import CATEGORIES

        print()
        print(
            ascii_table(
                ["processors"] + list(CATEGORIES),
                profile(quick=not args.full),
                title="cluster time attribution (the super-linear mechanism)",
            )
        )


if __name__ == "__main__":
    main()
