"""Figure 4 — super-linear speedup of the 3-D PDE solver.

"The data structure for the problem is greater than the size of
physical memory on a single processor, so when the program is run on
one processor there is a large amount of paging between the physical
memory and disk. ... the shared virtual memory can effectively exploit
not only the available processors but also the combined physical
memories."
"""

from __future__ import annotations

import argparse

from repro.exps.presets import pde_capacity
from repro.metrics.report import ascii_table
from repro.metrics.speedup import SpeedupResult, measure_speedups

__all__ = ["run", "main"]


def run(quick: bool = True, procs: tuple[int, ...] = (1, 2, 4, 8)) -> SpeedupResult:
    factory, config = pde_capacity(full=not quick)
    return measure_speedups(factory, procs=procs, config=config)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    result = run(quick=not args.full)
    rows = []
    for p, s in result.curve():
        run_ = next(r for r in result.runs if r.nprocs == p)
        disk = run_.counters["disk_reads"] + run_.counters["disk_writes"]
        rows.append([p, f"{s:.2f}", "yes" if s > p else "no", disk])
    print("Figure 4 — 3-D PDE speedup when the data set exceeds one node's memory")
    print()
    print(
        ascii_table(
            ["processors", "speedup", "super-linear?", "disk transfers"], rows
        )
    )


if __name__ == "__main__":
    main()
