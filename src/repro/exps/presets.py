"""Workload presets shared by the experiment drivers and benchmarks.

"Quick" presets keep the qualitative shapes (who wins, crossovers,
super-linearity) at a fraction of the simulation cost; "full" presets
are the calibrated headline configurations recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.pde3d import Pde3dApp
from repro.apps.sort import MergeSplitSortApp
from repro.config import ClusterConfig

__all__ = [
    "fig5_specs",
    "fig5_factories",
    "fig5_procs",
    "pde_capacity",
    "sort_factory",
    "PAGE_BYTES",
]

PAGE_BYTES = 1024

#: Figure 5 workloads as **picklable specs** — ``(registry app name,
#: constructor kwargs)`` per program, consumable by the parallel runner
#: (`repro.exps.parallel.Job`).  The factory form below is derived from
#: these, so the two views cannot drift.
_FIG5_FULL: dict[str, tuple[str, dict[str, int]]] = {
    "linear eqn (jacobi)": ("jacobi", {"n": 512, "iters": 24}),
    "3-D PDE": ("pde3d", {"m": 48, "iters": 20}),
    "TSP": ("tsp", {"ncities": 13, "seed": 33}),
    "matrix multiply": ("matmul", {"n": 224}),
    "dot-product": ("dotprod", {"n": 65536}),
    "merge-split sort": ("sort", {"nrecords": 8192}),
}
_FIG5_QUICK: dict[str, tuple[str, dict[str, int]]] = {
    "linear eqn (jacobi)": ("jacobi", {"n": 256, "iters": 12}),
    "3-D PDE": ("pde3d", {"m": 20, "iters": 12}),
    "TSP": ("tsp", {"ncities": 12, "seed": 33}),
    "matrix multiply": ("matmul", {"n": 160}),
    "dot-product": ("dotprod", {"n": 32768}),
    "merge-split sort": ("sort", {"nrecords": 4096}),
}

def fig5_specs(full: bool = False) -> dict[str, tuple[str, dict[str, int]]]:
    """The Figure 5 suite as parallel-runner job specs."""
    return dict(_FIG5_FULL if full else _FIG5_QUICK)


def fig5_factories(full: bool = False) -> dict[str, Callable[[int], object]]:
    """App factories for the Figure 5 suite (derived from the specs)."""
    from repro.exps.parallel import APP_REGISTRY

    def make(app: str, kwargs: dict[str, int]) -> Callable[[int], object]:
        ctor = APP_REGISTRY[app]
        return lambda p: ctor(p, **kwargs)

    return {name: make(app, kw) for name, (app, kw) in fig5_specs(full).items()}


def fig5_procs(full: bool = False) -> tuple[int, ...]:
    return (1, 2, 3, 4, 5, 6, 7, 8) if full else (1, 2, 4, 8)


def pde_capacity(full: bool = False) -> tuple[Callable[[int], Pde3dApp], ClusterConfig]:
    """The Figure 4 / Table 1 configuration: the PDE data set exceeds one
    node's physical memory (frames = 1.8 of the three-vector working set
    per vector), with the Aegis-style randomised replacement."""
    m = 24 if full else 20
    iters = 6
    vector_pages = (m**3 * 8 + PAGE_BYTES - 1) // PAGE_BYTES
    config = ClusterConfig().with_memory(
        frames=int(1.8 * vector_pages), replacement="random"
    )
    return (lambda p: Pde3dApp(p, m=m, iters=iters)), config


def sort_factory(full: bool = False) -> Callable[[int], MergeSplitSortApp]:
    nrecords = 8192 if full else 4096
    return lambda p: MergeSplitSortApp(p, nrecords=nrecords)
