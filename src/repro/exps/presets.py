"""Workload presets shared by the experiment drivers and benchmarks.

"Quick" presets keep the qualitative shapes (who wins, crossovers,
super-linearity) at a fraction of the simulation cost; "full" presets
are the calibrated headline configurations recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.pde3d import Pde3dApp
from repro.apps.sort import MergeSplitSortApp
from repro.config import ClusterConfig

__all__ = [
    "fig5_specs",
    "fig5_factories",
    "fig5_procs",
    "pde_capacity",
    "sort_factory",
    "scale_fig5",
    "scale_fig4",
    "PAGE_BYTES",
    "SCALE_PAGE_BYTES",
    "SCALE_NODE_COUNTS",
]

PAGE_BYTES = 1024

#: Page size for the 64–256-node scale-out presets.  Two reasons it is
#: larger than the paper's 1 KB: (a) the eventcount record — and thus a
#: barrier's waiter table — must fit in one page (the paper's
#: single-page simplification), which caps barriers at 41 waiters on
#: 1 KB pages; 8 KB holds ~340, enough for a 256-node barrier.  (b) A
#: hundred-node machine moving megabytes wants fewer, larger transfers.
SCALE_PAGE_BYTES = 8192

#: The scale-out sweep's node counts (powers of two past the ring's
#: comfort zone).
SCALE_NODE_COUNTS = (64, 128, 256)

#: Figure 5 workloads as **picklable specs** — ``(registry app name,
#: constructor kwargs)`` per program, consumable by the parallel runner
#: (`repro.exps.parallel.Job`).  The factory form below is derived from
#: these, so the two views cannot drift.
_FIG5_FULL: dict[str, tuple[str, dict[str, int]]] = {
    "linear eqn (jacobi)": ("jacobi", {"n": 512, "iters": 24}),
    "3-D PDE": ("pde3d", {"m": 48, "iters": 20}),
    "TSP": ("tsp", {"ncities": 13, "seed": 33}),
    "matrix multiply": ("matmul", {"n": 224}),
    "dot-product": ("dotprod", {"n": 65536}),
    "merge-split sort": ("sort", {"nrecords": 8192}),
}
_FIG5_QUICK: dict[str, tuple[str, dict[str, int]]] = {
    "linear eqn (jacobi)": ("jacobi", {"n": 256, "iters": 12}),
    "3-D PDE": ("pde3d", {"m": 20, "iters": 12}),
    "TSP": ("tsp", {"ncities": 12, "seed": 33}),
    "matrix multiply": ("matmul", {"n": 160}),
    "dot-product": ("dotprod", {"n": 32768}),
    "merge-split sort": ("sort", {"nrecords": 4096}),
}

def fig5_specs(full: bool = False) -> dict[str, tuple[str, dict[str, int]]]:
    """The Figure 5 suite as parallel-runner job specs."""
    return dict(_FIG5_FULL if full else _FIG5_QUICK)


def fig5_factories(full: bool = False) -> dict[str, Callable[[int], object]]:
    """App factories for the Figure 5 suite (derived from the specs)."""
    from repro.exps.parallel import APP_REGISTRY

    def make(app: str, kwargs: dict[str, int]) -> Callable[[int], object]:
        ctor = APP_REGISTRY[app]
        return lambda p: ctor(p, **kwargs)

    return {name: make(app, kw) for name, (app, kw) in fig5_specs(full).items()}


def fig5_procs(full: bool = False) -> tuple[int, ...]:
    return (1, 2, 3, 4, 5, 6, 7, 8) if full else (1, 2, 4, 8)


def pde_capacity(full: bool = False) -> tuple[Callable[[int], Pde3dApp], ClusterConfig]:
    """The Figure 4 / Table 1 configuration: the PDE data set exceeds one
    node's physical memory (frames = 1.8 of the three-vector working set
    per vector), with the Aegis-style randomised replacement."""
    m = 24 if full else 20
    iters = 6
    vector_pages = (m**3 * 8 + PAGE_BYTES - 1) // PAGE_BYTES
    config = ClusterConfig().with_memory(
        frames=int(1.8 * vector_pages), replacement="random"
    )
    return (lambda p: Pde3dApp(p, m=m, iters=iters)), config


def sort_factory(full: bool = False) -> Callable[[int], MergeSplitSortApp]:
    nrecords = 8192 if full else 4096
    return lambda p: MergeSplitSortApp(p, nrecords=nrecords)


# ---------------------------------------------------------------------------
# 64–256-node scale-out presets (the pluggable-fabric sweep)


def _scale_config(nodes: int, backend: str, frames: int | None = None) -> ClusterConfig:
    from repro.config import SECOND

    config = (
        ClusterConfig(nodes=nodes)
        .with_svm(page_size=SCALE_PAGE_BYTES)
        .with_fabric(backend=backend)
        # On the shared ring at hundreds of nodes, queueing delay behind
        # the medium can exceed the default 500 ms retransmission
        # timeout — the timer would then flood the medium with duplicate
        # requests of messages that are merely queued, not lost.  The
        # scale presets raise the timeout so retransmission stays what
        # it is for: loss recovery.
        .replace(retransmit_timeout=30 * SECOND)
    )
    if frames is not None:
        config = config.with_memory(frames=frames, replacement="random")
    return config


def scale_fig5(nodes: int, backend: str) -> tuple[str, dict[str, int], ClusterConfig]:
    """Figure-5-class communication-bound point at ``nodes`` stations.

    Dot product with one scatter block per worker — the workload the
    paper chose "to show the weak side" of SVM.  Traffic grows linearly
    with nodes while per-node compute stays constant, so this preset is
    a pure measure of how the medium absorbs offered load.

    Returns a ``(app, app_args, config)`` spec for
    :class:`repro.exps.parallel.Job`.
    """
    return "dotprod", {"n": 512 * nodes}, _scale_config(nodes, backend)


#: Grid edge per node count for the fig4-class capacity preset.  Grows
#: with the machine (more nodes -> bigger problem, the paper's scaled
#: regime) but sub-linearly, keeping the serial sweep affordable.
_SCALE_FIG4_M = {64: 64, 128: 96, 256: 128}


def scale_fig4(nodes: int, backend: str) -> tuple[str, dict[str, int], ClusterConfig]:
    """Figure-4-class capacity-bound point at ``nodes`` stations.

    The 3-D PDE with per-node frames at 1.8 of one solution vector's
    pages — the data set exceeds any single memory and lives spread
    across the cluster, so every iteration moves slabs and ghost planes
    over the fabric.

    Returns a ``(app, app_args, config)`` spec for
    :class:`repro.exps.parallel.Job`.
    """
    m = _SCALE_FIG4_M.get(nodes, max(32, min(128, nodes)))
    vector_pages = (m**3 * 8 + SCALE_PAGE_BYTES - 1) // SCALE_PAGE_BYTES
    config = _scale_config(nodes, backend, frames=int(1.8 * vector_pages))
    return "pde3d", {"m": m, "iters": 2}, config
