"""Workload presets shared by the experiment drivers and benchmarks.

"Quick" presets keep the qualitative shapes (who wins, crossovers,
super-linearity) at a fraction of the simulation cost; "full" presets
are the calibrated headline configurations recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.dotprod import DotProductApp
from repro.apps.jacobi import JacobiApp
from repro.apps.matmul import MatmulApp
from repro.apps.pde3d import Pde3dApp
from repro.apps.sort import MergeSplitSortApp
from repro.apps.tsp import TspApp
from repro.config import ClusterConfig

__all__ = [
    "fig5_factories",
    "fig5_procs",
    "pde_capacity",
    "sort_factory",
    "PAGE_BYTES",
]

PAGE_BYTES = 1024


def fig5_factories(full: bool = False) -> dict[str, Callable[[int], object]]:
    """App factories for the Figure 5 suite."""
    if full:
        return {
            "linear eqn (jacobi)": lambda p: JacobiApp(p, n=512, iters=24),
            "3-D PDE": lambda p: Pde3dApp(p, m=48, iters=20),
            "TSP": lambda p: TspApp(p, ncities=13, seed=33),
            "matrix multiply": lambda p: MatmulApp(p, n=224),
            "dot-product": lambda p: DotProductApp(p, n=65536),
            "merge-split sort": lambda p: MergeSplitSortApp(p, nrecords=8192),
        }
    return {
        "linear eqn (jacobi)": lambda p: JacobiApp(p, n=256, iters=12),
        "3-D PDE": lambda p: Pde3dApp(p, m=20, iters=12),
        "TSP": lambda p: TspApp(p, ncities=12, seed=33),
        "matrix multiply": lambda p: MatmulApp(p, n=160),
        "dot-product": lambda p: DotProductApp(p, n=32768),
        "merge-split sort": lambda p: MergeSplitSortApp(p, nrecords=4096),
    }


def fig5_procs(full: bool = False) -> tuple[int, ...]:
    return (1, 2, 3, 4, 5, 6, 7, 8) if full else (1, 2, 4, 8)


def pde_capacity(full: bool = False) -> tuple[Callable[[int], Pde3dApp], ClusterConfig]:
    """The Figure 4 / Table 1 configuration: the PDE data set exceeds one
    node's physical memory (frames = 1.8 of the three-vector working set
    per vector), with the Aegis-style randomised replacement."""
    m = 24 if full else 20
    iters = 6
    vector_pages = (m**3 * 8 + PAGE_BYTES - 1) // PAGE_BYTES
    config = ClusterConfig().with_memory(
        frames=int(1.8 * vector_pages), replacement="random"
    )
    return (lambda p: Pde3dApp(p, m=m, iters=iters)), config


def sort_factory(full: bool = False) -> Callable[[int], MergeSplitSortApp]:
    nrecords = 8192 if full else 4096
    return lambda p: MergeSplitSortApp(p, nrecords=nrecords)
