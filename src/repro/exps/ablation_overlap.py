"""Ablation — disk I/O overlap (the paper's proposed improvement).

"I/O overlaps among the lightweight processes do not exist in IVY. ...
The disk I/O overlap may also greatly improve IVY's performance."

In IVY a paging transfer stalls the whole node (the user-mode system
lives in one Aegis process).  With overlap enabled, a process blocked
on the disk hands the CPU to the next ready process.  The workload that
shows it: one disk-bound process (sweeping a region that does not fit in
memory) sharing a node with one compute-bound process.  Stalled I/O
serialises them; overlapped I/O runs them concurrently.
"""

from __future__ import annotations

import argparse
from collections.abc import Generator
from typing import Any

from repro.config import ClusterConfig
from repro.metrics.report import ascii_table

__all__ = ["run", "main"]


def _mixed_run(overlap: bool, sweeps: int, compute_ns: int) -> dict[str, Any]:
    """One node, two lightweight processes: a pager (sweeps a region that
    does not fit in memory) and a computer.  Without I/O overlap the
    computer is stuck behind every disk transfer; with it, the two jobs
    run concurrently and the makespan approaches max() instead of sum()."""
    from repro.api.ivy import Ivy
    from repro.sync.eventcount import EC_RECORD_BYTES

    config = (
        ClusterConfig(nodes=1)
        .with_memory(frames=8, replacement="random")
        .with_disk(overlap_io=overlap)
    )
    ivy = Ivy(config)
    page = config.svm.page_size

    def pager_proc(ctx: Any, region: Any, done: Any) -> Generator[Any, Any, Any]:
        for sweep in range(sweeps):
            for p in range(24):  # 24 pages through 8 frames: pure paging
                yield from ctx.write_i64(region + p * page, sweep)
        yield from ctx.ec_advance(done)

    def compute_proc(ctx: Any, done: Any) -> Generator[Any, Any, Any]:
        # Fine slices: with no preemption, slice length bounds how well
        # compute can pack into the pager's disk waits.
        for _ in range(300):
            yield ctx.compute(compute_ns // 300)
            yield ctx.yield_cpu()
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        region = yield from ctx.malloc(24 * page)
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        yield from ctx.spawn(pager_proc, region, done)
        yield from ctx.spawn(compute_proc, done)
        yield from ctx.ec_wait(done, 2)
        return True

    ivy.run(main_prog)
    total = ivy.cluster.total_counters()
    return {
        "overlap": overlap,
        "time_ns": ivy.time_ns,
        "disk_ops": total["disk_reads"] + total["disk_writes"],
    }


def run(quick: bool = True) -> list[dict[str, Any]]:
    sweeps = 3 if quick else 8
    compute_ns = 3_000_000_000 if quick else 8_000_000_000
    return [
        _mixed_run(False, sweeps, compute_ns),
        _mixed_run(True, sweeps, compute_ns),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    data = run(quick=not args.full)
    rows = [
        ["overlapped" if d["overlap"] else "IVY (stall)", f"{d['time_ns']/1e9:.3f}s", d["disk_ops"]]
        for d in data
    ]
    print("Ablation — disk I/O overlap (pager + computer sharing one node)")
    print()
    print(ascii_table(["disk I/O", "exec time", "disk ops"], rows))


if __name__ == "__main__":
    main()
