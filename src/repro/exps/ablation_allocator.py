"""Ablation — centralized first-fit vs. two-level memory allocation.

"A more efficient approach is two-level memory management. ... This
approach has not been implemented yet, though it is expected to have
better performance."  We implemented it; this experiment quantifies the
expectation on an allocation-heavy microbenchmark (every node
allocates/frees many small objects concurrently).
"""

from __future__ import annotations

import argparse
from collections.abc import Generator
from typing import Any

from repro.api.ivy import Ivy
from repro.config import ClusterConfig
from repro.metrics.report import ascii_table
from repro.sync.eventcount import EC_RECORD_BYTES

__all__ = ["run", "main"]


def _alloc_storm(allocator: str, nodes: int, per_node: int) -> dict[str, Any]:
    config = ClusterConfig(nodes=nodes).with_sched(allocator=allocator)
    ivy = Ivy(config)

    def worker(ctx: Any, done: Any) -> Generator[Any, Any, Any]:
        held = []
        for i in range(per_node):
            addr = yield from ctx.malloc(512)
            held.append(addr)
            if len(held) >= 4:  # free in bursts, LIFO
                yield from ctx.free(held.pop())
                yield from ctx.free(held.pop())
        for addr in held:
            yield from ctx.free(addr)
        yield from ctx.ec_advance(done)

    def main_prog(ctx: Any) -> Generator[Any, Any, Any]:
        done = yield from ctx.malloc(EC_RECORD_BYTES)
        yield from ctx.ec_init(done)
        for k in range(nodes):
            yield from ctx.spawn(worker, done, on=k)
        yield from ctx.ec_wait(done, nodes)
        return True

    ivy.run(main_prog)
    total = ivy.cluster.total_counters()
    return {
        "allocator": allocator,
        "time_ns": ivy.time_ns,
        "ring_msgs": ivy.cluster.ring.stats.messages,
        "chunk_refills": total["chunk_refills"],
        "local_allocations": total["local_allocations"],
    }


def run(quick: bool = True, nodes: int = 4) -> list[dict[str, Any]]:
    per_node = 40 if quick else 200
    return [
        _alloc_storm("central", nodes, per_node),
        _alloc_storm("twolevel", nodes, per_node),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    data = run(quick=not args.full)
    rows = [
        [
            d["allocator"],
            f"{d['time_ns'] / 1e9:.3f}s",
            d["ring_msgs"],
            d["chunk_refills"],
            d["local_allocations"],
        ]
        for d in data
    ]
    print("Ablation — memory allocators (concurrent alloc/free storm, 4 nodes)")
    print()
    print(
        ascii_table(
            ["allocator", "exec time", "ring msgs", "chunk refills", "local allocs"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
