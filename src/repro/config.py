"""Cluster configuration for the simulated loosely-coupled multiprocessor.

All timing constants are integer **nanoseconds** of simulated time.  The
defaults are calibrated to the hardware IVY ran on: Apollo DN-series
workstations (Motorola 68020-class CPUs) on the Apollo Domain 12 Mbit/s
baseband token ring, with a user-mode remote-operation layer whose software
overhead dominates the wire time (the paper cites [28]: sending 1,000 bytes
is "not much more expensive" than sending 100).

Absolute values do not need to match the 1988 testbed (we report *shapes*,
per DESIGN.md); what matters is that the compute : page-fault : disk cost
ratios are era-plausible, because those ratios determine which benchmarks
scale and which do not.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ConfigError",
    "CpuConfig",
    "RingConfig",
    "FabricConfig",
    "DiskConfig",
    "MemoryConfig",
    "SvmConfig",
    "SchedConfig",
    "CheckerConfig",
    "ObsConfig",
    "ClusterConfig",
]


class ConfigError(ValueError):
    """A structured configuration error.

    Raised when a config field names something the system does not
    provide (e.g. an unknown network backend).  Carries the offending
    ``field`` and ``value``, the ``known`` legal values, and — when one
    of them is close enough to be a likely typo — an exact-name
    ``suggestion``, so drivers can render a precise message and tests
    can assert on structure instead of prose.
    """

    def __init__(
        self,
        field_name: str,
        value: object,
        known: tuple[str, ...],
        suggestion: str | None = None,
    ) -> None:
        self.field = field_name
        self.value = value
        self.known = known
        self.suggestion = suggestion
        hint = f"; did you mean {suggestion!r}?" if suggestion else ""
        super().__init__(
            f"unknown {field_name} {value!r} (known: {', '.join(known)}){hint}"
        )

#: One microsecond of simulated time, in simulation ticks (nanoseconds).
MICROSECOND = 1_000
#: One millisecond of simulated time.
MILLISECOND = 1_000_000
#: One second of simulated time.
SECOND = 1_000_000_000


@dataclass(frozen=True)
class CpuConfig:
    """Per-processor compute cost model (68020-class workstation).

    Application code charges work analytically through these knobs; the
    simulator never measures host CPU time.
    """

    #: Cost of one double-precision floating point operation (Pascal codegen
    #: on a 68020 with 68881 FPU managed roughly 0.1-0.2 MFLOPS).
    ns_per_flop: int = 6 * MICROSECOND
    #: Cost of one "simple" integer/pointer operation.
    ns_per_op: int = 500
    #: Cost of copying one byte between buffers (used for in-memory moves).
    ns_per_byte_copy: int = 120
    #: Lightweight-process context switch ("a few procedure calls", per the
    #: paper's process-model discussion).
    context_switch: int = 50 * MICROSECOND
    #: Creating / terminating a lightweight process.
    process_create: int = 300 * MICROSECOND
    #: Local half of a test-and-set based lock operation ("two 68000
    #: instructions for each locking").
    test_and_set: int = 2 * MICROSECOND


@dataclass(frozen=True)
class RingConfig:
    """The Apollo Domain 12 Mbit/s single token ring.

    The ring is a *shared medium*: exactly one frame is in flight at a time,
    so transmissions from all nodes serialise.  A message's occupancy of the
    ring is ``frame_overhead + ceil(bytes * 8e9 / bandwidth_bps)``.
    """

    bandwidth_bps: int = 12_000_000
    #: Token acquisition + hardware framing per transmission.
    frame_overhead: int = 150 * MICROSECOND
    #: Maximum payload of a single ring frame; larger messages fragment.
    max_frame_bytes: int = 2048
    #: Propagation + receiver DMA latency after the frame leaves the wire.
    delivery_latency: int = 50 * MICROSECOND
    #: Probability that a frame is lost in transit (exercises the
    #: retransmission protocol; 0.0 for deterministic experiments).
    loss_rate: float = 0.0


@dataclass(frozen=True)
class FabricConfig:
    """Transmission-medium selection and the switched backend's cost model.

    ``backend`` picks the medium every byte of cluster traffic rides:

    - ``"ring"`` — the Apollo Domain shared-medium token ring
      (:class:`RingConfig`; the paper's hardware and the default — all
      committed golden schedules assume it);
    - ``"switched"`` — a switched point-to-point interconnect
      (:class:`repro.net.fabric.switched.SwitchedFabric`): every station
      has a full-duplex link into a central crossbar, disjoint
      source/destination pairs transmit concurrently, and contention is
      per-port FIFO queueing instead of global serialisation.  Broadcast
      is not free snooping — it is realised as an explicit multicast
      tree whose relay hops pay real link occupancy.

    The switched link parameters are mid-90s-plausible (a 100 Mbit/s
    point-to-point fabric, ATM/Autonet-class): an order of magnitude
    more per-link bandwidth than the 12 Mbit/s ring and no token
    acquisition, but a per-hop switch traversal and a store-and-forward
    cost at every multicast relay.
    """

    backend: str = "ring"
    #: Per-link, per-direction bandwidth (full duplex: a station can
    #: transmit and receive simultaneously).
    link_bandwidth_bps: int = 100_000_000
    #: Framing + arbitration per transmission on one link (no shared
    #: token to wait for, so far below the ring's 150 us).
    link_overhead: int = 30 * MICROSECOND
    #: Maximum payload of a single link frame; larger messages fragment.
    max_frame_bytes: int = 2048
    #: Crossbar traversal latency between the source's egress link and
    #: the destination's ingress link.
    switch_latency: int = 10 * MICROSECOND
    #: Receiver DMA latency after the frame leaves the ingress link.
    delivery_latency: int = 20 * MICROSECOND
    #: Store-and-forward cost at each relay of a multicast tree (the
    #: host NIC re-injects the frame towards its children).
    relay_cost: int = 40 * MICROSECOND
    #: Fan-out of the multicast tree used for broadcast/multicast.
    multicast_fanout: int = 4
    #: Probability that a frame is lost at the final receiver (drawn per
    #: target, matching the ring's per-receiver loss model).
    loss_rate: float = 0.0


@dataclass(frozen=True)
class DiskConfig:
    """Per-node paging disk (Aegis demand paging backing store).

    A late-1980s Winchester disk: tens of milliseconds of positioning time,
    ~1 MB/s of media rate.  Disk traffic is what produces the paper's
    super-linear speedup (Figure 4) and Table 1.
    """

    seek: int = 24 * MILLISECOND
    bandwidth_bps: int = 8_000_000  # 1 MB/s media rate
    #: IVY had no disk I/O overlap: a paging transfer stalls the whole node
    #: ("I/O overlaps among the lightweight processes do not exist in IVY").
    #: Setting True models the paper's proposed improvement (an ablation).
    overlap_io: bool = False

    def transfer_ns(self, nbytes: int) -> int:
        """Total time to read or write ``nbytes`` in one operation."""
        return self.seek + (nbytes * 8 * SECOND) // self.bandwidth_bps


@dataclass(frozen=True)
class MemoryConfig:
    """Per-node physical memory devoted to shared-virtual-memory frames.

    ``frames`` bounds how many SVM pages a node can cache; exceeding it
    triggers Aegis-style approximate-LRU eviction to the paging disk.
    """

    #: Number of physical page frames available for SVM pages.  The default
    #: (unbounded) disables capacity effects; Figure 4 / Table 1 experiments
    #: set a finite value.
    frames: int | None = None
    #: Victim selection: "lru" (strict) or "random".  Aegis used an
    #: approximate LRU (sampled use bits); under the cyclic sweeps of the
    #: Jacobi-style benchmarks every resident page's use bit is set between
    #: samplings, so the approximation degenerates to effectively random
    #: choice — which is also what avoids strict LRU's all-or-nothing miss
    #: pathology on cyclic working sets.  The capacity experiments use
    #: "random" for that reason (see EXPERIMENTS.md).
    replacement: str = "lru"


@dataclass(frozen=True)
class SvmConfig:
    """Shared virtual memory parameters."""

    #: Page size in bytes.  The paper used 1 KB and conjectures 256 B would
    #: also work; the page-size ablation sweeps this.
    page_size: int = 1024
    #: Base virtual address of the shared portion of each address space
    #: (the low portion is private, per the paper).
    shared_base: int = 0x8000_0000
    #: Size of the shared virtual address space in bytes.
    shared_size: int = 64 * 1024 * 1024
    #: Coherence algorithm: "centralized", "fixed", "dynamic", or
    #: "broadcast" (owner location by ring broadcast — the simplest
    #: distributed manager, and the stated use of the any-reply scheme).
    algorithm: str = "dynamic"
    #: Dynamic manager refinement: after every M ownership transfers of a
    #: page, its new owner broadcasts a hint refresh so stale probOwner
    #: chains collapse (Li & Hudak's periodic-broadcast variant).  0 = off.
    dynamic_broadcast_period: int = 0
    #: Write policy: "invalidate" (IVY: read copies are invalidated before
    #: a write) or "update" (extension: the owner multicasts fresh page
    #: contents to the copy set on every write — the other classic DSM
    #: design point, good for producer/consumer sharing, terrible for
    #: write-heavy pages with stale readers; see the ablation).
    write_policy: str = "invalidate"
    #: Node hosting the centralized manager (and initial owner of all pages).
    manager_node: int = 0
    #: CPU cost of the page-fault trap + handler entry/exit.
    fault_handler_cost: int = 250 * MICROSECOND


@dataclass(frozen=True)
class SchedConfig:
    """Process scheduling and passive load balancing."""

    #: Null-process timeout: idle nodes run the load balancer and the
    #: retransmission check every half second (per the paper).
    null_timeout: int = 500 * MILLISECOND
    #: Ask for work when the local process count drops below this.
    lower_threshold: int = 1
    #: Grant migration requests only while the local count exceeds this.
    upper_threshold: int = 2
    #: Whether the passive load balancer is active at all.
    load_balancing: bool = False
    #: Use ready-process count as the sole criterion (the policy the paper
    #: reports "will not work well"; kept for the ablation).
    ready_count_only: bool = False
    #: Default per-process stack reservation in the shared space, bytes.
    stack_bytes: int = 8 * 1024
    #: Memory allocator: "central" (the paper's one-level first-fit with
    #: centralized control) or "twolevel" (the improvement the paper
    #: proposes but had not implemented; built here as an extension).
    allocator: str = "central"
    #: Two-level allocator: pages per chunk fetched from the central
    #: allocator by a node-local allocator.
    alloc_chunk_pages: int = 16


@dataclass(frozen=True)
class CheckerConfig:
    """Fine-grained control over the online correctness checkers.

    ``ClusterConfig.checker`` accepts either a plain bool (all-default
    checking) or one of these.  Truthiness equals :attr:`enabled`, so
    existing ``if config.checker`` gates keep working.
    """

    enabled: bool = True
    #: Labels of *declared* benign data races.  An application declares a
    #: race-by-design region with ``ctx.declare_benign_race(label, addr,
    #: nbytes)`` (e.g. TSP's optimistic best-bound read, label
    #: ``"tsp.best-bound"``); reports whose racing word falls inside a
    #: declared region with its label listed here are suppressed —
    #: recorded on ``RaceDetector.suppressed`` and counted under the
    #: ``race.suppressed`` counter, but kept out of ``races`` and the
    #: ``violation.race`` namespace.  Declarations whose labels are not
    #: listed still report: the allowlist is in the *configuration*, so
    #: an application cannot silence itself.
    known_races: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.enabled


@dataclass(frozen=True)
class ObsConfig:
    """Fine-grained control over the observability layer.

    ``ClusterConfig.obs`` accepts either a plain bool (whole-run
    aggregates only) or one of these.  Truthiness equals
    :attr:`enabled`, so existing ``if config.obs`` gates keep working.
    Every option is pure observation: the simulated schedule is
    bit-for-bit identical whatever is set here.
    """

    enabled: bool = True
    #: Width of one timeline window in simulated ns; 0 disables the
    #: windowed timeline (whole-run aggregates only).  With a timeline,
    #: instruments, closed-span time, per-link busy-ns, and the
    #: profiler's attribution all become per-window series, the input
    #: to ``repro.obs.slo`` evaluation.
    timeline_window_ns: int = 0
    #: Head-based span sampling: keep ~1 in N root-span trees, decided
    #: by a pure hash of the span id (no RNG, no wall clock; identical
    #: runs keep identical sets).  1 keeps everything.  Dropped spans
    #: still feed the profiler and timeline, so attribution stays
    #: complete at any rate.
    sample_every: int = 1
    #: Histogram backend for instruments: "exact" keeps every sample,
    #: "logbucket" keeps O(log range) counters with a bounded relative
    #: error — the right choice at 64+ nodes.
    hist_backend: str = "exact"

    def __bool__(self) -> bool:
        return self.enabled


@dataclass(frozen=True)
class ClusterConfig:
    """Complete description of one simulated cluster."""

    nodes: int = 4
    seed: int = 1988
    #: Enable the online correctness checkers (repro.analysis): the
    #: coherence oracle shadows every protocol transition and the
    #: vector-clock race detector instruments application accesses.
    #: Checking is pure observation — it never yields simulation effects,
    #: so enabling it cannot change simulated times or event counts; a
    #: detected violation raises ``InvariantViolation``.  Pass a
    #: :class:`CheckerConfig` instead of ``True`` to tune the checkers
    #: (e.g. allowlist known-benign application races).
    checker: bool | CheckerConfig = False
    #: Enable the observability layer (repro.obs): causal span tracing
    #: through faults/RPCs/invalidations, latency histograms, and the
    #: simulated-time profiler.  Like the checker it is pure observation
    #: — no effects, no RNG — so enabling it never changes simulated
    #: times, event counts, or golden schedules.  Pass an
    #: :class:`ObsConfig` instead of ``True`` to enable the windowed
    #: timeline, span sampling, or the bounded-memory histogram backend;
    #: pass an :class:`repro.obs.Observability` to ``Cluster``/``Ivy``
    #: directly to keep the handle for querying after the run.
    obs: bool | ObsConfig = False
    cpu: CpuConfig = field(default_factory=CpuConfig)
    ring: RingConfig = field(default_factory=RingConfig)
    #: Network-medium selection (``fabric.backend``) and the switched
    #: backend's link cost model.  The default rides the token ring
    #: above, keeping every committed golden schedule bit-for-bit.
    fabric: FabricConfig = field(default_factory=FabricConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    svm: SvmConfig = field(default_factory=SvmConfig)
    sched: SchedConfig = field(default_factory=SchedConfig)
    #: Event-kernel backend: ``"calendar"`` (calendar/bucket timer queue,
    #: O(1) amortised) or ``"heap"`` (the legacy single binary heap).
    #: ``None`` defers to the ``REPRO_KERNEL`` environment variable and
    #: then to ``"calendar"`` — an explicit value here beats the
    #: environment, so a config can pin a kernel regardless of how CI
    #: runs it.  Both kernels are bit-for-bit schedule-identical; the
    #: choice is purely a wall-clock/regression-triage knob.
    kernel: str | None = None
    #: Per-message transport software overhead at each endpoint (user-mode
    #: protocol processing; dominates small-message cost, per [28]).
    transport_cpu: int = 500 * MICROSECOND
    #: CPU cost of dispatching one incoming remote-operation request.
    server_dispatch_cost: int = 100 * MICROSECOND
    #: Request retransmission timeout (the paper's null process re-checks
    #: outgoing channels every half second).
    retransmit_timeout: int = 500 * MILLISECOND
    #: Upper bound on retransmissions before the transport declares the
    #: peer dead and raises; generous because the sim has no real crashes.
    max_retransmits: int = 64

    def replace(self, **kw) -> "ClusterConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kw)

    def with_svm(self, **kw) -> "ClusterConfig":
        """Return a copy with SVM sub-fields replaced."""
        return dataclasses.replace(self, svm=dataclasses.replace(self.svm, **kw))

    def with_sched(self, **kw) -> "ClusterConfig":
        """Return a copy with scheduler sub-fields replaced."""
        return dataclasses.replace(self, sched=dataclasses.replace(self.sched, **kw))

    def with_memory(self, **kw) -> "ClusterConfig":
        """Return a copy with memory sub-fields replaced."""
        return dataclasses.replace(self, memory=dataclasses.replace(self.memory, **kw))

    def with_cpu(self, **kw) -> "ClusterConfig":
        """Return a copy with CPU sub-fields replaced."""
        return dataclasses.replace(self, cpu=dataclasses.replace(self.cpu, **kw))

    def with_ring(self, **kw) -> "ClusterConfig":
        """Return a copy with ring sub-fields replaced."""
        return dataclasses.replace(self, ring=dataclasses.replace(self.ring, **kw))

    def with_fabric(self, **kw) -> "ClusterConfig":
        """Return a copy with fabric sub-fields replaced (e.g.
        ``with_fabric(backend="switched")``)."""
        return dataclasses.replace(
            self, fabric=dataclasses.replace(self.fabric, **kw)
        )

    def with_disk(self, **kw) -> "ClusterConfig":
        """Return a copy with disk sub-fields replaced."""
        return dataclasses.replace(self, disk=dataclasses.replace(self.disk, **kw))
