"""Seeded, per-component random streams.

Each subsystem that needs randomness (packet-loss injection, load-balancer
tie breaking, workload generation) draws from its *own* named stream, all
derived from the cluster seed via :func:`numpy.random.SeedSequence.spawn`
semantics.  Adding a new consumer therefore never perturbs the draws seen
by existing ones — determinism survives code evolution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent named :class:`numpy.random.Generator`s."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The stream is keyed by a stable hash of the name, so creation
        order does not matter.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive child entropy from (seed, name) only — order-free.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen


def _stable_hash(name: str) -> int:
    """A process-stable 64-bit FNV-1a hash (``hash()`` is salted)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
