"""Structured event tracing.

A :class:`TraceRecorder` collects ``(time, category, fields)`` records.
Tracing is off by default (a no-op recorder) so the hot paths only pay a
truthiness check.  Tests use traces to assert protocol-level properties
("the manager forwarded exactly one request", "no invalidation was sent
to a non-copy-holder") that aggregate counters cannot express.

Until :meth:`TraceRecorder.bind_clock` is called (the cluster does this
at boot), events are stamped :data:`UNSTAMPED` rather than silently
timestamped 0 — a recorder used before boot is detectable instead of
producing plausible-looking zero times.

Protocol-transition categories (consumed by ``repro.analysis``):

- ``cluster.boot``     — cluster topology + coherence configuration;
- ``svm.fault_begin``  — a fault handler entered its slow path;
- ``svm.read_fault``   — a read fault completed (copy installed);
- ``svm.write_fault``  — a write fault completed (ownership acquired);
- ``svm.write_upgrade``— an owner upgraded READ -> WRITE in place;
- ``svm.chown``        — a data-less ownership acquisition completed;
- ``svm.grant``        — an owner served a fault (read copy or ownership);
- ``svm.invalidate``   — an owner multicast invalidations;
- ``svm.inv_recv``     — a node applied an invalidation;
- ``svm.update_recv``  — a node applied a pushed page image;
- ``svm.drop``         — eviction dropped a copy / paged out the owner.

Recorded streams round-trip through :meth:`save` / :meth:`load` (JSON
lines) so ``python -m repro.analysis replay`` can check them offline.
The same JSONL conventions (one record per line, sets sorted, bytes as
integer lists — see :func:`jsonable`) are used by the schedule
explorer's counterexample artifacts (``repro.analysis.explore``), so a
violating schedule and the trace it produced stay mutually replayable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "TraceRecorder", "NULL_TRACE", "UNSTAMPED", "jsonable"]

#: Timestamp of events emitted before a clock was bound: recorders used
#: before cluster boot mark their events rather than claiming time 0.
UNSTAMPED = -1


@dataclass(frozen=True)
class TraceEvent:
    time: int
    category: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    @property
    def stamped(self) -> bool:
        return self.time != UNSTAMPED


class TraceRecorder:
    """Collects trace events, optionally filtered by category."""

    def __init__(self, categories: set[str] | None = None, enabled: bool = True) -> None:
        self.enabled = enabled
        self.categories = categories
        self.events: list[TraceEvent] = []
        self._clock: Callable[[], int] | None = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulator clock; called by the cluster at boot."""
        self._clock = clock

    def __bool__(self) -> bool:
        return self.enabled

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        time = self._clock() if self._clock is not None else UNSTAMPED
        self.events.append(TraceEvent(time, category, fields))

    def select(self, category: str, **match: Any) -> list[TraceEvent]:
        """Events of ``category`` whose fields match all of ``match``."""
        return [
            ev
            for ev in self.events
            if ev.category == category
            and all(ev.fields.get(k) == v for k, v in match.items())
        ]

    def count(self, category: str, **match: Any) -> int:
        return len(self.select(category, **match))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # replay support (repro.analysis)

    def replay(self, categories: set[str] | None = None) -> Iterator[TraceEvent]:
        """Iterate recorded events in emission (= time) order, optionally
        restricted to ``categories``.  Emission order is the coherence
        order the analysis layer replays — events are appended as the
        simulation executes them, so ties at equal timestamps keep their
        causal order, which a sort by timestamp would not guarantee."""
        for ev in self.events:
            if categories is None or ev.category in categories:
                yield ev

    def save(self, path: str) -> int:
        """Write the recorded stream as JSON lines; returns event count.

        Events emitted before :meth:`bind_clock` carry :data:`UNSTAMPED`
        times; they are saved (the stream stays complete) but a warning
        reports how many, because downstream latency statistics must not
        treat ``-1`` as a time (``repro.metrics.report.fault_latency_stats``
        excludes them).
        """
        unstamped = sum(1 for ev in self.events if not ev.stamped)
        if unstamped:
            import warnings

            warnings.warn(
                f"{unstamped} of {len(self.events)} trace events are UNSTAMPED "
                "(emitted before bind_clock); latency statistics will skip them",
                stacklevel=2,
            )
        with open(path, "w", encoding="utf-8") as fh:
            for ev in self.events:
                fh.write(
                    json.dumps(
                        {"time": ev.time, "category": ev.category, "fields": ev.fields},
                        default=_jsonable,
                    )
                )
                fh.write("\n")
        return len(self.events)

    @classmethod
    def load(cls, path: str) -> "TraceRecorder":
        """Reconstruct a recorder from a :meth:`save` stream.  Tuples do
        not survive the JSON round-trip (they come back as lists), which
        the replay checker normalises itself."""
        rec = cls()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                rec.events.append(
                    TraceEvent(int(raw["time"]), raw["category"], raw["fields"])
                )
        return rec


def jsonable(value: Any) -> Any:
    """``json.dumps(..., default=jsonable)`` fallback shared by trace
    streams and the schedule explorer's artifacts: sets serialise sorted
    (deterministic output), bytes as integer lists."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, bytes):
        return list(value)
    raise TypeError(f"unserialisable trace field {value!r}")


#: Backwards-compatible private alias (pre-explorer name).
_jsonable = jsonable


#: Shared disabled recorder — the default for non-test runs.
NULL_TRACE = TraceRecorder(enabled=False)
