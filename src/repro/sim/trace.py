"""Structured event tracing.

A :class:`TraceRecorder` collects ``(time, category, fields)`` records.
Tracing is off by default (a no-op recorder) so the hot paths only pay a
truthiness check.  Tests use traces to assert protocol-level properties
("the manager forwarded exactly one request", "no invalidation was sent
to a non-copy-holder") that aggregate counters cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "TraceRecorder", "NULL_TRACE"]


@dataclass(frozen=True)
class TraceEvent:
    time: int
    category: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class TraceRecorder:
    """Collects trace events, optionally filtered by category."""

    def __init__(self, categories: set[str] | None = None, enabled: bool = True) -> None:
        self.enabled = enabled
        self.categories = categories
        self.events: list[TraceEvent] = []
        self._clock: Callable[[], int] = lambda: 0

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulator clock; called by the cluster at boot."""
        self._clock = clock

    def __bool__(self) -> bool:
        return self.enabled

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(self._clock(), category, fields))

    def select(self, category: str, **match: Any) -> list[TraceEvent]:
        """Events of ``category`` whose fields match all of ``match``."""
        return [
            ev
            for ev in self.events
            if ev.category == category
            and all(ev.fields.get(k) == v for k, v in match.items())
        ]

    def count(self, category: str, **match: Any) -> int:
        return len(self.select(category, **match))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


#: Shared disabled recorder — the default for non-test runs.
NULL_TRACE = TraceRecorder(enabled=False)
