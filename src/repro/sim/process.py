"""Generator-based lightweight tasks and their scheduling effects.

A :class:`Task` wraps a Python generator.  The generator *yields effects*
describing what it wants from its scheduler:

``Compute(ns)``
    Hold the CPU for ``ns`` ticks, then continue.  Under the plain
    :class:`SimDriver` this is just a delay; under the per-node process
    dispatcher (`repro.proc.scheduler`) the node stays busy.

``Sleep(ns)``
    Release the CPU and become runnable again after ``ns`` ticks.

``Suspend()``
    Release the CPU and park until another component calls
    :meth:`Task.wake`.  This is how page-fault waits, message waits and
    eventcount waits are expressed.

``YieldCpu()``
    Voluntarily reschedule (cooperative multitasking).

Sub-operations compose with ``yield from``; a helper generator that never
yields costs only a cheap delegation, which keeps the non-faulting
memory-access fast path fast.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterator

from repro.sim.kernel import Simulator

__all__ = [
    "Effect",
    "Compute",
    "Sleep",
    "Suspend",
    "YieldCpu",
    "TaskState",
    "Task",
    "TaskFailure",
    "Driver",
    "SimDriver",
]


class Effect:
    """Base class for scheduling effects yielded by tasks."""

    __slots__ = ()


class Compute(Effect):
    """Occupy the CPU for ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative compute time {ns}")
        self.ns = ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.ns})"


class Sleep(Effect):
    """Release the CPU; become ready again after ``ns`` nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative sleep time {ns}")
        self.ns = ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sleep({self.ns})"


class Suspend(Effect):
    """Park until an external :meth:`Task.wake` call.

    ``register``, if given, is called with the parking :class:`Task` the
    moment it blocks — this is how helper generators (locks, reply gates)
    capture "the current task" without threading it through every call.
    """

    __slots__ = ("register",)

    def __init__(self, register: "Callable[[Task], None] | None" = None) -> None:
        self.register = register

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Suspend()"


class YieldCpu(Effect):
    """Cooperatively yield the CPU to other ready processes."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "YieldCpu()"


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class TaskFailure(RuntimeError):
    """A task raised an unhandled exception (chained as __cause__)."""


class Driver:
    """Interprets effects for the tasks it owns.

    Two implementations exist: :class:`SimDriver` (system tasks — network,
    servers, timers) and the per-node process dispatcher in
    `repro.proc.scheduler` (application lightweight processes).
    """

    def handle(self, task: "Task", effect: Effect) -> None:
        raise NotImplementedError

    def wake(self, task: "Task", value: Any = None) -> None:
        raise NotImplementedError

    def finished(self, task: "Task") -> None:
        """Called after a task completes or fails (CPU hand-back hook)."""


class Task:
    """A lightweight thread of control driven by yielded effects."""

    _counter = 0

    def __init__(self, gen: Generator[Effect, Any, Any], driver: Driver, name: str = "") -> None:
        Task._counter += 1
        self.tid = Task._counter
        self.gen = gen
        self.driver = driver
        self.name = name or f"task-{self.tid}"
        self.state = TaskState.READY
        #: True once the task finished or failed.  A plain attribute
        #: (kept in sync by _finish/_fail) rather than a property derived
        #: from ``state``: it is checked on every step and wake.
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list[Callable[["Task"], None]] = []

    # -- introspection ---------------------------------------------------

    @property
    def is_blocked(self) -> bool:
        return self.state is TaskState.BLOCKED

    def __repr__(self) -> str:
        return f"<Task {self.name} {self.state.value}>"

    # -- stepping ---------------------------------------------------------

    def step(self, value: Any = None) -> None:
        """Advance the generator by one effect; route it to the driver."""
        if self.done:
            raise RuntimeError(f"stepping finished task {self!r}")
        self.state = TaskState.RUNNING
        try:
            effect = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - report then park
            self._fail(exc)
            return
        if not isinstance(effect, Effect):
            self._fail(TypeError(f"task {self.name} yielded non-effect {effect!r}"))
            return
        self.driver.handle(self, effect)

    def throw(self, exc: BaseException) -> None:
        """Inject an exception at the task's current yield point."""
        if self.done:
            return
        self.state = TaskState.RUNNING
        try:
            effect = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self._fail(raised)
            return
        self.driver.handle(self, effect)

    def wake(self, value: Any = None) -> None:
        """Unpark a suspended task (delegates to its driver)."""
        self.driver.wake(self, value)

    # -- completion -------------------------------------------------------

    def on_done(self, fn: Callable[["Task"], None]) -> None:
        """Invoke ``fn(task)`` when the task completes (immediately if done)."""
        if self.done:
            fn(self)
        else:
            self._joiners.append(fn)

    def _finish(self, result: Any) -> None:
        self.state = TaskState.DONE
        self.done = True
        self.result = result
        self.driver.finished(self)
        joiners, self._joiners = self._joiners, []
        for fn in joiners:
            fn(self)

    def _fail(self, exc: BaseException) -> None:
        self.state = TaskState.FAILED
        self.done = True
        self.error = exc
        failure = TaskFailure(f"task {self.name} failed: {exc!r}")
        failure.__cause__ = exc
        self.driver.finished(self)
        joiners, self._joiners = self._joiners, []
        if joiners:
            for fn in joiners:
                fn(self)
        else:
            # Nobody is joining: escalate to the simulator via the driver.
            escalate = getattr(self.driver, "escalate", None)
            if escalate is not None:
                escalate(failure)
            else:  # pragma: no cover - drivers always escalate
                raise failure


class SimDriver(Driver):
    """Default driver: effects map directly onto simulator events.

    Used for system activities (network delivery, server handlers, timers)
    that are not subject to a node's one-process-at-a-time CPU discipline.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def spawn(self, gen: Generator[Effect, Any, Any], name: str = "") -> Task:
        """Create a task and schedule its first step at the current time."""
        task = Task(gen, self, name)
        sim = self.sim
        sim.watch(task)
        if sim.scheduler is not None:
            sim.schedule_nocancel(0, task.step, None, label=f"task:{task.name}")
        else:
            # Labels are read only by an installed Scheduler; skip the
            # per-event f-string on uncontrolled runs (likewise below).
            sim.schedule_nocancel(0, task.step, None)
        return task

    def handle(self, task: Task, effect: Effect) -> None:
        sim = self.sim
        if isinstance(effect, (Compute, Sleep)):
            task.state = TaskState.BLOCKED
            if sim.scheduler is not None:
                sim.schedule_nocancel(
                    effect.ns, self._resume, task, None, label=f"task:{task.name}"
                )
            else:
                sim.schedule_nocancel(effect.ns, self._resume, task, None)
        elif isinstance(effect, Suspend):
            task.state = TaskState.BLOCKED
            if effect.register is not None:
                effect.register(task)
        elif isinstance(effect, YieldCpu):
            task.state = TaskState.READY
            if sim.scheduler is not None:
                sim.schedule_nocancel(0, self._resume, task, None, label=f"task:{task.name}")
            else:
                sim.schedule_nocancel(0, self._resume, task, None)
        else:  # pragma: no cover - Effect subclasses are closed
            raise TypeError(f"unknown effect {effect!r}")

    def wake(self, task: Task, value: Any = None) -> None:
        if task.done:
            return
        task.state = TaskState.READY
        sim = self.sim
        if sim.scheduler is not None:
            sim.schedule_nocancel(0, self._resume, task, value, label=f"wake:{task.name}")
        else:
            sim.schedule_nocancel(0, self._resume, task, value)

    def _resume(self, task: Task, value: Any) -> None:
        if not task.done:
            task.step(value)

    def finished(self, task: Task) -> None:
        pass

    def escalate(self, failure: TaskFailure) -> None:
        self.sim.report_failure(failure)


def run_to_completion(gen: Iterator[Any], sim: Simulator | None = None) -> Any:
    """Convenience for tests: run one generator task to completion."""
    sim = sim or Simulator()
    driver = SimDriver(sim)
    task = driver.spawn(gen, "main")
    sim.run()
    if task.error is not None:
        raise TaskFailure(f"task {task.name} failed") from task.error
    return task.result
