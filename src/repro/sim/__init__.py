"""Deterministic discrete-event simulation kernel.

This package is the substrate for the whole reproduction: a heap-based
event queue with an integer-nanosecond clock (`repro.sim.kernel`),
generator-based lightweight tasks with pluggable drivers
(`repro.sim.process`), seeded per-component random streams
(`repro.sim.rng`), and structured tracing (`repro.sim.trace`).

Determinism contract: for a fixed :class:`repro.config.ClusterConfig`
(including its seed) every run produces bit-identical event orderings,
statistics, and simulated timings.  Ties in event time are broken by a
monotonic sequence number, never by hash order or id().
"""

from repro.sim.kernel import DeadlockError, Simulator
from repro.sim.process import (
    Compute,
    Effect,
    Sleep,
    Suspend,
    Task,
    TaskFailure,
    YieldCpu,
)
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder

__all__ = [
    "Simulator",
    "DeadlockError",
    "Task",
    "TaskFailure",
    "Effect",
    "Compute",
    "Sleep",
    "Suspend",
    "YieldCpu",
    "RngStreams",
    "TraceRecorder",
]
