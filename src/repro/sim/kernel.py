"""Event queue and simulated clock.

The simulator is a classic calendar loop: a binary heap of
``(time, seq, callback, args)`` entries.  ``seq`` is a global monotonic
counter so that events scheduled at the same tick fire in scheduling
order — this is what makes every run bit-for-bit reproducible.

Global deadlock is *detectable*: if the heap drains while registered
tasks are still blocked, :meth:`Simulator.run` raises
:class:`DeadlockError` listing the stuck tasks.  The coherence-protocol
stress tests rely on this to turn distributed deadlocks into loud,
shrinkable failures instead of hangs.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

__all__ = ["Simulator", "DeadlockError", "CancelHandle"]


class DeadlockError(RuntimeError):
    """The event queue drained while tasks were still blocked."""

    def __init__(self, blocked: Iterable[Any]):
        self.blocked = list(blocked)
        names = ", ".join(str(t) for t in self.blocked) or "<unknown>"
        super().__init__(f"simulation deadlock: event queue empty with blocked tasks: {names}")


class CancelHandle:
    """Handle returned by :meth:`Simulator.schedule`; lets the caller
    cancel a pending event (used by retransmission timers)."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator with an integer clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, CancelHandle, Callable[..., None], tuple]] = []
        self._seq: int = 0
        #: Number of events executed so far (profiling / regression metric).
        self.events_executed: int = 0
        #: Tasks that must be runnable or finished for the sim to be "done";
        #: registered by drivers so deadlock detection knows who is stuck.
        self._watched: list[Any] = []
        #: First unhandled exception raised by a task, re-raised by run().
        self._failure: BaseException | None = None

    # ------------------------------------------------------------------
    # scheduling

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> CancelHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative.  Returns a :class:`CancelHandle`.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        handle = CancelHandle()
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, handle, fn, args))
        return handle

    def schedule_at(self, when: int, fn: Callable[..., None], *args: Any) -> CancelHandle:
        """Schedule ``fn(*args)`` at absolute time ``when`` (>= now)."""
        return self.schedule(when - self.now, fn, *args)

    # ------------------------------------------------------------------
    # deadlock bookkeeping

    def watch(self, task: Any) -> None:
        """Register a task for deadlock detection.

        Watched objects must expose ``is_blocked`` (bool).
        """
        self._watched.append(task)

    def report_failure(self, exc: BaseException) -> None:
        """Record a fatal task failure; :meth:`run` re-raises it promptly."""
        if self._failure is None:
            self._failure = exc

    # ------------------------------------------------------------------
    # execution

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or ``until`` / ``max_events``).

        Returns the simulated time at which execution stopped.  Raises
        :class:`DeadlockError` if the queue drains with blocked tasks, and
        re-raises the first unhandled task exception.
        """
        heap = self._heap
        budget = max_events
        while heap:
            if self._failure is not None:
                exc, self._failure = self._failure, None
                raise exc
            when, _seq, handle, fn, args = heapq.heappop(heap)
            if handle.cancelled:
                continue
            if until is not None and when > until:
                # Put it back; we stop the clock at `until`.
                self._seq += 1
                heapq.heappush(heap, (when, _seq, handle, fn, args))
                self.now = until
                return self.now
            self.now = when
            self.events_executed += 1
            fn(*args)
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    return self.now
        if self._failure is not None:
            exc, self._failure = self._failure, None
            raise exc
        blocked = [t for t in self._watched if getattr(t, "is_blocked", False)]
        if blocked and until is None:
            raise DeadlockError(blocked)
        return self.now

    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)
