"""Event queue and simulated clock.

The simulator is a classic calendar loop: a binary heap of
``(time, seq, callback, args)`` entries.  ``seq`` is a global monotonic
counter so that events scheduled at the same tick fire in scheduling
order — this is what makes every run bit-for-bit reproducible.

Two wall-clock fast paths ride on that invariant without changing it:

* **Same-tick FIFO lane.**  A ``schedule(0, ...)`` call made while no
  :class:`Scheduler` is installed lands in a deque instead of the heap.
  Because ``seq`` is globally monotonic, everything already queued for
  the current tick has a *smaller* seq than a freshly scheduled delay-0
  event, so draining the deque in FIFO order — merged against the heap
  front by ``(time, seq)`` — fires events in exactly the order the
  heap-only loop would.  The deque is always empty by the time the
  clock advances, and :meth:`_run_controlled` flushes it back into the
  heap so the schedule explorer sees one uniform queue.
* **``schedule_nocancel``.**  Most events are never cancelled; the
  nocancel variants skip the per-event :class:`CancelHandle` allocation
  by sharing one immortal handle.  (Slotted event records were measured
  *slower* than plain tuples under ``heapq`` — tuple comparison is C,
  ``__lt__`` dispatch is not — so heap entries stay 6-tuples.)

Same-tick ordering is also the *only* nondeterminism a distributed
schedule has in this model, which makes it a controlled choice point:
installing a :class:`Scheduler` on :attr:`Simulator.scheduler` lets a
model checker (`repro.analysis.explore`) pick which of several events
tied at one tick fires first.  With no scheduler installed the loop is
untouched — seq order, bit-for-bit identical to the historical behavior.

Global deadlock is *detectable*: if the heap drains while registered
tasks are still blocked, :meth:`Simulator.run` raises
:class:`DeadlockError` listing the stuck tasks.  The coherence-protocol
stress tests rely on this to turn distributed deadlocks into loud,
shrinkable failures instead of hangs.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Iterable, Sequence

from repro.sim.calqueue import CalendarQueue

__all__ = [
    "Simulator",
    "CalendarSimulator",
    "DeadlockError",
    "CancelHandle",
    "KERNEL_BACKENDS",
    "PendingEvent",
    "Scheduler",
    "make_simulator",
]


class DeadlockError(RuntimeError):
    """The event queue drained while tasks were still blocked."""

    def __init__(self, blocked: Iterable[Any]) -> None:
        self.blocked = list(blocked)
        names = ", ".join(str(t) for t in self.blocked) or "<unknown>"
        super().__init__(f"simulation deadlock: event queue empty with blocked tasks: {names}")


class CancelHandle:
    """Handle returned by :meth:`Simulator.schedule`; lets the caller
    cancel a pending event (used by retransmission timers)."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


#: Shared handle for events nobody can cancel (``schedule_nocancel``).
#: One allocation for the lifetime of the process instead of one per event.
_NEVER_CANCELLED = CancelHandle()


class PendingEvent:
    """One live event offered to a :class:`Scheduler` at a choice point.

    ``seq`` is the event's global sequence number (the default tiebreak:
    the event with the lowest ``seq`` is what an uncontrolled run would
    fire).  ``label`` is the scheduling annotation supplied at
    :meth:`Simulator.schedule` time — e.g. ``deliver:n1:p0:...`` for a
    message delivery — which is what lets an explorer decide whether two
    choices commute.
    """

    __slots__ = ("seq", "label")

    def __init__(self, seq: int, label: str | None) -> None:
        self.seq = seq
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PendingEvent(seq={self.seq}, label={self.label!r})"


class Scheduler:
    """Same-tick ordering policy, consulted only when installed.

    :meth:`choose` is called whenever two or more live events are ready
    at the same tick; it returns the index (into ``events``, which is
    sorted by ``seq``) of the event to fire next.  The remaining events
    stay queued at the same tick with their original sequence numbers,
    so the scheduler is consulted again — with whatever new same-tick
    events the fired one scheduled — until the tick drains.  Returning 0
    everywhere reproduces the default seq order exactly.
    """

    def choose(self, now: int, events: Sequence[PendingEvent]) -> int:
        raise NotImplementedError


class Simulator:
    """A deterministic discrete-event simulator with an integer clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[
            tuple[int, int, CancelHandle, Callable[..., None], tuple[Any, ...], str | None]
        ] = []
        #: Delay-0 events scheduled while no Scheduler is installed; always
        #: drained before the clock advances (see module docstring).  Same
        #: 6-tuple layout as the heap so entries can be folded back in.
        self._fifo: deque[
            tuple[int, int, CancelHandle, Callable[..., None], tuple[Any, ...], str | None]
        ] = deque()
        self._seq: int = 0
        #: Number of events executed so far (profiling / regression metric).
        self.events_executed: int = 0
        #: Tasks that must be runnable or finished for the sim to be "done";
        #: registered by drivers so deadlock detection knows who is stuck.
        self._watched: list[Any] = []
        #: First unhandled exception raised by a task, re-raised by run().
        self._failure: BaseException | None = None
        #: Same-tick ordering policy.  None (the default) keeps the
        #: historical seq order on the untouched fast path; the schedule
        #: explorer installs one to turn ties into choice points.
        self.scheduler: Scheduler | None = None

    def clock(self) -> Callable[[], int]:
        """A zero-argument callable reading the current simulated time.

        Observability layers (trace recorders, span tracers) bind this
        rather than holding the simulator, so they can stamp records
        without any ability to perturb the schedule.
        """
        return lambda: self.now

    # ------------------------------------------------------------------
    # scheduling

    def schedule(
        self, delay: int, fn: Callable[..., None], *args: Any, label: str | None = None
    ) -> CancelHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative.  Returns a :class:`CancelHandle`.
        ``label`` annotates the event for a :class:`Scheduler` (unused —
        and free — when no scheduler is installed).
        """
        handle = CancelHandle()
        self._seq += 1
        if delay == 0 and self.scheduler is None:
            self._fifo.append((self.now, self._seq, handle, fn, args, label))
        elif delay < 0:
            raise ValueError(f"negative delay {delay}")
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, handle, fn, args, label))
        return handle

    def schedule_nocancel(
        self, delay: int, fn: Callable[..., None], *args: Any, label: str | None = None
    ) -> None:
        """:meth:`schedule` without the per-event handle allocation.

        For the ~90% of events nobody ever cancels (deliveries, wakeups,
        dispatches).  Fires in exactly the position :meth:`schedule`
        would have used — same seq, same ordering — but returns nothing.
        """
        self._seq += 1
        if delay == 0 and self.scheduler is None:
            self._fifo.append((self.now, self._seq, _NEVER_CANCELLED, fn, args, label))
        elif delay < 0:
            raise ValueError(f"negative delay {delay}")
        else:
            heapq.heappush(
                self._heap, (self.now + delay, self._seq, _NEVER_CANCELLED, fn, args, label)
            )

    def schedule_at(
        self, when: int, fn: Callable[..., None], *args: Any, label: str | None = None
    ) -> CancelHandle:
        """Schedule ``fn(*args)`` at absolute time ``when`` (>= now)."""
        return self.schedule(when - self.now, fn, *args, label=label)

    def schedule_at_nocancel(
        self, when: int, fn: Callable[..., None], *args: Any, label: str | None = None
    ) -> None:
        """:meth:`schedule_at` without the per-event handle allocation."""
        self.schedule_nocancel(when - self.now, fn, *args, label=label)

    # ------------------------------------------------------------------
    # deadlock bookkeeping

    def watch(self, task: Any) -> None:
        """Register a task for deadlock detection.

        Watched objects must expose ``is_blocked`` (bool).
        """
        self._watched.append(task)

    def report_failure(self, exc: BaseException) -> None:
        """Record a fatal task failure; :meth:`run` re-raises it promptly."""
        if self._failure is None:
            self._failure = exc

    # ------------------------------------------------------------------
    # execution

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or ``until`` / ``max_events``).

        Returns the simulated time at which execution stopped.  Raises
        :class:`DeadlockError` if the queue drains with blocked tasks, and
        re-raises the first unhandled task exception.
        """
        if self.scheduler is not None:
            return self._run_controlled(self.scheduler, until, max_events)
        heap = self._heap
        fifo = self._fifo
        heappop = heapq.heappop
        budget = max_events if max_events is not None else -1
        while True:
            if self._failure is not None:
                exc, self._failure = self._failure, None
                raise exc
            # Skip cancelled tombstones at both queue fronts before peeking.
            while heap and heap[0][2].cancelled:
                heappop(heap)
            while fifo and fifo[0][2].cancelled:
                fifo.popleft()
            # Pick the next live event by (time, seq) across both lanes.
            # FIFO entries are all at the current tick; a heap entry beats
            # them only if it is also at the current tick with a lower seq.
            if fifo:
                if heap and heap[0][0] == self.now and heap[0][1] < fifo[0][1]:
                    use_fifo = False
                    when = heap[0][0]
                else:
                    use_fifo = True
                    when = self.now
            elif heap:
                use_fifo = False
                when = heap[0][0]
            else:
                break
            if until is not None and when > until:
                # Stop the clock at `until`; pending events stay queued.
                # Fold the FIFO lane into the heap: entries carry their
                # true (time, seq), and `now` is about to move away from
                # the tick the lane's fast merge assumes.
                while fifo:
                    heapq.heappush(heap, fifo.popleft())
                self.now = until
                return until
            if use_fifo:
                _when, _seq, _handle, fn, args, _label = fifo.popleft()
                self.now = when
            else:
                when, _seq, _handle, fn, args, _label = heappop(heap)
                self.now = when
            self.events_executed += 1
            fn(*args)
            if budget > 0:
                budget -= 1
                if budget == 0:
                    return self.now
        if self._failure is not None:
            exc, self._failure = self._failure, None
            raise exc
        blocked = [t for t in self._watched if getattr(t, "is_blocked", False)]
        if blocked and until is None:
            raise DeadlockError(blocked)
        return self.now

    def _run_controlled(
        self, scheduler: Scheduler, until: int | None, max_events: int | None
    ) -> int:
        """The run loop with same-tick ordering delegated to ``scheduler``.

        Mirrors :meth:`run` exactly except that when several live events
        share the front tick, the scheduler picks which fires; the rest
        are re-queued with their original sequence numbers.  Cancellation
        still wins against a same-tick fire: tombstones are filtered both
        while gathering the tick's batch and again after re-queueing (a
        chosen event that cancels a sibling prevents it from running).
        """
        heap = self._heap
        # Events scheduled before the scheduler was installed may sit in
        # the delay-0 FIFO lane; fold them into the heap (original seqs)
        # so the explorer sees one uniform queue.  While a scheduler is
        # installed, `schedule` never adds to the FIFO.
        fifo = self._fifo
        while fifo:
            heapq.heappush(heap, fifo.popleft())
        budget = max_events
        while heap:
            if self._failure is not None:
                exc, self._failure = self._failure, None
                raise exc
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            batch = []
            while heap and heap[0][0] == when:
                entry = heapq.heappop(heap)
                if not entry[2].cancelled:
                    batch.append(entry)
            if not batch:
                continue
            if len(batch) == 1:
                index = 0
            else:
                index = scheduler.choose(
                    when, [PendingEvent(e[1], e[5]) for e in batch]
                )
                if not 0 <= index < len(batch):
                    raise IndexError(
                        f"scheduler chose {index} of {len(batch)} events at t={when}"
                    )
            chosen = batch[index]
            for pos, entry in enumerate(batch):
                if pos != index:
                    heapq.heappush(heap, entry)
            _when, _seq, _handle, fn, args, _label = chosen
            self.now = when
            self.events_executed += 1
            fn(*args)
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    return self.now
        if self._failure is not None:
            exc, self._failure = self._failure, None
            raise exc
        blocked = [t for t in self._watched if getattr(t, "is_blocked", False)]
        if blocked and until is None:
            raise DeadlockError(blocked)
        return self.now

    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap) + len(self._fifo)


class CalendarSimulator(Simulator):
    """:class:`Simulator` with the heap timer lane replaced by a
    :class:`~repro.sim.calqueue.CalendarQueue`.

    Bit-for-bit schedule-compatible with the heap kernel: entries are
    the same 6-tuples, ``seq`` allocation is identical, the delay-0 FIFO
    lane and its ``(when, seq)`` merge are unchanged, and the controlled
    (explorer) path folds the calendar back into ``self._heap`` and runs
    the *parent's* loop verbatim — so a :class:`Scheduler` sees exactly
    the one uniform queue it has always seen.  Only the container for
    delay>0 timers changes; every committed golden fixture pins this.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cal = CalendarQueue()

    def schedule(
        self, delay: int, fn: Callable[..., None], *args: Any, label: str | None = None
    ) -> CancelHandle:
        handle = CancelHandle()
        self._seq += 1
        if delay == 0 and self.scheduler is None:
            self._fifo.append((self.now, self._seq, handle, fn, args, label))
        elif delay < 0:
            raise ValueError(f"negative delay {delay}")
        elif self.scheduler is None:
            self._cal.push((self.now + delay, self._seq, handle, fn, args, label))
        else:
            # Controlled mode: keep the uniform heap the explorer expects.
            heapq.heappush(self._heap, (self.now + delay, self._seq, handle, fn, args, label))
        return handle

    def schedule_nocancel(
        self, delay: int, fn: Callable[..., None], *args: Any, label: str | None = None
    ) -> None:
        self._seq += 1
        if delay == 0 and self.scheduler is None:
            self._fifo.append((self.now, self._seq, _NEVER_CANCELLED, fn, args, label))
        elif delay < 0:
            raise ValueError(f"negative delay {delay}")
        elif self.scheduler is None:
            self._cal.push((self.now + delay, self._seq, _NEVER_CANCELLED, fn, args, label))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, self._seq, _NEVER_CANCELLED, fn, args, label)
            )

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        if self.scheduler is not None:
            return self._run_controlled(self.scheduler, until, max_events)
        if self._heap:
            # Timers parked in the heap by a controlled phase (a scheduler
            # was installed, ran, and was removed): fold them back into
            # the calendar.  Heap entries are never in the past, so the
            # calendar's day invariant holds.
            cal_push = self._cal.push
            heap = self._heap
            while heap:
                cal_push(heapq.heappop(heap))
        cal = self._cal
        fifo = self._fifo
        budget = max_events if max_events is not None else -1
        while True:
            if self._failure is not None:
                exc, self._failure = self._failure, None
                raise exc
            # The calendar purges cancelled tombstones at its front in
            # peek(); only the FIFO lane needs the explicit skip.
            while fifo and fifo[0][2].cancelled:
                fifo.popleft()
            head = cal.peek()
            # Pick the next live event by (time, seq) across both lanes —
            # the same merge as the heap loop.
            if fifo:
                if head is not None and head[0] == self.now and head[1] < fifo[0][1]:
                    use_fifo = False
                    when = head[0]
                else:
                    use_fifo = True
                    when = self.now
            elif head is not None:
                use_fifo = False
                when = head[0]
            else:
                break
            if until is not None and when > until:
                # Stop the clock at `until`; pending events stay queued.
                # FIFO entries carry their true (time, seq), so folding
                # them into the calendar preserves order.
                cal_push = cal.push
                while fifo:
                    cal_push(fifo.popleft())
                self.now = until
                return until
            if use_fifo:
                _when, _seq, _handle, fn, args, _label = fifo.popleft()
                self.now = when
            else:
                # pop_front: `head` came from peek() this iteration and
                # nothing touched the calendar since — no rescan.
                _when, _seq, _handle, fn, args, _label = cal.pop_front()
                self.now = when
            self.events_executed += 1
            fn(*args)
            if budget > 0:
                budget -= 1
                if budget == 0:
                    return self.now
        if self._failure is not None:
            exc, self._failure = self._failure, None
            raise exc
        blocked = [t for t in self._watched if getattr(t, "is_blocked", False)]
        if blocked and until is None:
            raise DeadlockError(blocked)
        return self.now

    def _run_controlled(
        self, scheduler: Scheduler, until: int | None, max_events: int | None
    ) -> int:
        # Fold the calendar into the heap and run the parent loop: the
        # explorer's semantics (batching, choose(), re-queueing) must be
        # byte-identical under both kernels, so there is exactly one
        # implementation of them.
        if self._cal:
            self._heap.extend(self._cal.drain())
            heapq.heapify(self._heap)
        return super()._run_controlled(scheduler, until, max_events)

    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap) + len(self._fifo) + len(self._cal)


#: Known kernel backends -> human summary (``make_simulator`` dispatches
#: on the name; the summaries feed error messages and docs).
KERNEL_BACKENDS: dict[str, str] = {
    "calendar": "calendar/bucket-queue timer lane, O(1) amortised (default)",
    "heap": "legacy single binary-heap timer lane",
}


def make_simulator(kernel: str | None = None) -> Simulator:
    """Instantiate the configured event-kernel backend.

    ``kernel=None`` (the :class:`~repro.config.ClusterConfig` default)
    defers to the ``REPRO_KERNEL`` environment variable, falling back to
    ``"calendar"`` — so CI can pin a whole test run to the legacy heap
    kernel without touching any config.  An explicit config value beats
    the environment.  Unknown names raise a structured
    :class:`repro.config.ConfigError` with the known backends and, for
    near-misses, the name the caller probably meant.
    """
    if kernel is None:
        kernel = os.environ.get("REPRO_KERNEL", "calendar")
    if kernel == "calendar":
        return CalendarSimulator()
    if kernel == "heap":
        return Simulator()

    import difflib

    from repro.config import ConfigError

    known = tuple(sorted(KERNEL_BACKENDS))
    close = difflib.get_close_matches(str(kernel), known, n=1, cutoff=0.6)
    raise ConfigError("kernel", kernel, known, suggestion=close[0] if close else None)
