"""Simulation-level synchronisation primitives.

These are *kernel-internal* primitives used by protocol code running
inside the simulated machines (page-table locks, reply gates).  They are
distinct from `repro.sync`, which implements IVY's *client-visible*
synchronisation (eventcounts, binary locks) on top of the shared virtual
memory itself, exactly as the paper does.

All primitives are generator-style: callers use ``yield from
lock.acquire()`` and compose under any :class:`repro.sim.process.Driver`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.process import Effect, Suspend, Task

__all__ = ["SimLock", "Gate", "WaitQueue"]


class SimLock:
    """A FIFO mutex for simulated tasks.

    Used for per-page table-entry locks: Li & Hudak's algorithms guard
    every fault handler and server with ``lock(PTable[p].lock)``.
    """

    __slots__ = ("_held", "_waiters", "holder")

    def __init__(self) -> None:
        self._held = False
        self._waiters: deque[Task] = deque()
        #: Debugging aid: the task currently holding the lock.
        self.holder: Task | None = None

    @property
    def locked(self) -> bool:
        return self._held

    def acquire(self) -> Generator[Effect, Any, None]:
        """Acquire the lock, blocking in FIFO order."""
        if not self._held:
            self._held = True
            return
        yield Suspend(self._waiters.append)
        # Ownership was transferred to us by release(); nothing to do.

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._held:
            return False
        self._held = True
        return True

    def release(self) -> None:
        """Release; hands the lock directly to the oldest waiter."""
        if not self._held:
            raise RuntimeError("release of unheld SimLock")
        if self._waiters:
            waiter = self._waiters.popleft()
            # Lock stays held; ownership passes to the waiter.
            waiter.wake()
        else:
            self._held = False
        self.holder = None


class Gate:
    """A one-shot value gate: one task waits, another posts a value.

    This is the reply slot of the request/reply transport: the requester
    waits on the gate; the delivery event posts the reply payload.
    """

    __slots__ = ("_posted", "_value", "_waiter")

    def __init__(self) -> None:
        self._posted = False
        self._value: Any = None
        self._waiter: Task | None = None

    @property
    def posted(self) -> bool:
        return self._posted

    def wait(self) -> Generator[Effect, Any, Any]:
        """Wait for the value (returns immediately if already posted)."""
        if self._posted:
            return self._value
        if self._waiter is not None:
            raise RuntimeError("Gate already has a waiter")

        def register(task: Task) -> None:
            self._waiter = task

        value = yield Suspend(register)
        return value

    def post(self, value: Any = None) -> None:
        """Post the value, waking the waiter if present.  Idempotent posts
        are rejected — a double post indicates a protocol bug."""
        if self._posted:
            raise RuntimeError("Gate posted twice")
        self._posted = True
        self._value = value
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.wake(value)


class WaitQueue:
    """A broadcast wait-list: many tasks park, a signal wakes all (or one).

    Backs condition-style waits such as "a frame became free".
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._waiters)

    def wait(self) -> Generator[Effect, Any, Any]:
        value = yield Suspend(self._waiters.append)
        return value

    def wake_one(self, value: Any = None) -> bool:
        if not self._waiters:
            return False
        self._waiters.popleft().wake(value)
        return True

    def wake_all(self, value: Any = None) -> int:
        n = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().wake(value)
        return n
