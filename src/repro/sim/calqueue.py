"""Calendar-queue timer lane: the kernel's heap, bucketed by time.

The legacy kernel keeps every pending timer in one binary heap, paying
O(log n) tuple comparisons per enqueue *and* per dequeue.  At two nodes
that heap is a handful of entries; at 256 nodes it permanently holds
hundreds of far-future retransmission timers (one per outstanding
request, 500 ms out), so every delivery pushed and popped past them —
the superlinear dispatch term the 64-256-node scale runs exposed.

A calendar queue (Brown 1988) replaces the single heap with a wheel of
``NBUCKETS`` buckets of ``2**WIDTH_SHIFT`` ns each — one "day" of
``NBUCKETS << WIDTH_SHIFT`` ns — plus an overflow heap for events beyond
the current day (the retransmit timers, by design).  Near-term events
touch only their own small bucket: enqueue and dequeue are O(1)
amortised in the total queue size, and the far-future timers sit in the
overflow heap without being compared against anything until their day
arrives.

**Ordering is exact, not approximate.**  Entries are the kernel's
6-tuples ``(when, seq, handle, fn, args, label)``; the reproducibility
invariant is that events fire in ``(when, seq)`` order:

- within a bucket, entries form a ``heapq`` heap — tuple comparison
  yields ``(when, seq)`` order directly (``seq`` is unique, so the
  non-comparable tail is never compared);
- buckets within a day cover disjoint, increasing time ranges;
- the wheel holds *only* the current day and the overflow heap *only*
  later days, so the wheel's minimum always precedes the overflow's.

The day invariant is maintained by doing the day advance at *pop* time,
never at peek: ``Simulator.run``'s until-path peeks without popping and
then lets callers schedule at times earlier than the peeked event, which
would land behind an eagerly-advanced wheel.  A push into the current
day can land before the cursor (same until-path: the clock moved
backwards relative to the last pop's bucket), so pushes rewind the
cursor; pops advance it.  Cancelled tombstones are filtered at the front
of each bucket on peek — the same lazy discipline the heap loop uses —
and in bulk when a day refills from the overflow heap.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import CancelHandle

__all__ = ["CalendarQueue", "NBUCKETS", "WIDTH_SHIFT"]

#: log2 of the bucket width: 2**16 ns = 65.536 us per bucket.  Chosen so
#: the common protocol delays (20 us local delivery, 500 us transport
#: CPU, link occupancies) span one to a few buckets.
WIDTH_SHIFT = 16

#: Buckets per day (must be a power of two).  256 buckets of 65.536 us
#: give a 16.777 ms day: page-fault round trips stay inside the wheel,
#: while 500 ms retransmission timeouts land ~30 days out in the
#: overflow heap — exactly the split the design wants.
NBUCKETS = 256

_BUCKET_MASK = NBUCKETS - 1
_DAY_SHIFT = WIDTH_SHIFT + 8  # NBUCKETS == 1 << 8

#: The kernel's event record (see repro.sim.kernel.Simulator._heap).
Entry = tuple[
    int, int, "CancelHandle", Callable[..., None], tuple[Any, ...], str | None
]


class CalendarQueue:
    """Exact-order calendar queue over the kernel's 6-tuple entries.

    ``len()`` counts queued entries including cancelled tombstones, the
    same accounting the heap lane reports via ``Simulator.pending``.
    """

    __slots__ = ("_wheel", "_overflow", "_day", "_cursor", "_len")

    def __init__(self) -> None:
        self._wheel: list[list[Entry]] = [[] for _ in range(NBUCKETS)]
        self._overflow: list[Entry] = []
        #: Day index (``when >> _DAY_SHIFT``) the wheel currently covers.
        self._day = 0
        #: First wheel bucket that may be non-empty; buckets before it
        #: are empty and stay empty until a push rewinds the cursor.
        self._cursor = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # ------------------------------------------------------------------

    def push(self, entry: Entry) -> None:
        """Insert ``entry``; ``entry[0]`` must be >= the current day's
        start (guaranteed by the kernel: events are never scheduled in
        the past, and the day only advances onto executed events)."""
        when = entry[0]
        if (when >> _DAY_SHIFT) == self._day:
            idx = (when >> WIDTH_SHIFT) & _BUCKET_MASK
            heapq.heappush(self._wheel[idx], entry)
            if idx < self._cursor:
                self._cursor = idx
        else:
            heapq.heappush(self._overflow, entry)
        self._len += 1

    def peek(self) -> Entry | None:
        """The live ``(when, seq)``-minimum entry, or None when empty.

        Purges cancelled tombstones from the queue front as a side
        effect; never advances the day (see module docstring)."""
        wheel = self._wheel
        cur = self._cursor
        heappop = heapq.heappop
        while cur < NBUCKETS:
            bucket = wheel[cur]
            while bucket and bucket[0][2].cancelled:
                heappop(bucket)
                self._len -= 1
            if bucket:
                self._cursor = cur
                return bucket[0]
            cur += 1
        self._cursor = NBUCKETS
        overflow = self._overflow
        while overflow and overflow[0][2].cancelled:
            heappop(overflow)
            self._len -= 1
        return overflow[0] if overflow else None

    def pop(self) -> Entry:
        """Remove and return the live minimum entry."""
        if self.peek() is None:
            raise IndexError("pop from an empty CalendarQueue")
        return self.pop_front()

    def pop_front(self) -> Entry:
        """Remove and return the entry the immediately preceding
        :meth:`peek` returned (which must have been non-None).

        The cursor still points at the head's bucket — or past the wheel
        with the head at the overflow front — so no rescan is needed.
        Callers must not have pushed or cancelled since that peek; the
        run loop's peek→merge→pop sequence satisfies this by shape.

        When the wheel is drained, jumps the day straight to the one
        containing the overflow minimum (no scan across empty days — a
        500 ms retransmit gap is one jump) and refills that day's
        buckets, dropping cancelled overflow entries in bulk.
        """
        if self._cursor < NBUCKETS:
            self._len -= 1
            return heapq.heappop(self._wheel[self._cursor])
        # Wheel empty: the head is the overflow minimum.  Rebase the
        # wheel on its day and move that whole day out of the overflow.
        overflow = self._overflow
        wheel = self._wheel
        entry = overflow[0]
        day = entry[0] >> _DAY_SHIFT
        self._day = day
        day_end = (day + 1) << _DAY_SHIFT
        heappop = heapq.heappop
        heappush = heapq.heappush
        while overflow and overflow[0][0] < day_end:
            moved = heappop(overflow)
            if moved[2].cancelled:
                self._len -= 1
                continue
            heappush(wheel[(moved[0] >> WIDTH_SHIFT) & _BUCKET_MASK], moved)
        idx = (entry[0] >> WIDTH_SHIFT) & _BUCKET_MASK
        self._cursor = idx
        heapq.heappop(wheel[idx])
        self._len -= 1
        return entry

    def drain(self) -> list[Entry]:
        """Remove and return every queued entry (tombstones included).

        Order is arbitrary — the consumer (``_run_controlled``) heapifies.
        """
        out: list[Entry] = []
        for bucket in self._wheel:
            out.extend(bucket)
            bucket.clear()
        out.extend(self._overflow)
        self._overflow.clear()
        self._len = 0
        self._cursor = 0
        return out
