"""Ports and mailboxes: explicit send/receive over the ring.

A port is ``(node, port_id)``.  ``send`` marshals the payload, ships it
(one-way, no reply — delivery is reliable in the simulator when frame
loss is off; with loss the transport's request machinery is used so the
comparison against the SVM stays apples-to-apples), and the receiver
pays the unmarshal cost when it dequeues.

Processes receive with ``receive(port)``, blocking until a message is
queued — multiple threads of control and explicit data movement, the
programming model the paper contrasts with shared virtual memory.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.api.ivy import Ivy, IvyProcessContext
from repro.msgpass.marshal import marshal_cost, unmarshal_cost, wire_size
from repro.net.packet import request_size
from repro.sim.process import Compute, Effect, Suspend, Task

__all__ = ["MessagePassing"]

OP_DELIVER = "mp.deliver"


class _Mailbox:
    __slots__ = ("queue", "waiters")

    def __init__(self) -> None:
        self.queue: deque[tuple[Any, int, int]] = deque()
        self.waiters: deque[Task] = deque()


class MessagePassing:
    """A port/mailbox service over every node of a booted Ivy system."""

    def __init__(self, ivy: Ivy) -> None:
        self.ivy = ivy
        self.cpu = ivy.config.cpu
        self._boxes: list[dict[int, _Mailbox]] = [
            {} for _ in range(ivy.config.nodes)
        ]
        for node in ivy.cluster.nodes:
            node.remote.register(OP_DELIVER, self._make_deliver_handler(node.node_id))

    def _make_deliver_handler(self, node_id: int):
        def handler(origin: int, payload: tuple) -> Generator:
            return self._serve_deliver(node_id, payload)
            yield  # pragma: no cover - makes this a generator

        return handler

    def _box(self, node: int, port: int) -> _Mailbox:
        boxes = self._boxes[node]
        box = boxes.get(port)
        if box is None:
            box = boxes[port] = _Mailbox()
        return box

    # ------------------------------------------------------------------
    # client API (run inside a process)

    def send(
        self,
        ctx: IvyProcessContext,
        dst_node: int,
        port: int,
        payload: Any,
        nbytes: int,
        elements: int = 0,
    ) -> Generator[Effect, Any, None]:
        """Marshal and ship ``payload`` to ``(dst_node, port)``.

        ``nbytes`` is the flat payload size; ``elements`` counts
        pointer-linked nodes that must be chased and relocated.
        """
        yield Compute(marshal_cost(self.cpu, nbytes, elements))
        ctx.node.counters.inc("mp_sends")
        ctx.node.counters.inc("mp_bytes_sent", nbytes)
        if dst_node == ctx.node_id:
            self._serve_deliver(dst_node, (port, payload, nbytes, elements))
            return
        yield from ctx.node.remote.request(
            dst_node,
            OP_DELIVER,
            (port, payload, nbytes, elements),
            nbytes=request_size(wire_size(nbytes, elements)),
        )

    def receive(
        self, ctx: IvyProcessContext, port: int
    ) -> Generator[Effect, Any, Any]:
        """Dequeue the next message on the caller's node at ``port``,
        blocking if the mailbox is empty.  Charges unmarshal cost."""
        box = self._box(ctx.node_id, port)
        if not box.queue:
            value = yield Suspend(box.waiters.append)
            # The deliverer handed the message straight to us.
            payload, nbytes, elements = value
        else:
            payload, nbytes, elements = box.queue.popleft()
        yield Compute(unmarshal_cost(self.cpu, nbytes, elements))
        ctx.node.counters.inc("mp_receives")
        return payload

    # ------------------------------------------------------------------

    def _serve_deliver(self, node_id: int, msg: tuple) -> Any:
        port, payload, nbytes, elements = msg
        box = self._box(node_id, port)
        if box.waiters:
            box.waiters.popleft().wake((payload, nbytes, elements))
        else:
            box.queue.append((payload, nbytes, elements))
        return True
