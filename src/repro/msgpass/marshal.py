"""Marshaling cost model for message passing.

"Passing a list data structure by sending messages will introduce
considerable complexity in programming and substantial overhead in both
space and time" [14]; "in a remote procedure call, there is no good way
to pass a pointer argument" [24].

The model below charges the costs a late-1980s Pascal marshaller would
pay: a per-byte copy into the wire buffer, plus a per-element overhead
for every pointer-linked node that must be chased, type-tagged and
relocated (and symmetrically reconstructed on the receiving side —
fresh allocation plus pointer fix-up, which is why unmarshalling is
costlier).
"""

from __future__ import annotations

from repro.config import CpuConfig

__all__ = ["marshal_cost", "unmarshal_cost", "LINKED_NODE_OVERHEAD_OPS", "wire_size"]

#: Simple operations spent per pointer-linked element when packing
#: (chase pointer, tag, copy header) — and 1.5x that when unpacking
#: (allocate, fix up pointers).
LINKED_NODE_OVERHEAD_OPS = 40

#: Wire framing per linked element (type tag + relocated pointer).
PER_ELEMENT_WIRE_BYTES = 8


def wire_size(payload_bytes: int, elements: int = 0) -> int:
    """Bytes on the wire for a structure of ``payload_bytes`` spread over
    ``elements`` pointer-linked nodes."""
    return payload_bytes + elements * PER_ELEMENT_WIRE_BYTES


def marshal_cost(cpu: CpuConfig, payload_bytes: int, elements: int = 0) -> int:
    """CPU nanoseconds to pack a structure for the wire."""
    return (
        payload_bytes * cpu.ns_per_byte_copy
        + elements * LINKED_NODE_OVERHEAD_OPS * cpu.ns_per_op
    )


def unmarshal_cost(cpu: CpuConfig, payload_bytes: int, elements: int = 0) -> int:
    """CPU nanoseconds to unpack on arrival (allocation + fix-up)."""
    return (
        payload_bytes * cpu.ns_per_byte_copy
        + (elements * LINKED_NODE_OVERHEAD_OPS * 3 // 2) * cpu.ns_per_op
    )
