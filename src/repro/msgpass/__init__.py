"""Message-passing baseline: the model the paper argues against.

A classic port/mailbox system over the same ring, with an explicit
marshaling cost model.  This substrate exists so the repository can
*measure* the paper's motivating claims rather than assert them:

- passing complex (pointer-rich) data structures requires packing and
  unpacking, charged per element (`repro.msgpass.marshal`);
- data movement is explicit: the programmer ships bytes to named ports
  (`repro.msgpass.channel`), versus the SVM's fault-driven migration.

The message-passing versus shared-memory ablation benchmark
(`repro.exps.ablation_msgpass`) runs the same workloads on both.
"""

from repro.msgpass.channel import MessagePassing
from repro.msgpass.marshal import marshal_cost, unmarshal_cost, LINKED_NODE_OVERHEAD_OPS

__all__ = [
    "MessagePassing",
    "marshal_cost",
    "unmarshal_cost",
    "LINKED_NODE_OVERHEAD_OPS",
]
