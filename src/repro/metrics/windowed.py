"""Windowed instruments: time series over simulated-time buckets.

Whole-run aggregates answer "how slow was the tail"; the saturation
questions need "when did it get slow".  A :class:`WindowedMetrics`
registry buckets every observation into fixed-width simulated-time
windows (``window = t // window_ns``), so an instrument becomes a
series of per-window summaries instead of one number.  Three shapes:

- :class:`WindowedCounter` — events per window (faults, messages);
- :class:`WindowedGauge` — last value and peak per window (backlog);
- :class:`WindowedHistogram` — one histogram per window (either
  backend from :mod:`repro.metrics.hist`), for per-window percentiles.

Windows are keyed sparsely by index: a quiet window costs nothing, and
the memory bound is O(active windows × instruments), independent of the
observation count when the ``logbucket`` backend is selected.

Like every instrument here, windowing is pure observation: it never
schedules events, consumes RNG, or reads the wall clock — timestamps
come exclusively from the bound simulated clock of the caller.
"""

from __future__ import annotations

from repro.metrics.hist import AnyHistogram, make_histogram

__all__ = [
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "WindowedMetrics",
]


class WindowedCounter:
    """Monotone per-window event counts."""

    __slots__ = ("name", "windows")

    def __init__(self, name: str) -> None:
        self.name = name
        self.windows: dict[int, int] = {}

    def add(self, window: int, by: int = 1) -> None:
        self.windows[window] = self.windows.get(window, 0) + by

    @property
    def total(self) -> int:
        return sum(self.windows.values())


class WindowedGauge:
    """Per-window last value and peak of a sampled level."""

    __slots__ = ("name", "windows")

    def __init__(self, name: str) -> None:
        self.name = name
        #: window -> (last value, peak value)
        self.windows: dict[int, tuple[float, float]] = {}

    def set(self, window: int, value: float) -> None:
        prev = self.windows.get(window)
        if prev is None:
            self.windows[window] = (value, value)
        else:
            self.windows[window] = (value, max(prev[1], value))


class WindowedHistogram:
    """One histogram per window, lazily created."""

    __slots__ = ("name", "backend", "alpha", "windows")

    def __init__(self, name: str, backend: str = "exact", alpha: float = 0.01) -> None:
        self.name = name
        self.backend = backend
        self.alpha = alpha
        self.windows: dict[int, AnyHistogram] = {}

    def observe(self, window: int, value: float) -> None:
        hist = self.windows.get(window)
        if hist is None:
            hist = self.windows[window] = make_histogram(
                self.name, self.backend, self.alpha
            )
        hist.observe(value)


class WindowedMetrics:
    """A registry of windowed instruments sharing one window width."""

    def __init__(
        self, window_ns: int, hist_backend: str = "exact", alpha: float = 0.01
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.window_ns = window_ns
        self.hist_backend = hist_backend
        self.alpha = alpha
        self.counters: dict[str, WindowedCounter] = {}
        self.gauges: dict[str, WindowedGauge] = {}
        self.histograms: dict[str, WindowedHistogram] = {}

    def window_of(self, t: int) -> int:
        return t // self.window_ns

    # ------------------------------------------------------------------
    # recording (t is always a simulated-time stamp in ns)

    def count(self, name: str, t: int, by: int = 1) -> None:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = WindowedCounter(name)
        c.add(self.window_of(t), by)

    def gauge(self, name: str, t: int, value: float) -> None:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = WindowedGauge(name)
        g.set(self.window_of(t), value)

    def observe(self, name: str, t: int, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = WindowedHistogram(
                name, self.hist_backend, self.alpha
            )
        h.observe(self.window_of(t), value)

    # ------------------------------------------------------------------
    # queries

    def counter_window(self, name: str, window: int) -> int:
        c = self.counters.get(name)
        return c.windows.get(window, 0) if c is not None else 0

    def gauge_window(self, name: str, window: int) -> tuple[float, float] | None:
        g = self.gauges.get(name)
        return g.windows.get(window) if g is not None else None

    def hist_window(self, name: str, window: int) -> AnyHistogram | None:
        h = self.histograms.get(name)
        return h.windows.get(window) if h is not None else None

    def max_window(self) -> int:
        """Largest window index holding any data (-1 when empty)."""
        out = -1
        for c in self.counters.values():
            if c.windows:
                out = max(out, max(c.windows))
        for g in self.gauges.values():
            if g.windows:
                out = max(out, max(g.windows))
        for h in self.histograms.values():
            if h.windows:
                out = max(out, max(h.windows))
        return out
