"""Speedup measurement harness — the paper's methodology.

"The speedup of a program is the ratio of the execution time of the
program on a single processor to that on the shared virtual memory
system. ... all the programs in the experiments partition their
problems by creating a certain number of processes according to the
number of processors used."

Accordingly, ``measure_speedups`` runs the *same workload* once per
processor count p (a fresh p-node cluster, p worker processes), checks
every run's numerical output against the sequential golden, and reports
``T(1) / T(p)`` in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.api.ivy import Ivy
from repro.apps.common import AppProtocol
from repro.config import ClusterConfig
from repro.metrics.collect import Counters

__all__ = ["RunResult", "SpeedupResult", "run_app", "measure_speedups"]


@dataclass
class RunResult:
    """One program execution on one cluster size."""

    nprocs: int
    time_ns: int
    counters: Counters
    #: Flat medium counters (``FabricStats.snapshot()``).  The field
    #: name predates pluggable fabrics; the keys depend on ``fabric``.
    ring_stats: dict[str, int]
    result: Any = None
    #: Which network backend carried the run's traffic.
    fabric: str = "ring"
    #: Simulator events executed (the deterministic work measure that
    #: ``repro.exps.scale`` turns into events per simulated second).
    events_executed: int = 0


@dataclass
class SpeedupResult:
    """A full speedup curve for one application."""

    app_name: str
    runs: list[RunResult] = field(default_factory=list)

    @property
    def procs(self) -> list[int]:
        return [r.nprocs for r in self.runs]

    @property
    def base_time(self) -> int:
        for run in self.runs:
            if run.nprocs == 1:
                return run.time_ns
        raise ValueError("no single-processor run recorded")

    def speedup(self, nprocs: int) -> float:
        base = self.base_time
        for run in self.runs:
            if run.nprocs == nprocs:
                return base / run.time_ns
        raise KeyError(f"no run with {nprocs} processors")

    def curve(self) -> list[tuple[int, float]]:
        return [(r.nprocs, self.speedup(r.nprocs)) for r in self.runs]


def run_app(
    app_factory: Callable[[int], AppProtocol],
    nprocs: int,
    config: ClusterConfig | None = None,
    check: bool = True,
    obs: Any = None,
) -> RunResult:
    """Run one app instance on a fresh ``nprocs``-node cluster.

    Pass an :class:`repro.obs.Observability` as ``obs`` to trace the run
    and keep the handle (spans, instruments, profiler) afterwards.
    """
    base = config or ClusterConfig()
    cluster_config = base.replace(nodes=nprocs)
    app = app_factory(nprocs)
    ivy = Ivy(cluster_config, obs=obs)
    result = ivy.run(app.main)
    if check:
        app.check(result)
    return RunResult(
        nprocs=nprocs,
        time_ns=ivy.time_ns,
        counters=ivy.cluster.total_counters(),
        ring_stats=ivy.cluster.fabric.stats.snapshot(),
        result=result,
        fabric=ivy.cluster.fabric.name,
        events_executed=ivy.cluster.sim.events_executed,
    )


def measure_speedups(
    app_factory: Callable[[int], AppProtocol],
    procs: Sequence[int] = (1, 2, 4, 8),
    config: ClusterConfig | None = None,
    check: bool = True,
) -> SpeedupResult:
    """The paper's experiment: T(1)/T(p) over processor counts."""
    name = app_factory(1).name
    out = SpeedupResult(app_name=name)
    for p in procs:
        out.runs.append(run_app(app_factory, p, config=config, check=check))
    return out
