"""Measurement infrastructure: counters, epochs, speedup harness, reports.

`repro.metrics.speedup` and `repro.metrics.report` are imported lazily by
their users to keep this package import-light for the machine substrate.
"""

from repro.metrics.collect import Counters, EpochLog

__all__ = ["Counters", "EpochLog"]
