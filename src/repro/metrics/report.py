"""ASCII report formatting for the experiment scripts.

Every ``repro.exps.*`` module prints its table/series through these
helpers so the output format matches across experiments (and can be
asserted on in tests).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.metrics.speedup import SpeedupResult

__all__ = ["ascii_table", "format_speedup_table", "format_series"]


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append(sep)
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def format_speedup_table(results: Sequence[SpeedupResult]) -> str:
    """One row per app, one column per processor count."""
    procs = results[0].procs
    headers = ["program"] + [f"p={p}" for p in procs]
    rows = []
    for res in results:
        rows.append(
            [res.app_name] + [f"{res.speedup(p):.2f}" for p in procs]
        )
    return ascii_table(headers, rows, title="Speedup = T(1) / T(p), simulated time")


def format_series(
    title: str, labels: Sequence[Any], values: Sequence[Any], label_hdr: str, value_hdr: str
) -> str:
    return ascii_table([label_hdr, value_hdr], list(zip(labels, values)), title=title)
