"""ASCII report formatting for the experiment scripts.

Every ``repro.exps.*`` module prints its table/series through these
helpers so the output format matches across experiments (and can be
asserted on in tests).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.metrics.hist import Histogram, Metrics
from repro.metrics.speedup import SpeedupResult
from repro.net.fabric import FabricStats

__all__ = [
    "ascii_table",
    "format_fabric_stats",
    "format_speedup_table",
    "format_series",
    "format_instruments",
    "format_profile",
    "format_window_profile",
    "format_busiest_links",
    "format_slo_report",
    "format_span_stats",
    "fault_latency_stats",
]


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append(sep)
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def format_speedup_table(results: Sequence[SpeedupResult]) -> str:
    """One row per app, one column per processor count."""
    procs = results[0].procs
    headers = ["program"] + [f"p={p}" for p in procs]
    rows = []
    for res in results:
        rows.append(
            [res.app_name] + [f"{res.speedup(p):.2f}" for p in procs]
        )
    return ascii_table(headers, rows, title="Speedup = T(1) / T(p), simulated time")


def format_fabric_stats(
    stats: FabricStats,
    total_ns: int,
    title: str = "network fabric",
    limit: int = 16,
) -> str:
    """Per-link utilisation/queueing table for any fabric backend.

    The shared ring renders as its single ``medium`` link; the switched
    fabric as one ``tx[i]``/``rx[i]`` row per station port.  Links are
    ordered busiest-first and truncated to ``limit`` rows (a 256-node
    switched fabric has 512 ports), with a summary row first so the
    aggregate never depends on the truncation.
    """
    counters = stats.snapshot()
    summary = ", ".join(f"{k}={v}" for k, v in counters.items())
    links = sorted(
        stats.links().items(), key=lambda kv: kv[1].busy_ns, reverse=True
    )
    rows: list[list[str]] = []
    for name, link in links[:limit]:
        util = 100.0 * link.utilisation(total_ns)
        rows.append(
            [
                name,
                str(link.messages),
                f"{link.busy_ns / 1e6:.1f}",
                f"{util:.1f}%",
                f"{link.peak_backlog_ns / 1e6:.2f}",
            ]
        )
    if len(links) > limit:
        rows.append([f"(+{len(links) - limit} more links)", "-", "-", "-", "-"])
    if not rows:
        rows.append(["(no links)", "-", "-", "-", "-"])
    table = ascii_table(
        ["link", "msgs", "busy ms", "util", "peak backlog ms"],
        rows,
        title=f"{title}: {summary}",
    )
    return table


def format_series(
    title: str, labels: Sequence[Any], values: Sequence[Any], label_hdr: str, value_hdr: str
) -> str:
    return ascii_table([label_hdr, value_hdr], list(zip(labels, values)), title=title)


# ---------------------------------------------------------------------------
# observability reports (repro.obs)


def _fmt(value: float | int | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.1f}"
    return str(int(value))


def format_instruments(metrics: Metrics, title: str = "instruments") -> str:
    """Histograms with count / p50 / p95 / p99 / max, then gauges.

    Values are whatever unit the instrument observes (latencies in
    simulated ns, fan-outs in targets, occupancy in frames).
    """
    rows: list[list[str]] = []
    for name, hist in sorted(metrics.histograms.items()):
        rows.append(
            [
                name, str(hist.count),
                _fmt(hist.percentile(50)), _fmt(hist.percentile(95)),
                _fmt(hist.percentile(99)), _fmt(hist.max),
            ]
        )
    for name, gauge in sorted(metrics.gauges.items()):
        rows.append(
            [f"{name} (gauge)", str(gauge.updates), _fmt(gauge.value), "-", "-", _fmt(gauge.peak)]
        )
    if not rows:
        rows.append(["(no observations)", "0", "-", "-", "-", "-"])
    return ascii_table(
        ["instrument", "count", "p50", "p95", "p99", "max"], rows, title=title
    )


def format_profile(
    per_node: dict[int, dict[str, int]],
    total_ns: int,
    title: str = "simulated-time profile",
) -> str:
    """Per-node + cluster attribution table (each row sums to 100%)."""
    from repro.obs.profiler import CATEGORIES, SimProfiler

    def row(label: str, counts: dict[str, int], denom: int) -> list[str]:
        cells = [label]
        for cat in CATEGORIES:
            ns = counts.get(cat, 0)
            pct = (100.0 * ns / denom) if denom else 0.0
            cells.append(f"{pct:5.1f}% {ns / 1e6:10.1f}")
        return cells

    headers = ["node"] + [f"{cat} (%, ms)" for cat in CATEGORIES]
    rows = [
        row(str(node), counts, total_ns)
        for node, counts in sorted(per_node.items())
    ]
    cluster = SimProfiler.cluster(per_node)
    rows.append(row("cluster", cluster, total_ns * max(1, len(per_node))))
    return ascii_table(headers, rows, title=title)


def format_window_profile(
    per_node_windows: dict[int, list[dict[str, int]]],
    window_ns: int,
    total_ns: int,
    title: str = "cluster profile per window",
) -> str:
    """Cluster-wide attribution per window (each row sums to 100%).

    Sums the per-node windowed breakdowns: one row per window, one
    column per category, so saturation reads as the fault/network share
    climbing down the table.
    """
    from repro.obs.profiler import CATEGORIES

    nwin = max((len(windows) for windows in per_node_windows.values()), default=0)
    nnodes = max(1, len(per_node_windows))
    rows: list[list[str]] = []
    for w in range(nwin):
        totals = dict.fromkeys(CATEGORIES, 0)
        for windows in per_node_windows.values():
            if w < len(windows):
                for cat, ns in windows[w].items():
                    totals[cat] += ns
        width = min(window_ns, max(1, total_ns - w * window_ns)) * nnodes
        cells = [f"{w}", f"{w * window_ns / 1e6:.0f}"]
        for cat in CATEGORIES:
            cells.append(f"{100.0 * totals[cat] / width:5.1f}%")
        rows.append(cells)
    if not rows:
        rows.append(["(no windows)", "-"] + ["-"] * len(CATEGORIES))
    return ascii_table(
        ["window", "start ms"] + list(CATEGORIES), rows, title=title
    )


def format_busiest_links(
    rows: Sequence[tuple[str, int, float]],
    title: str = "busiest links over the run",
) -> str:
    """Top links by total busy time, with each link's peak window."""
    table_rows = [
        [name, f"{busy / 1e6:.1f}", f"{100.0 * peak:.1f}%"]
        for name, busy, peak in rows
    ]
    if not table_rows:
        table_rows.append(["(no links)", "-", "-"])
    return ascii_table(
        ["link", "busy ms", "peak window util"], table_rows, title=title
    )


def format_slo_report(report: Any, title: str = "SLO verdicts") -> str:
    """One row per spec: verdict and the first violating window."""
    rows: list[list[str]] = []
    for res in report.results:
        rows.append(
            [
                res.spec.raw,
                "OK" if res.ok else "VIOLATED",
                "-" if res.first_violation is None else str(res.first_violation),
            ]
        )
    if not rows:
        rows.append(["(no specs)", "-", "-"])
    onset = report.saturation_onset
    tail = (
        "no saturation onset"
        if onset is None
        else f"saturation onset at window {onset} "
        f"(t = {onset * report.window_ns / 1e6:.0f} ms)"
    )
    return ascii_table(
        ["spec", "verdict", "first bad window"], rows,
        title=f"{title} ({report.windows} windows of "
        f"{report.window_ns / 1e6:.0f} ms): {tail}",
    )


def format_span_stats(
    stats: dict[str, dict[str, float | int | None]],
    limit: int = 20,
    title: str = "top spans by total simulated time",
) -> str:
    ordered = sorted(
        stats.items(), key=lambda kv: kv[1].get("total_ns") or 0, reverse=True
    )
    rows = [
        [
            name, _fmt(agg.get("count")),
            f"{(agg.get('total_ns') or 0) / 1e6:.1f}",
            _fmt(agg.get("mean_ns")), _fmt(agg.get("p95_ns")), _fmt(agg.get("max_ns")),
        ]
        for name, agg in ordered[:limit]
    ]
    if not rows:
        rows.append(["(no spans)", "0", "-", "-", "-", "-"])
    return ascii_table(
        ["span", "count", "total ms", "mean ns", "p95 ns", "max ns"], rows, title=title
    )


def fault_latency_stats(events: Iterable[Any]) -> dict[str, Histogram]:
    """Fault-service latency histograms from a recorded protocol trace.

    Consumes ``svm.read_fault`` / ``svm.write_fault`` /
    ``svm.write_upgrade`` events carrying an ``ns`` field.  Events
    emitted before the recorder's clock was bound (``UNSTAMPED``) are
    excluded — a pre-boot event's latency is not a measurement (see
    ``TraceRecorder.save``, which warns about them).
    """
    out = {
        "svm.read_fault": Histogram("svm.read_fault"),
        "svm.write_fault": Histogram("svm.write_fault"),
        "svm.write_upgrade": Histogram("svm.write_upgrade"),
    }
    for ev in events:
        hist = out.get(ev.category)
        if hist is None or not ev.stamped:
            continue
        ns = ev.fields.get("ns")
        if isinstance(ns, int):
            hist.observe(ns)
    return out
