"""Counters and per-epoch deltas.

Every simulated component increments named counters on a per-node
:class:`Counters` object.  Experiments that need time-phased numbers
(Table 1 counts disk transfers *per Jacobi iteration*) wrap the counters
in an :class:`EpochLog` and call :meth:`EpochLog.mark` at phase
boundaries; the log records the delta of every counter over each epoch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

__all__ = ["Counters", "EpochLog", "VIOLATION_PREFIX"]

#: Namespace for correctness-checker counters: the coherence oracle and
#: the race detector (repro.analysis) record every finding under
#: ``violation.<rule>`` so reports can separate them from traffic stats.
VIOLATION_PREFIX = "violation."


class Counters:
    """A bag of named monotonic counters."""

    def __init__(self) -> None:
        self._values: defaultdict[str, int] = defaultdict(int)

    def inc(self, name: str, by: int = 1) -> None:
        self._values[name] += by

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def violations(self) -> dict[str, int]:
        """Correctness-checker findings, keyed by rule name."""
        return {
            name[len(VIOLATION_PREFIX):]: value
            for name, value in self._values.items()
            if name.startswith(VIOLATION_PREFIX)
        }

    def total_violations(self) -> int:
        return sum(self.violations().values())

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def snapshot(self) -> dict[str, int]:
        return dict(self._values)

    def names(self) -> Iterable[str]:
        return self._values.keys()

    @staticmethod
    def merge(parts: Iterable["Counters"]) -> "Counters":
        """Sum counters across nodes into a cluster-wide view."""
        total = Counters()
        for part in parts:
            for name, value in part._values.items():
                total._values[name] += value
        return total


class EpochLog:
    """Records counter deltas between successive :meth:`mark` calls."""

    def __init__(self, sources: list[Counters]) -> None:
        self._sources = sources
        self._last = self._totals()
        #: list of (label, {counter: delta}) in mark order.
        self.epochs: list[tuple[str, dict[str, int]]] = []

    def _totals(self) -> dict[str, int]:
        total: defaultdict[str, int] = defaultdict(int)
        for src in self._sources:
            for name, value in src.snapshot().items():
                total[name] += value
        return dict(total)

    def mark(self, label: str) -> dict[str, int]:
        """Close the current epoch under ``label``; return its deltas."""
        now = self._totals()
        delta = {
            name: now.get(name, 0) - self._last.get(name, 0)
            for name in set(now) | set(self._last)
        }
        delta = {k: v for k, v in delta.items() if v}
        self.epochs.append((label, delta))
        self._last = now
        return delta

    def series(self, counter: str) -> list[tuple[str, int]]:
        """The per-epoch series of one counter."""
        return [(label, delta.get(counter, 0)) for label, delta in self.epochs]
