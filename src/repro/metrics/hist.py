"""Metric instruments beyond flat counters: histograms and gauges.

:class:`Counters` answers "how many"; the experiments' *why* questions
need distributions — how long fault service took at the tail, how far
behind the ring a message queued, how wide an invalidation fanned out.
A :class:`Histogram` records every observation (simulated quantities are
cheap integers, so exact percentiles beat bucketing) and reports
nearest-rank percentiles; a :class:`Gauge` tracks the latest value of a
sampled level (resident frames).  :class:`Metrics` is the per-run
registry, merged across nodes the same way :meth:`Counters.merge` is.

These instruments are pure observation: observing never schedules
simulation events, consumes RNG, or yields effects, so enabling them
cannot change simulated times or event counts.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["Histogram", "Gauge", "Metrics"]

#: The percentiles every report prints.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


class Histogram:
    """Exact-value histogram with nearest-rank percentiles."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def min(self) -> float | None:
        return min(self._values) if self._values else None

    @property
    def max(self) -> float | None:
        return max(self._values) if self._values else None

    def mean(self) -> float | None:
        return self.total / len(self._values) if self._values else None

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile (q in [0, 100]); None when empty.

        With a single sample every percentile is that sample; ranks
        never interpolate, so the result is always an observed value.
        """
        if not self._values:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of [0, 100]")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, -(-int(q * len(self._values)) // 100))  # ceil(q*n/100)
        return self._values[rank - 1]

    def summary(self) -> dict[str, float | int | None]:
        out: dict[str, float | int | None] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }
        for q in REPORT_PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out

    def values(self) -> list[float]:
        return list(self._values)


class Gauge:
    """Latest value of a sampled level (plus the observed peak)."""

    __slots__ = ("name", "value", "peak", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.peak: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = value if self.peak is None else max(self.peak, value)
        self.updates += 1


class Metrics:
    """A registry of named instruments (one per node, merged per run)."""

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {}
        self.gauges: dict[str, Gauge] = {}

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        return hist

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        g.set(value)

    def snapshot(self) -> dict[str, dict[str, float | int | None]]:
        out: dict[str, dict[str, float | int | None]] = {
            name: hist.summary() for name, hist in sorted(self.histograms.items())
        }
        for name, g in sorted(self.gauges.items()):
            out[name] = {"value": g.value, "peak": g.peak, "updates": g.updates}
        return out

    @staticmethod
    def merge(parts: Iterable["Metrics"]) -> "Metrics":
        """Pool observations across nodes into a cluster-wide view.

        Histograms concatenate their samples; gauges keep the largest
        peak (levels on different nodes do not sum meaningfully).
        """
        total = Metrics()
        for part in parts:
            for name, hist in part.histograms.items():
                for value in hist.values():
                    total.observe(name, value)
            for name, g in part.gauges.items():
                tg = total.gauges.get(name)
                if tg is None:
                    tg = total.gauges[name] = Gauge(name)
                if g.value is not None:
                    tg.value = g.value if tg.value is None else max(tg.value, g.value)
                if g.peak is not None:
                    tg.peak = g.peak if tg.peak is None else max(tg.peak, g.peak)
                tg.updates += g.updates
        return total
