"""Metric instruments beyond flat counters: histograms and gauges.

:class:`Counters` answers "how many"; the experiments' *why* questions
need distributions — how long fault service took at the tail, how far
behind the ring a message queued, how wide an invalidation fanned out.
Two histogram backends share one duck-typed surface:

- :class:`Histogram` records every observation exactly (simulated
  quantities are cheap integers, so exact percentiles beat bucketing
  at small scale) and reports nearest-rank percentiles;
- :class:`LogBucketHistogram` is the bounded-memory alternative for
  256-node runs: DDSketch-style logarithmic buckets with a guaranteed
  relative-error bound ``alpha`` on every reported quantile, O(log
  range) memory no matter how many observations arrive.

A :class:`Gauge` tracks the latest value of a sampled level (resident
frames).  :class:`Metrics` is the per-run registry, merged across nodes
the same way :meth:`Counters.merge` is; the backend is selectable per
registry and per instrument via :func:`make_histogram`.

These instruments are pure observation: observing never schedules
simulation events, consumes RNG, or yields effects, so enabling them
cannot change simulated times or event counts.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

__all__ = [
    "Histogram",
    "LogBucketHistogram",
    "AnyHistogram",
    "Gauge",
    "Metrics",
    "make_histogram",
    "HIST_BACKENDS",
]

#: The percentiles every report prints.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)

#: Selectable histogram backends (`exact` keeps every sample,
#: `logbucket` keeps O(log range) counters with bounded relative error).
HIST_BACKENDS = ("exact", "logbucket")


class Histogram:
    """Exact-value histogram with nearest-rank percentiles."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def min(self) -> float | None:
        return min(self._values) if self._values else None

    @property
    def max(self) -> float | None:
        return max(self._values) if self._values else None

    def mean(self) -> float | None:
        return self.total / len(self._values) if self._values else None

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile (q in [0, 100]); None when empty.

        With a single sample every percentile is that sample; ranks
        never interpolate, so the result is always an observed value.
        """
        if not self._values:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of [0, 100]")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, -(-int(q * len(self._values)) // 100))  # ceil(q*n/100)
        return self._values[rank - 1]

    def summary(self) -> dict[str, float | int | None]:
        out: dict[str, float | int | None] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }
        for q in REPORT_PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out

    def values(self) -> list[float]:
        return list(self._values)

    def merge_from(self, other: "AnyHistogram") -> None:
        for value in other.values():
            self.observe(value)


class LogBucketHistogram:
    """Bounded-memory histogram with logarithmic buckets.

    DDSketch-style: value ``v > 0`` lands in bucket ``ceil(log_γ v)``
    with ``γ = (1 + α) / (1 - α)``, whose representative midpoint
    ``2·γ^b / (γ + 1)`` is within relative error ``α`` of every value
    the bucket holds.  Percentiles walk the sorted bucket keys by
    cumulative count, so any reported quantile is within ``α`` of the
    exact nearest-rank answer.  Non-positive values share one exact
    "zero" bucket (simulated durations are never negative; zeros are
    common and must not be distorted).  Count/sum/min/max stay exact.
    """

    __slots__ = (
        "name", "alpha", "_gamma", "_log_gamma", "_buckets", "_zero",
        "_count", "_total", "_min", "_max",
    )

    def __init__(self, name: str, alpha: float = 0.01) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha {alpha} out of (0, 1)")
        self.name = name
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _representative(self, key: int) -> float:
        return 2.0 * self._gamma**key / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        if value <= 0.0:
            self._zero += 1
        else:
            key = self._key(value)
            self._buckets[key] = self._buckets.get(key, 0) + 1
        self._count += 1
        self._total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    def mean(self) -> float | None:
        return self._total / self._count if self._count else None

    @property
    def nbuckets(self) -> int:
        return len(self._buckets) + (1 if self._zero else 0)

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile within relative error ``alpha``."""
        if not self._count:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of [0, 100]")
        rank = max(1, -(-int(q * self._count) // 100))  # ceil(q*n/100)
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen >= rank:
                rep = self._representative(key)
                # Clamp into the exact observed range: the extreme
                # buckets' midpoints can overshoot min/max slightly.
                if self._min is not None:
                    rep = max(rep, self._min)
                if self._max is not None:
                    rep = min(rep, self._max)
                return rep
        return self._max  # pragma: no cover - counts always cover rank

    def summary(self) -> dict[str, float | int | None]:
        out: dict[str, float | int | None] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }
        for q in REPORT_PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out

    def values(self) -> list[float]:
        """Representative samples (bucket midpoints), one per count.

        Lossy by construction — each value is within ``alpha`` of the
        original — but lets log-bucketed instruments merge into exact
        ones and feed value-oriented reports.
        """
        out: list[float] = [0.0] * self._zero
        for key in sorted(self._buckets):
            rep = self._representative(key)
            if self._min is not None:
                rep = max(rep, self._min)
            if self._max is not None:
                rep = min(rep, self._max)
            out.extend([rep] * self._buckets[key])
        return out

    def merge_from(self, other: "AnyHistogram") -> None:
        if isinstance(other, LogBucketHistogram) and other.alpha == self.alpha:
            for key, n in other._buckets.items():
                self._buckets[key] = self._buckets.get(key, 0) + n
            self._zero += other._zero
            self._count += other._count
            self._total += other._total
            if other._min is not None:
                self._min = (
                    other._min if self._min is None else min(self._min, other._min)
                )
            if other._max is not None:
                self._max = (
                    other._max if self._max is None else max(self._max, other._max)
                )
        else:
            for value in other.values():
                self.observe(value)


#: Either histogram backend; both expose the same reporting surface.
AnyHistogram = Union[Histogram, LogBucketHistogram]


def make_histogram(
    name: str, backend: str = "exact", alpha: float = 0.01
) -> AnyHistogram:
    """Build a histogram of the requested backend."""
    if backend == "exact":
        return Histogram(name)
    if backend == "logbucket":
        return LogBucketHistogram(name, alpha=alpha)
    raise ValueError(f"unknown histogram backend {backend!r}; known: {HIST_BACKENDS}")


class Gauge:
    """Latest value of a sampled level (plus the observed peak)."""

    __slots__ = ("name", "value", "peak", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.peak: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = value if self.peak is None else max(self.peak, value)
        self.updates += 1


class Metrics:
    """A registry of named instruments (one per node, merged per run).

    ``default_backend`` picks the histogram implementation for lazily
    created instruments; :meth:`set_backend` overrides it per name
    before the first observation (switching an instrument that already
    holds samples is an error — the exact/bucketed split must be a
    configuration choice, not a mid-run migration).
    """

    def __init__(self, default_backend: str = "exact", alpha: float = 0.01) -> None:
        if default_backend not in HIST_BACKENDS:
            raise ValueError(
                f"unknown histogram backend {default_backend!r}; "
                f"known: {HIST_BACKENDS}"
            )
        self.histograms: dict[str, AnyHistogram] = {}
        self.gauges: dict[str, Gauge] = {}
        self.default_backend = default_backend
        self.alpha = alpha
        self._backends: dict[str, str] = {}

    def set_backend(self, name: str, backend: str) -> None:
        """Pick the backend for instrument ``name`` before its first use."""
        if backend not in HIST_BACKENDS:
            raise ValueError(
                f"unknown histogram backend {backend!r}; known: {HIST_BACKENDS}"
            )
        if name in self.histograms:
            raise ValueError(f"instrument {name!r} already instantiated")
        self._backends[name] = backend

    def _backend_of(self, name: str) -> str:
        return self._backends.get(name, self.default_backend)

    def histogram(self, name: str) -> AnyHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = make_histogram(
                name, self._backend_of(name), self.alpha
            )
        return hist

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        g.set(value)

    def snapshot(self) -> dict[str, dict[str, float | int | None]]:
        out: dict[str, dict[str, float | int | None]] = {
            name: hist.summary() for name, hist in sorted(self.histograms.items())
        }
        for name, g in sorted(self.gauges.items()):
            out[name] = {"value": g.value, "peak": g.peak, "updates": g.updates}
        return out

    @staticmethod
    def merge(parts: Iterable["Metrics"]) -> "Metrics":
        """Pool observations across nodes into a cluster-wide view.

        Histograms merge per name, preserving each instrument's backend
        (log buckets add count-wise when the error bounds match); gauges
        keep the largest peak (levels on different nodes do not sum
        meaningfully).
        """
        total = Metrics()
        for part in parts:
            total.default_backend = part.default_backend
            total.alpha = part.alpha
            for name, hist in part.histograms.items():
                target = total.histograms.get(name)
                if target is None:
                    if isinstance(hist, LogBucketHistogram):
                        target = make_histogram(name, "logbucket", hist.alpha)
                    else:
                        target = make_histogram(name, "exact")
                    total.histograms[name] = target
                target.merge_from(hist)
            for name, g in part.gauges.items():
                tg = total.gauges.get(name)
                if tg is None:
                    tg = total.gauges[name] = Gauge(name)
                if g.value is not None:
                    tg.value = g.value if tg.value is None else max(tg.value, g.value)
                if g.peak is not None:
                    tg.peak = g.peak if tg.peak is None else max(tg.peak, g.peak)
                tg.updates += g.updates
        return total
