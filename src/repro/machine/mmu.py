"""Memory-management-unit mechanism: access modes, address arithmetic.

IVY divides each user address space into a private low portion and a
shared high portion; coherence is maintained at page granularity using
the MMU's protection bits (NIL / READ / WRITE).  :class:`AddressLayout`
does the address/page arithmetic for the shared portion; :class:`Access`
is the protection lattice; :class:`PageFault` is the trap the SVM layer
services.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Access", "AddressLayout", "PageFault"]


class Access(enum.IntEnum):
    """Page protection modes, ordered so comparisons express privilege."""

    NIL = 0
    READ = 1
    WRITE = 2

    def permits_read(self) -> bool:
        return self >= Access.READ

    def permits_write(self) -> bool:
        return self >= Access.WRITE


@dataclass(frozen=True)
class PageFault(Exception):
    """An access violated the current protection of a page.

    Raised (as a value, not thrown, on hot paths) by the shared address
    space to enter the coherence fault handler.
    """

    page: int
    write: bool

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kind = "write" if self.write else "read"
        return f"{kind} fault on page {self.page}"


class AddressLayout:
    """Address arithmetic for the shared portion of the address space."""

    def __init__(self, base: int, size: int, page_size: int) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page size {page_size} must be a power of two")
        if size % page_size:
            raise ValueError("shared size must be a whole number of pages")
        self.base = base
        self.size = size
        self.page_size = page_size
        self.npages = size // page_size
        self._shift = page_size.bit_length() - 1

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.base + self.size

    def check(self, addr: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative length {nbytes}")
        if not self.contains(addr, max(nbytes, 1)):
            raise ValueError(
                f"address range [{addr:#x}, {addr + nbytes:#x}) outside shared space "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )

    def page_of(self, addr: int) -> int:
        """Page number (0-based within the shared space) containing addr."""
        self.check(addr, 1)
        return (addr - self.base) >> self._shift

    def page_base(self, page: int) -> int:
        """Virtual address of the first byte of ``page``."""
        if not 0 <= page < self.npages:
            raise ValueError(f"page {page} out of range")
        return self.base + (page << self._shift)

    def offset_in_page(self, addr: int) -> int:
        return (addr - self.base) & (self.page_size - 1)

    def pages_spanned(self, addr: int, nbytes: int) -> range:
        """Pages touched by the byte range [addr, addr+nbytes)."""
        self.check(addr, nbytes)
        if nbytes == 0:
            return range(0, 0)
        first = (addr - self.base) >> self._shift
        last = (addr + nbytes - 1 - self.base) >> self._shift
        return range(first, last + 1)

    def spans(self, addr: int, nbytes: int) -> Iterator[tuple[int, int, int, int]]:
        """Split [addr, addr+nbytes) into per-page pieces.

        Yields ``(page, offset_in_page, offset_in_buffer, length)``.
        """
        return iter(self.spans_list(addr, nbytes))

    def spans_list(self, addr: int, nbytes: int) -> list[tuple[int, int, int, int]]:
        """:meth:`spans`, materialised — the data-plane fast path checks
        protections over all pieces before copying any, so it needs the
        list twice."""
        self.check(addr, nbytes)
        out: list[tuple[int, int, int, int]] = []
        rel = addr - self.base
        shift = self._shift
        mask = self.page_size - 1
        page_size = self.page_size
        done = 0
        while done < nbytes:
            cur = rel + done
            offset = cur & mask
            length = page_size - offset
            if length > nbytes - done:
                length = nbytes - done
            out.append((cur >> shift, offset, done, length))
            done += length
        return out

    def single_span(self, addr: int, nbytes: int) -> tuple[int, int] | None:
        """``(page, offset_in_page)`` when the range lies inside one page
        of the shared space, else None (caller falls back to the general
        span walk, which also produces the out-of-range diagnostics)."""
        rel = addr - self.base
        offset = rel & (self.page_size - 1)
        if 0 <= rel and offset + nbytes <= self.page_size and rel + nbytes <= self.size:
            return rel >> self._shift, offset
        return None
