"""Simulated workstation hardware: address translation, frame memory,
paging disk, and the Aegis-style LRU pager.

This is the substrate the Apollo DN workstations provided to IVY.  The
MMU here is deliberately *mechanism only* (page-granular access bits and
fault detection); all coherence *policy* lives in `repro.svm`, just as
IVY's fault handlers lived above the Aegis MMU support.
"""

from repro.machine.mmu import Access, AddressLayout, PageFault
from repro.machine.memory import PhysicalMemory
from repro.machine.disk import Disk
from repro.machine.pager import Pager

__all__ = ["Access", "AddressLayout", "PageFault", "PhysicalMemory", "Disk", "Pager"]
