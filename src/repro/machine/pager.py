"""Aegis-style demand pager: bounded frames, approximate LRU, disk backing.

The pager sits between the SVM layer and the raw frame pool.  When a
frame is needed and the pool is full, it picks the LRU unpinned victim
and asks the injected *eviction policy* (owned by the SVM layer, which
knows ownership) what to do:

- a read-only copy is silently dropped — the true owner still has the
  data, and a later invalidation to a non-holder is harmless;
- an owned page is written to the local paging disk first, exactly the
  traffic Table 1 counts.

This reproduces the paper's account of the super-linear speedup: on one
processor the data set does not fit and every iteration thrashes the
disk; on two processors the SVM spreads pages across memories and the
disk traffic decays.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from repro.machine.disk import Disk
from repro.machine.memory import FramePressure, PhysicalMemory
from repro.metrics.collect import Counters
from repro.obs import NULL_OBS, Observability
from repro.sim.process import Effect, Sleep

__all__ = ["Pager"]

#: Eviction policy: generator ``(page) -> bool`` doing protocol work
#: (e.g. writing an owned page to disk) before the frame is dropped.
#: Returns False to *veto* the victim (its page-table entry is locked by
#: an in-flight coherence operation); the pager then tries the next-LRU
#: candidate.  The veto is how lock-ordering deadlocks between faults and
#: evictions are avoided: eviction never waits for a page lock.
EvictionPolicy = Callable[[int], Generator[Effect, Any, bool]]


class Pager:
    """Frame acquisition with LRU eviction to the local disk."""

    def __init__(
        self,
        memory: PhysicalMemory,
        disk: Disk,
        counters: Counters,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.memory = memory
        self.disk = disk
        self.counters = counters
        self.obs = obs
        self._evict: EvictionPolicy | None = None

    def set_eviction_policy(self, policy: EvictionPolicy) -> None:
        self._evict = policy

    # ------------------------------------------------------------------

    def ensure_frame(self, page: int) -> Generator[Effect, Any, None]:
        """Make room so ``install`` of ``page`` cannot fail.

        May run the eviction policy (disk writes, protocol updates) and
        therefore may consume simulated time.
        """
        vetoed: set[int] = set()
        stalls = 0
        while self.memory.full and page not in self.memory:
            try:
                victim = self.memory.lru_victim(vetoed)
            except FramePressure:
                # Every candidate is pinned or lock-vetoed.  Vetoes are
                # transient: an operation that holds a resident page's
                # lock completes without acquiring further frames (a
                # lock-holder that *does* need a frame holds it for a
                # non-resident page, which is not a veto candidate).  So
                # wait for a lock to clear and rescan.  The stall bound
                # turns a genuine deadlock into a loud failure.
                stalls += 1
                if stalls > 100_000:
                    raise
                vetoed.clear()
                yield Sleep(100_000)  # 100 us backoff
                continue
            if self._evict is None:
                raise RuntimeError("pager has no eviction policy")
            freed = yield from self._evict(victim)
            if not freed:
                vetoed.add(victim)
                continue
            self.counters.inc("evictions")
            if self.obs:
                # Frame-pool occupancy sampled at eviction time: under
                # capacity pressure this histogram hugs the frame budget.
                self.obs.observe("frames.occupancy", len(self.memory))
            if victim in self.memory:
                raise RuntimeError(
                    f"eviction policy failed to release frame of page {victim}"
                )
        return

    def try_install(self, page: int, data: np.ndarray | None = None) -> np.ndarray | None:
        """Plain-function :meth:`install` for the no-eviction case.

        Returns the frame when room exists (or the page is already
        resident), ``None`` when eviction work is required — the caller
        then falls back to the generator.  Splitting the fast path out
        skips the generator machinery on every pressure-free install.
        """
        memory = self.memory
        if memory.full and page not in memory:
            return None
        frame = memory.install(page, data)
        if self.obs:
            self.obs.gauge("frames.resident", len(memory))
        return frame

    def install(
        self, page: int, data: np.ndarray | None = None
    ) -> Generator[Effect, Any, np.ndarray]:
        """Evict as needed, then place ``page`` (optionally with bytes)."""
        memory = self.memory
        if memory.full and page not in memory:
            yield from self.ensure_frame(page)
        frame = memory.install(page, data)
        if self.obs:
            self.obs.gauge("frames.resident", len(self.memory))
        return frame

    def page_out(self, page: int) -> Generator[Effect, Any, None]:
        """Write ``page``'s frame to disk and drop the frame."""
        data = self.memory.data(page)
        yield from self.disk.write_page(page, data)
        self.memory.drop(page)

    def page_in(self, page: int) -> Generator[Effect, Any, np.ndarray]:
        """Read ``page`` from disk into a frame (evicting as needed)."""
        data = yield from self.disk.read_page(page)
        frame = yield from self.install(page, data)
        self.disk.discard(page)
        return frame
