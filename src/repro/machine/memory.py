"""Per-node physical page frames with approximate-LRU tracking.

A node's local memory is "a large cache of the shared virtual memory
address space" (the paper, Section "Shared Virtual Memory").  This class
is the frame pool backing that cache: bounded capacity, recency
tracking, and pinning (pages may not be evicted while a coherence
operation or an atomic synchronisation primitive is mid-flight).

Recency is an ordered dict used as an intrusive LRU list — a touch is an
O(1) move-to-back, a victim scan walks from the coldest end — replacing
the unbounded integer-stamp clock whose ``lru_victim`` rescanned every
frame.  Because the old stamps were unique and monotonic, min-stamp
order and touch order are the same total order: the victim choice (and
therefore the event schedule) is bit-for-bit unchanged.

Frames hold real bytes as ``numpy.uint8`` arrays; typed views are taken
by the shared address space, never copies (guide rule: views not copies).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["PhysicalMemory", "FramePressure"]


class FramePressure(RuntimeError):
    """No frame can be freed: every resident page is pinned."""


class PhysicalMemory:
    """A bounded pool of page frames keyed by shared-space page number."""

    def __init__(
        self,
        page_size: int,
        frames: int | None,
        replacement: str = "lru",
        rng: np.random.Generator | None = None,
    ) -> None:
        if frames is not None and frames < 2:
            raise ValueError("a node needs at least 2 page frames")
        if replacement not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.page_size = page_size
        self.capacity = frames
        self.replacement = replacement
        self._rng = rng
        self._frames: dict[int, np.ndarray] = {}
        self._pins: dict[int, int] = {}
        #: Resident pages in recency order: coldest first, hottest last.
        #: Invariant: exactly the keys of ``_frames``.
        self._recency: OrderedDict[int, None] = OrderedDict()

    # ------------------------------------------------------------------

    def __contains__(self, page: int) -> bool:
        return page in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._frames) >= self.capacity

    def resident_pages(self) -> list[int]:
        return list(self._frames)

    def raw_frames(self) -> dict[int, np.ndarray]:
        """The live page->frame mapping, for data-plane fast paths.

        Read-only use; every access that would have gone through
        :meth:`data` must pair the lookup with a :meth:`raw_recency`
        ``move_to_end`` so the LRU order (and therefore the eviction
        schedule) stays bit-for-bit what :meth:`data` produces.
        """
        return self._frames

    def raw_recency(self) -> OrderedDict[int, None]:
        """The live recency order backing :meth:`raw_frames` fast paths."""
        return self._recency

    # ------------------------------------------------------------------

    def data(self, page: int) -> np.ndarray:
        """The frame contents of a resident page (a live view)."""
        frame = self._frames.get(page)
        if frame is None:
            raise KeyError(f"page {page} not resident")
        self._recency.move_to_end(page)
        return frame

    def touch(self, page: int) -> None:
        """Record a reference for LRU purposes (resident pages only —
        touching a non-resident page would resurrect a stale recency
        entry that later corrupts the victim order)."""
        assert page in self._frames, f"touch of non-resident page {page}"
        self._recency.move_to_end(page)

    def install(self, page: int, data: np.ndarray | None = None) -> np.ndarray:
        """Place ``page`` into a frame (caller must have ensured room).

        ``data`` is copied into the frame; None zero-fills.  Returns the
        frame array.
        """
        frame = self._frames.get(page)
        if frame is None:
            if self.full:
                raise FramePressure(f"no free frame for page {page}")
            # Zero-fill only when no contents follow — the copy below
            # overwrites every byte anyway.
            frame = (
                np.zeros(self.page_size, dtype=np.uint8)
                if data is None
                else np.empty(self.page_size, dtype=np.uint8)
            )
            self._frames[page] = frame
        if data is not None:
            if len(data) != self.page_size:
                raise ValueError(
                    f"page data is {len(data)} bytes, expected {self.page_size}"
                )
            frame[:] = data
        self._recency[page] = None
        self._recency.move_to_end(page)
        return frame

    def drop(self, page: int) -> None:
        """Release the frame of ``page`` (must be unpinned)."""
        if self._pins.get(page, 0):
            raise RuntimeError(f"dropping pinned page {page}")
        self._frames.pop(page, None)
        self._recency.pop(page, None)
        # A dropped page must leave no recency residue: a stale entry
        # would make a later reinstall inherit the old position.
        assert page not in self._recency and page not in self._frames

    # ------------------------------------------------------------------
    # pinning

    def pin(self, page: int) -> None:
        self._pins[page] = self._pins.get(page, 0) + 1

    def unpin(self, page: int) -> None:
        count = self._pins.get(page, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of unpinned page {page}")
        if count == 1:
            del self._pins[page]
        else:
            self._pins[page] = count - 1

    def pinned(self, page: int) -> bool:
        return self._pins.get(page, 0) > 0

    # ------------------------------------------------------------------

    def lru_victim(self, skip: set[int] | None = None) -> int:
        """Pick an eviction victim per the configured replacement policy
        (strict LRU, or the random choice Aegis's sampled-use-bit clock
        degenerates to under cyclic sweeps).  Pinned and ``skip``-ped
        pages are never chosen; raises :class:`FramePressure` when no
        candidate exists."""
        if self.replacement == "random" and self._rng is not None:
            candidates = [
                page
                for page in self._frames
                if not self._pins.get(page, 0)
                and (skip is None or page not in skip)
            ]
            if not candidates:
                raise FramePressure("all resident pages are pinned")
            candidates.sort()  # determinism: dict order is insertion order
            return int(candidates[self._rng.integers(len(candidates))])
        pins = self._pins
        for page in self._recency:  # coldest first
            if pins.get(page, 0):
                continue
            if skip is not None and page in skip:
                continue
            return page
        raise FramePressure("all resident pages are pinned")
