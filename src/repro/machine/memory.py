"""Per-node physical page frames with approximate-LRU tracking.

A node's local memory is "a large cache of the shared virtual memory
address space" (the paper, Section "Shared Virtual Memory").  This class
is the frame pool backing that cache: bounded capacity, recency
tracking, and pinning (pages may not be evicted while a coherence
operation or an atomic synchronisation primitive is mid-flight).

Frames hold real bytes as ``numpy.uint8`` arrays; typed views are taken
by the shared address space, never copies (guide rule: views not copies).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PhysicalMemory", "FramePressure"]


class FramePressure(RuntimeError):
    """No frame can be freed: every resident page is pinned."""


class PhysicalMemory:
    """A bounded pool of page frames keyed by shared-space page number."""

    def __init__(
        self,
        page_size: int,
        frames: int | None,
        replacement: str = "lru",
        rng: np.random.Generator | None = None,
    ) -> None:
        if frames is not None and frames < 2:
            raise ValueError("a node needs at least 2 page frames")
        if replacement not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.page_size = page_size
        self.capacity = frames
        self.replacement = replacement
        self._rng = rng
        self._frames: dict[int, np.ndarray] = {}
        self._pins: dict[int, int] = {}
        self._clock = 0
        self._last_used: dict[int, int] = {}

    # ------------------------------------------------------------------

    def __contains__(self, page: int) -> bool:
        return page in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._frames) >= self.capacity

    def resident_pages(self) -> list[int]:
        return list(self._frames)

    # ------------------------------------------------------------------

    def data(self, page: int) -> np.ndarray:
        """The frame contents of a resident page (a live view)."""
        frame = self._frames.get(page)
        if frame is None:
            raise KeyError(f"page {page} not resident")
        self.touch(page)
        return frame

    def touch(self, page: int) -> None:
        """Record a reference for LRU purposes."""
        self._clock += 1
        self._last_used[page] = self._clock

    def install(self, page: int, data: np.ndarray | None = None) -> np.ndarray:
        """Place ``page`` into a frame (caller must have ensured room).

        ``data`` is copied into the frame; None zero-fills.  Returns the
        frame array.
        """
        if self.full and page not in self._frames:
            raise FramePressure(f"no free frame for page {page}")
        frame = self._frames.get(page)
        if frame is None:
            frame = np.zeros(self.page_size, dtype=np.uint8)
            self._frames[page] = frame
        if data is not None:
            if len(data) != self.page_size:
                raise ValueError(
                    f"page data is {len(data)} bytes, expected {self.page_size}"
                )
            frame[:] = data
        self.touch(page)
        return frame

    def drop(self, page: int) -> None:
        """Release the frame of ``page`` (must be unpinned)."""
        if self._pins.get(page, 0):
            raise RuntimeError(f"dropping pinned page {page}")
        self._frames.pop(page, None)
        self._last_used.pop(page, None)

    # ------------------------------------------------------------------
    # pinning

    def pin(self, page: int) -> None:
        self._pins[page] = self._pins.get(page, 0) + 1

    def unpin(self, page: int) -> None:
        count = self._pins.get(page, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of unpinned page {page}")
        if count == 1:
            del self._pins[page]
        else:
            self._pins[page] = count - 1

    def pinned(self, page: int) -> bool:
        return self._pins.get(page, 0) > 0

    # ------------------------------------------------------------------

    def lru_victim(self, skip: set[int] | None = None) -> int:
        """Pick an eviction victim per the configured replacement policy
        (strict LRU, or the random choice Aegis's sampled-use-bit clock
        degenerates to under cyclic sweeps).  Pinned and ``skip``-ped
        pages are never chosen; raises :class:`FramePressure` when no
        candidate exists."""
        if self.replacement == "random" and self._rng is not None:
            candidates = [
                page
                for page in self._frames
                if not self._pins.get(page, 0)
                and (skip is None or page not in skip)
            ]
            if not candidates:
                raise FramePressure("all resident pages are pinned")
            candidates.sort()  # determinism: dict order is insertion order
            return int(candidates[self._rng.integers(len(candidates))])
        best_page = -1
        best_stamp = None
        for page in self._frames:
            if self._pins.get(page, 0):
                continue
            if skip is not None and page in skip:
                continue
            stamp = self._last_used.get(page, 0)
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                best_page = page
        if best_stamp is None:
            raise FramePressure("all resident pages are pinned")
        return best_page
