"""Per-node paging disk.

Models the workstation's local Winchester disk used by Aegis as demand-
paging backing store.  Operations are generators that charge seek +
transfer time and serialise on the single disk arm.  Every completed
transfer increments the node's ``disk_reads`` / ``disk_writes`` counters
— the quantity Table 1 of the paper reports.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.config import DiskConfig
from repro.metrics.collect import Counters
from repro.obs import NULL_OBS, Observability
from repro.sim.process import Compute, Effect, Sleep
from repro.sim.sync import SimLock

__all__ = ["Disk"]


class Disk:
    """A simple seek+stream disk holding evicted page images."""

    def __init__(
        self,
        config: DiskConfig,
        page_size: int,
        counters: Counters,
        node_id: int = -1,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.config = config
        self.page_size = page_size
        self.counters = counters
        self.node_id = node_id
        self.obs = obs
        self._store: dict[int, np.ndarray] = {}
        self._arm = SimLock()  # one transfer at a time

    def _busy(self, ns: int) -> Effect:
        """Disk time: stalls the node's CPU unless overlap_io is enabled
        (IVY had no I/O overlap; overlap is the paper's proposed fix)."""
        return Sleep(ns) if self.config.overlap_io else Compute(ns)

    def holds(self, page: int) -> bool:
        return page in self._store

    def write_page(self, page: int, data: np.ndarray) -> Generator[Effect, Any, None]:
        """Write a page image out (page-out)."""
        if len(data) != self.page_size:
            raise ValueError(f"bad page image size {len(data)}")
        yield from self._arm.acquire()
        # Span opens after the arm is won: disk time is the transfer
        # stall, not the queueing behind other transfers.
        span = self.obs.span_begin("disk.write", node=self.node_id, page=page)
        try:
            yield self._busy(self.config.transfer_ns(self.page_size))
            self._store[page] = np.array(data, dtype=np.uint8, copy=True)
            self.counters.inc("disk_writes")
        finally:
            self.obs.span_end(span)
            self._arm.release()

    def read_page(self, page: int) -> Generator[Effect, Any, np.ndarray]:
        """Read a page image back (page-in); the image stays on disk."""
        yield from self._arm.acquire()
        span = self.obs.span_begin("disk.read", node=self.node_id, page=page)
        try:
            if page not in self._store:
                raise KeyError(f"page {page} not on disk")
            yield self._busy(self.config.transfer_ns(self.page_size))
            self.counters.inc("disk_reads")
            return self._store[page]
        finally:
            self.obs.span_end(span)
            self._arm.release()

    def discard(self, page: int) -> None:
        """Drop a stale disk image (no media time charged)."""
        self._store.pop(page, None)
