"""IVY's remote-operation module (the "simple RPC" of the paper).

Each node registers named operation handlers.  A handler is a generator
``handler(origin, payload)`` that runs as its own interrupt-level task on
the serving node, may itself perform requests, and finishes in one of
three ways:

- return a plain value      → reply to the origin (default size),
- return :class:`Reply`     → reply with an explicit wire size,
- return :class:`Forward`   → pass the request on to another processor
  (no intermediate reply; the final executor answers the origin).

Handlers run concurrently, serialised only by protocol-level locks (page
locks etc.).  This models interrupt-level fault servicing: request
handling delays the *reply*, not whichever application process happens to
be running — see DESIGN.md, "key design decisions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.config import ClusterConfig
from repro.net.packet import HEADER_BYTES, Message
from repro.net.transport import Transport
from repro.obs import NULL_OBS, Observability, Span
from repro.sim.process import Compute, Effect, SimDriver
from repro.sim.trace import NULL_TRACE, TraceRecorder

__all__ = ["RemoteOp", "Reply", "Forward", "NO_REPLY"]


@dataclass
class Reply:
    """Handler result carrying an explicit reply wire size."""

    value: Any
    nbytes: int = HEADER_BYTES


@dataclass
class Forward:
    """Handler result: forward the request to ``dst``.

    ``payload``/``nbytes`` override the forwarded request's argument
    payload when given (e.g. to accumulate hop counts).
    """

    dst: int
    payload: Any = None
    nbytes: int | None = None


class _NoReply:
    """Handler result: stay silent (legal only for broadcast requests —
    e.g. a non-owner hearing a broadcast page-fault location request)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NO_REPLY"


NO_REPLY = _NoReply()


class RemoteOp:
    """Named-operation dispatch on top of the reliable transport."""

    def __init__(
        self,
        transport: Transport,
        driver: SimDriver,
        config: ClusterConfig,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.transport = transport
        self.driver = driver
        self.config = config
        self.trace = trace
        self.obs = obs
        self.node_id = transport.node_id
        #: Envelope pool (shared fabric-wide); _serve holds a reference
        #: per running handler, because handling spans simulated time
        #: while the delivery event that carried the envelope completes.
        self.pool = transport.pool
        self._handlers: dict[str, Callable[[int, Any], Generator[Effect, Any, Any]]] = {}
        self._local_probes: dict[str, Callable[[Any], bool]] = {}
        transport.set_request_handler(self._dispatch)
        transport.duplicate_probe = self._probe

    # ------------------------------------------------------------------

    def register(
        self, op: str, handler: Callable[[int, Any], Generator[Effect, Any, Any]]
    ) -> None:
        """Register the generator handler for operation ``op``."""
        if op in self._handlers:
            raise ValueError(f"operation {op!r} already registered on node {self.node_id}")
        self._handlers[op] = handler

    def register_local_probe(self, op: str, probe: Callable[[Any], bool]) -> None:
        """Register a lock-free predicate ``probe(payload)`` answering
        "would this node execute ``op`` locally right now (rather than
        forward it)?" — consulted by the transport on duplicates of
        forwarded requests (see `Transport.duplicate_probe`)."""
        self._local_probes[op] = probe

    def _probe(self, msg: Message) -> bool:
        probe = self._local_probes.get(msg.op)
        return bool(probe(msg.payload)) if probe is not None else False

    def request(
        self,
        dst: int,
        op: str,
        payload: Any = None,
        nbytes: int = HEADER_BYTES,
        span: Span | int | None = None,
    ) -> Generator[Effect, Any, Any]:
        """Perform a remote operation and return its reply value."""
        if self.trace:
            self.trace.emit("remoteop.request", src=self.node_id, dst=dst, op=op)
        obs = self.obs
        if not obs:
            # Span bookkeeping (and its f-string name) is skipped entirely
            # when observability is off — this runs once per fault.
            value = yield from self.transport.request(dst, op, payload, nbytes)
            return value
        hop = obs.span_begin(f"rpc:{op}", parent=span, node=self.node_id, dst=dst)
        try:
            value = yield from self.transport.request(
                dst, op, payload, nbytes, span_id=hop.sid
            )
            return value
        finally:
            obs.span_end(hop)

    def broadcast(
        self,
        op: str,
        payload: Any = None,
        nbytes: int = HEADER_BYTES,
        scheme: str = "all",
        span: Span | int | None = None,
    ) -> Generator[Effect, Any, Any]:
        """Broadcast ``op``; reply handling per the paper's three schemes."""
        if self.trace:
            self.trace.emit(
                "remoteop.broadcast", src=self.node_id, op=op, scheme=scheme
            )
        obs = self.obs
        if not obs:
            value = yield from self.transport.broadcast(op, payload, nbytes, scheme)
            return value
        hop = obs.span_begin(
            f"rpc:{op}", parent=span, node=self.node_id, scheme=scheme
        )
        try:
            value = yield from self.transport.broadcast(
                op, payload, nbytes, scheme, span_id=hop.sid
            )
            return value
        finally:
            obs.span_end(hop)

    def multicast(
        self,
        targets: tuple[int, ...],
        op: str,
        payload: Any = None,
        nbytes: int = HEADER_BYTES,
        span: Span | int | None = None,
    ) -> Generator[Effect, Any, dict[int, Any]]:
        """Multicast ``op`` to ``targets``; one reply per target."""
        if self.trace:
            self.trace.emit(
                "remoteop.multicast", src=self.node_id, op=op, targets=tuple(targets)
            )
        obs = self.obs
        if not obs:
            value = yield from self.transport.multicast(targets, op, payload, nbytes)
            return value
        hop = obs.span_begin(
            f"rpc:{op}", parent=span, node=self.node_id, fanout=len(targets)
        )
        try:
            value = yield from self.transport.multicast(
                targets, op, payload, nbytes, span_id=hop.sid
            )
            return value
        finally:
            obs.span_end(hop)

    # ------------------------------------------------------------------

    def _dispatch(self, msg: Message) -> None:
        if self.driver.sim.scheduler is not None or self.trace:
            # Full identity only when someone reads it (explorer labels,
            # trace records); the f-string is measurable per request.
            name = f"serve-{self.node_id}-{msg.op}-{msg.origin}.{msg.msg_id}"
        else:
            name = msg.op
        msg.refs += 1  # held for the duration of _serve (released there)
        self.driver.spawn(self._serve(msg), name)

    def _serve(self, msg: Message) -> Generator[Effect, Any, None]:
        handler = self._handlers.get(msg.op)
        if handler is None:
            raise RuntimeError(f"node {self.node_id}: no handler for {msg.op!r}")
        obs = self.obs
        span: Span | None
        if obs:
            span = obs.span_begin(
                f"serve:{msg.op}", parent=msg.span, node=self.node_id, origin=msg.origin
            )
            span_sid = span.sid
        else:
            span = None
            span_sid = 0
        try:
            yield Compute(self.config.server_dispatch_cost)
            result = yield from handler(msg.origin, msg.payload)
            if isinstance(result, Forward):
                if self.trace:
                    self.trace.emit(
                        "remoteop.forward", node=self.node_id, dst=result.dst, op=msg.op,
                        origin=msg.origin,
                    )
                yield from self.transport.forward(
                    result.dst, msg, result.payload, result.nbytes, span_id=span_sid
                )
            elif result is NO_REPLY:
                if msg.kind != "bcast":
                    raise RuntimeError(
                        f"handler for {msg.op!r} returned NO_REPLY to a unicast request"
                    )
                # Silence has no side effects: let duplicates re-execute, so a
                # retransmitted location broadcast can find an owner that was
                # mid-handoff the first time.
                self.transport.clear_request(msg)
            elif msg.kind == "bcast" and msg.reply_scheme == "none":
                self.transport.mark_no_reply(msg)
            elif isinstance(result, Reply):
                yield from self.transport.send_reply(msg, result.value, result.nbytes)
            else:
                yield from self.transport.send_reply(msg, result)
        finally:
            if span is not None:
                # Accumulation-first close: under head-based sampling
                # this span may be dropped (negative id), but its
                # service time must still reach the profiler's network
                # attribution and the timeline's per-window series.
                obs.span_account(span)
            self.pool.release(msg)
