"""Wire message representation and size accounting.

The payload rides as a Python object (the data plane stays functionally
real), while ``nbytes`` is the simulated wire size used for ring
occupancy.  Callers are responsible for declaring honest sizes; helpers
below compute them for the common cases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BROADCAST", "HEADER_BYTES", "Message", "request_size", "reply_size"]

#: Destination id meaning "every other station on the ring".
BROADCAST = -1

#: Ring frame header + transport header, charged per message.
HEADER_BYTES = 32

_serial = itertools.count(1)


@dataclass
class Message:
    """One transport-level message (request, reply, or broadcast)."""

    src: int
    dst: int
    kind: str  # "req" | "rep" | "bcast"
    op: str
    origin: int  # requesting processor (survives forwarding)
    msg_id: int  # origin's sequence number (dedup key with origin)
    payload: Any
    nbytes: int
    #: Piggybacked scheduling hint: sender's current process count
    #: ("a byte ... packed into every message at almost no extra cost").
    load_hint: int = 0
    #: Reply scheme for broadcasts: "any" | "all" | "none".
    reply_scheme: str = "all"
    #: Multicast filter: when set on a broadcast frame, only these
    #: stations process the message (others hear it and discard it,
    #: as ring hardware multicast filtering does).
    targets: tuple[int, ...] | None = None
    serial: int = field(default_factory=lambda: next(_serial))

    def __post_init__(self) -> None:
        if self.nbytes < HEADER_BYTES:
            self.nbytes = HEADER_BYTES

    def describe(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.kind}:{self.op} {self.src}->{self.dst} "
            f"origin={self.origin} id={self.msg_id} {self.nbytes}B"
        )


def request_size(arg_bytes: int = 0) -> int:
    """Wire size of a request carrying ``arg_bytes`` of arguments."""
    return HEADER_BYTES + arg_bytes


def reply_size(value_bytes: int = 0) -> int:
    """Wire size of a reply carrying ``value_bytes`` of results."""
    return HEADER_BYTES + value_bytes
