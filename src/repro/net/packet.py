"""Wire message representation and size accounting.

The payload rides as a Python object (the data plane stays functionally
real), while ``nbytes`` is the simulated wire size used for ring
occupancy.  Callers are responsible for declaring honest sizes; helpers
below compute them for the common cases.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

__all__ = [
    "BROADCAST",
    "HEADER_BYTES",
    "Message",
    "annotate_op",
    "delivery_label",
    "op_page",
    "request_size",
    "reply_size",
]

#: Destination id meaning "every other station on the ring".
BROADCAST = -1

#: Ring frame header + transport header, charged per message.
HEADER_BYTES = 32

_serial = itertools.count(1)


class Message:
    """One transport-level message (request, reply, or broadcast).

    A plain ``__slots__`` class rather than a dataclass: one is built per
    request, reply, forward, and retransmission, so construction is on
    the fault hot path.

    Fields: ``src``/``dst`` stations; ``kind`` ("req" | "rep" | "bcast");
    ``op``; ``origin`` (requesting processor — survives forwarding);
    ``msg_id`` (origin's sequence number; dedup key with origin);
    ``payload``; ``nbytes`` (simulated wire size, floored at
    :data:`HEADER_BYTES`); ``load_hint`` (piggybacked process count — "a
    byte ... packed into every message at almost no extra cost");
    ``reply_scheme`` for broadcasts ("any" | "all" | "none");
    ``targets`` (multicast filter: when set on a broadcast frame only
    these stations process it, as ring hardware multicast filtering
    does); ``span`` (causal span id riding the wire, 0 = untraced —
    pure observability, never read by protocol code); ``serial``
    (global construction order, debug aid).
    """

    __slots__ = (
        "src", "dst", "kind", "op", "origin", "msg_id", "payload",
        "nbytes", "load_hint", "reply_scheme", "targets", "span", "serial",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        op: str,
        origin: int,
        msg_id: int,
        payload: Any,
        nbytes: int,
        load_hint: int = 0,
        reply_scheme: str = "all",
        targets: tuple[int, ...] | None = None,
        span: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.op = op
        self.origin = origin
        self.msg_id = msg_id
        self.payload = payload
        self.nbytes = nbytes if nbytes >= HEADER_BYTES else HEADER_BYTES
        self.load_hint = load_hint
        self.reply_scheme = reply_scheme
        self.targets = targets
        self.span = span
        self.serial = next(_serial)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message {self.describe()}>"

    def describe(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.kind}:{self.op} {self.src}->{self.dst} "
            f"origin={self.origin} id={self.msg_id} {self.nbytes}B"
        )


# ---------------------------------------------------------------------------
# Choice-point annotations.
#
# The schedule explorer (repro.analysis.explore) treats two same-tick events
# as commuting only when it can prove they touch disjoint protocol state; for
# message deliveries that proof needs the page a message concerns, which only
# the protocol layer knows.  Each remote op therefore registers a *footprint
# extractor* here — the registry lives in the net layer (below the svm layer)
# so the ring and transport can label their delivery events without importing
# protocol code.  Ops without an extractor simply get no page tag, which the
# explorer treats conservatively (conflicts with everything).

_PAGE_OF: dict[str, Callable[[Any], Any]] = {}


def annotate_op(op: str, page_of: Callable[[Any], Any]) -> None:
    """Register how to recover the page number from ``op``'s payload."""
    _PAGE_OF[op] = page_of


def op_page(op: str, payload: Any) -> int | None:
    """The page a message concerns, or None when unknown."""
    extractor = _PAGE_OF.get(op)
    if extractor is None:
        return None
    try:
        page = extractor(payload)
    except Exception:  # noqa: BLE001 - a bad extractor must not kill delivery
        return None
    return page if isinstance(page, int) else None


def delivery_label(target: int, msg: Message) -> str:
    """Scheduling label for delivering ``msg`` at station ``target``.

    The ``n<target>``/``p<page>`` tokens are what the explorer's
    independence relation parses; the trailing ``o<origin>.<msg_id>``
    keeps labels unique per in-flight message.
    """
    page = op_page(msg.op, msg.payload)
    ptag = "p?" if page is None else f"p{page}"
    return f"deliver:n{target}:{ptag}:{msg.kind}:{msg.op}:o{msg.origin}.{msg.msg_id}"


def request_size(arg_bytes: int = 0) -> int:
    """Wire size of a request carrying ``arg_bytes`` of arguments."""
    return HEADER_BYTES + arg_bytes


def reply_size(value_bytes: int = 0) -> int:
    """Wire size of a reply carrying ``value_bytes`` of results."""
    return HEADER_BYTES + value_bytes
