"""Wire message representation and size accounting.

The payload rides as a Python object (the data plane stays functionally
real), while ``nbytes`` is the simulated wire size used for ring
occupancy.  Callers are responsible for declaring honest sizes; helpers
below compute them for the common cases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "BROADCAST",
    "HEADER_BYTES",
    "Message",
    "annotate_op",
    "delivery_label",
    "op_page",
    "request_size",
    "reply_size",
]

#: Destination id meaning "every other station on the ring".
BROADCAST = -1

#: Ring frame header + transport header, charged per message.
HEADER_BYTES = 32

_serial = itertools.count(1)


@dataclass
class Message:
    """One transport-level message (request, reply, or broadcast)."""

    src: int
    dst: int
    kind: str  # "req" | "rep" | "bcast"
    op: str
    origin: int  # requesting processor (survives forwarding)
    msg_id: int  # origin's sequence number (dedup key with origin)
    payload: Any
    nbytes: int
    #: Piggybacked scheduling hint: sender's current process count
    #: ("a byte ... packed into every message at almost no extra cost").
    load_hint: int = 0
    #: Reply scheme for broadcasts: "any" | "all" | "none".
    reply_scheme: str = "all"
    #: Multicast filter: when set on a broadcast frame, only these
    #: stations process the message (others hear it and discard it,
    #: as ring hardware multicast filtering does).
    targets: tuple[int, ...] | None = None
    #: Causal span id riding the wire (0 = untraced).  Replies and
    #: forwards inherit it, so a fault's span tree follows the request
    #: across nodes.  Pure observability: never read by protocol code.
    span: int = 0
    serial: int = field(default_factory=lambda: next(_serial))

    def __post_init__(self) -> None:
        if self.nbytes < HEADER_BYTES:
            self.nbytes = HEADER_BYTES

    def describe(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.kind}:{self.op} {self.src}->{self.dst} "
            f"origin={self.origin} id={self.msg_id} {self.nbytes}B"
        )


# ---------------------------------------------------------------------------
# Choice-point annotations.
#
# The schedule explorer (repro.analysis.explore) treats two same-tick events
# as commuting only when it can prove they touch disjoint protocol state; for
# message deliveries that proof needs the page a message concerns, which only
# the protocol layer knows.  Each remote op therefore registers a *footprint
# extractor* here — the registry lives in the net layer (below the svm layer)
# so the ring and transport can label their delivery events without importing
# protocol code.  Ops without an extractor simply get no page tag, which the
# explorer treats conservatively (conflicts with everything).

_PAGE_OF: dict[str, Callable[[Any], Any]] = {}


def annotate_op(op: str, page_of: Callable[[Any], Any]) -> None:
    """Register how to recover the page number from ``op``'s payload."""
    _PAGE_OF[op] = page_of


def op_page(op: str, payload: Any) -> int | None:
    """The page a message concerns, or None when unknown."""
    extractor = _PAGE_OF.get(op)
    if extractor is None:
        return None
    try:
        page = extractor(payload)
    except Exception:  # noqa: BLE001 - a bad extractor must not kill delivery
        return None
    return page if isinstance(page, int) else None


def delivery_label(target: int, msg: Message) -> str:
    """Scheduling label for delivering ``msg`` at station ``target``.

    The ``n<target>``/``p<page>`` tokens are what the explorer's
    independence relation parses; the trailing ``o<origin>.<msg_id>``
    keeps labels unique per in-flight message.
    """
    page = op_page(msg.op, msg.payload)
    ptag = "p?" if page is None else f"p{page}"
    return f"deliver:n{target}:{ptag}:{msg.kind}:{msg.op}:o{msg.origin}.{msg.msg_id}"


def request_size(arg_bytes: int = 0) -> int:
    """Wire size of a request carrying ``arg_bytes`` of arguments."""
    return HEADER_BYTES + arg_bytes


def reply_size(value_bytes: int = 0) -> int:
    """Wire size of a reply carrying ``value_bytes`` of results."""
    return HEADER_BYTES + value_bytes
