"""Wire message representation and size accounting.

The payload rides as a Python object (the data plane stays functionally
real), while ``nbytes`` is the simulated wire size used for ring
occupancy.  Callers are responsible for declaring honest sizes; helpers
below compute them for the common cases.
"""

from __future__ import annotations

import itertools
import re
import warnings
from typing import Any, Callable, NamedTuple

__all__ = [
    "BROADCAST",
    "HEADER_BYTES",
    "DeliveryLabel",
    "Message",
    "annotate_op",
    "delivery_label",
    "extractor_errors",
    "next_serial",
    "op_page",
    "parse_delivery_label",
    "request_size",
    "reply_size",
    "reset_extractor_errors",
]

#: Destination id meaning "every other station on the ring".
BROADCAST = -1

#: Ring frame header + transport header, charged per message.
HEADER_BYTES = 32

_serial = itertools.count(1)


def next_serial() -> int:
    """Allocate the next global message construction serial.

    Exposed for :mod:`repro.net.pool`: a recycled :class:`Message` gets
    a *fresh* serial on reuse, so serials stay unique per logical
    message even though the carrying object is reused.
    """
    return next(_serial)


class Message:
    """One transport-level message (request, reply, or broadcast).

    A plain ``__slots__`` class rather than a dataclass: one is built per
    request, reply, forward, and retransmission, so construction is on
    the fault hot path.

    Fields: ``src``/``dst`` stations; ``kind`` ("req" | "rep" | "bcast");
    ``op``; ``origin`` (requesting processor — survives forwarding);
    ``msg_id`` (origin's sequence number; dedup key with origin);
    ``payload``; ``nbytes`` (simulated wire size, floored at
    :data:`HEADER_BYTES`); ``load_hint`` (piggybacked process count — "a
    byte ... packed into every message at almost no extra cost");
    ``reply_scheme`` for broadcasts ("any" | "all" | "none");
    ``targets`` (multicast filter: when set on a broadcast frame only
    these stations process it, as ring hardware multicast filtering
    does); ``span`` (causal span id riding the wire, 0 = untraced —
    pure observability, never read by protocol code); ``serial``
    (global construction order, debug aid).
    """

    __slots__ = (
        "src", "dst", "kind", "op", "origin", "msg_id", "payload",
        "nbytes", "load_hint", "reply_scheme", "targets", "span", "serial",
        "refs",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        op: str,
        origin: int,
        msg_id: int,
        payload: Any,
        nbytes: int,
        load_hint: int = 0,
        reply_scheme: str = "all",
        targets: tuple[int, ...] | None = None,
        span: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.op = op
        self.origin = origin
        self.msg_id = msg_id
        self.payload = payload
        self.nbytes = nbytes if nbytes >= HEADER_BYTES else HEADER_BYTES
        self.load_hint = load_hint
        self.reply_scheme = reply_scheme
        self.targets = targets
        self.span = span
        self.serial = next(_serial)
        #: Reference count for free-list pooling (repro.net.pool): the
        #: creator holds one reference; each scheduled delivery holds one
        #: for its in-flight window; a server holds one while handling.
        #: Messages built directly (tests, ad-hoc frames) simply carry
        #: refs=1 and join a pool's free list on their first release.
        self.refs = 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message {self.describe()}>"

    def describe(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.kind}:{self.op} {self.src}->{self.dst} "
            f"origin={self.origin} id={self.msg_id} {self.nbytes}B"
        )


# ---------------------------------------------------------------------------
# Choice-point annotations.
#
# The schedule explorer (repro.analysis.explore) treats two same-tick events
# as commuting only when it can prove they touch disjoint protocol state; for
# message deliveries that proof needs the page a message concerns, which only
# the protocol layer knows.  Each remote op therefore registers a *footprint
# extractor* here — the registry lives in the net layer (below the svm layer)
# so the ring and transport can label their delivery events without importing
# protocol code.  Ops without an extractor simply get no page tag, which the
# explorer treats conservatively (conflicts with everything).

_PAGE_OF: dict[str, Callable[[Any], Any]] = {}

#: Extractor failures per op (exception raised, or a non-int result).
#: The explorer surfaces the total as ``explore.extractor_error``: a
#: silently-degrading footprint would weaken partial-order reduction
#: with no signal at all, which is exactly the failure mode the static
#: certifier exists to rule out.
_EXTRACTOR_ERRORS: dict[str, int] = {}
_EXTRACTOR_WARNED: set[str] = set()


def annotate_op(op: str, page_of: Callable[[Any], Any]) -> None:
    """Register how to recover the page number from ``op``'s payload."""
    _PAGE_OF[op] = page_of


def extractor_errors() -> dict[str, int]:
    """Footprint-extractor failures observed so far, keyed by op."""
    return dict(_EXTRACTOR_ERRORS)


def reset_extractor_errors() -> None:
    """Clear the error counts (and the warn-once latch); test hook."""
    _EXTRACTOR_ERRORS.clear()
    _EXTRACTOR_WARNED.clear()


def _extractor_failed(op: str, why: str) -> None:
    _EXTRACTOR_ERRORS[op] = _EXTRACTOR_ERRORS.get(op, 0) + 1
    if op not in _EXTRACTOR_WARNED:
        _EXTRACTOR_WARNED.add(op)
        warnings.warn(
            f"footprint extractor for op {op!r} {why}; its deliveries "
            "are labelled p? and the schedule explorer treats them as "
            "conflicting with everything (sound but unreduced)",
            RuntimeWarning,
            stacklevel=3,
        )


def op_page(op: str, payload: Any) -> int | None:
    """The page a *request* payload concerns, or None when unknown.

    A failing extractor — raising, or returning something that is not a
    page number — must not kill delivery, but it must not fail silently
    either: each failure is counted (see :func:`extractor_errors`) and
    the first per op warns.
    """
    extractor = _PAGE_OF.get(op)
    if extractor is None:
        return None
    try:
        page = extractor(payload)
    except Exception as exc:  # noqa: BLE001 - degrade delivery labels, not delivery
        _extractor_failed(op, f"raised {type(exc).__name__}: {exc}")
        return None
    # bool is an int subtype; True is an ack value, never page 1.
    if isinstance(page, int) and not isinstance(page, bool):
        return page
    _extractor_failed(op, f"returned non-page {page!r}")
    return None


def delivery_label(target: int, msg: Message) -> str:
    """Scheduling label for delivering ``msg`` at station ``target``.

    The ``n<target>``/``p<page>`` tokens are what the explorer's
    independence relation parses (via :func:`parse_delivery_label`); the
    trailing ``o<origin>.<msg_id>`` keeps labels unique per in-flight
    message.

    Only request and broadcast frames are page-attributed: the
    extractors are registered (and statically certified) against
    *request* payload shapes, and reply payloads have different ones —
    a locate reply carries the owner's node id, which an identity
    extractor would happily mislabel as a page number, silently letting
    the explorer commute deliveries it has no proof about.  Replies
    therefore always carry ``p?`` (conflicts with everything).
    """
    page = op_page(msg.op, msg.payload) if msg.kind != "rep" else None
    ptag = "p?" if page is None else f"p{page}"
    return f"deliver:n{target}:{ptag}:{msg.kind}:{msg.op}:o{msg.origin}.{msg.msg_id}"


class DeliveryLabel(NamedTuple):
    """Parsed form of :func:`delivery_label` (``page`` None for ``p?``)."""

    target: int
    page: int | None
    kind: str
    op: str
    origin: int
    msg_id: int


_LABEL_RE = re.compile(
    r"^deliver:n(\d+):p(\d+|\?):(\w+):([\w.]+):o(\d+)\.(\d+)$"
)


def parse_delivery_label(label: str | None) -> DeliveryLabel | None:
    """Parse a delivery label; None for non-delivery labels.

    This is the *only* parser of the label grammar — it lives next to
    the formatter so the two cannot drift (the explorer's independence
    relation imports it rather than re-deriving the format).
    """
    match = _LABEL_RE.match(label) if label else None
    if match is None:
        return None
    page_tok = match.group(2)
    return DeliveryLabel(
        target=int(match.group(1)),
        page=None if page_tok == "?" else int(page_tok),
        kind=match.group(3),
        op=match.group(4),
        origin=int(match.group(5)),
        msg_id=int(match.group(6)),
    )


def request_size(arg_bytes: int = 0) -> int:
    """Wire size of a request carrying ``arg_bytes`` of arguments."""
    return HEADER_BYTES + arg_bytes


def reply_size(value_bytes: int = 0) -> int:
    """Wire size of a reply carrying ``value_bytes`` of results."""
    return HEADER_BYTES + value_bytes
