"""Network substrate: the Apollo Domain token ring and IVY's remote-operation layer.

Layering (bottom-up), mirroring the prototype:

- `repro.net.ring` — the 12 Mbit/s shared-medium token ring: transmissions
  from all nodes serialise, broadcasts are a single transmission heard by
  every other station, frames can be lost.
- `repro.net.transport` — reliable request/reply with the paper's
  "resend replies only when necessary" retransmission philosophy:
  duplicate requests are answered from a reply cache, execution is
  at-most-once, and every message piggybacks the sender's load hint.
- `repro.net.remoteop` — IVY's remote operation module: registered
  operation handlers, the *forwarding* mechanism (a request hops
  processor-to-processor and only the final executor replies to the
  origin — essential for the dynamic distributed manager), and
  broadcast with the paper's three reply schemes (any / all / none).
"""

from repro.net.packet import BROADCAST, Message
from repro.net.ring import TokenRing
from repro.net.transport import Transport
from repro.net.remoteop import Forward, RemoteOp

__all__ = ["BROADCAST", "Message", "TokenRing", "Transport", "RemoteOp", "Forward"]
