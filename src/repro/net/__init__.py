"""Network substrate: pluggable fabrics and IVY's remote-operation layer.

Layering (bottom-up), mirroring the prototype:

- `repro.net.fabric` — the transmission-medium abstraction (`Fabric`,
  `FabricStats`, `make_fabric`) with two backends: `repro.net.ring`,
  the 12 Mbit/s shared-medium token ring where transmissions from all
  nodes serialise and broadcasts are heard by snooping, and
  `repro.net.fabric.switched`, a crossbar-switched point-to-point
  interconnect with concurrent disjoint links and multicast-tree
  broadcast.
- `repro.net.transport` — reliable request/reply with the paper's
  "resend replies only when necessary" retransmission philosophy:
  duplicate requests are answered from a reply cache, execution is
  at-most-once, and every message piggybacks the sender's load hint.
  Backend-agnostic: identical on either fabric.
- `repro.net.remoteop` — IVY's remote operation module: registered
  operation handlers, the *forwarding* mechanism (a request hops
  processor-to-processor and only the final executor replies to the
  origin — essential for the dynamic distributed manager), and
  broadcast with the paper's three reply schemes (any / all / none).
"""

from repro.net.fabric import FABRIC_BACKENDS, Fabric, FabricStats, LinkStats, make_fabric
from repro.net.fabric.switched import SwitchedFabric
from repro.net.packet import BROADCAST, Message
from repro.net.ring import TokenRing
from repro.net.transport import Transport
from repro.net.remoteop import Forward, RemoteOp

__all__ = [
    "BROADCAST",
    "FABRIC_BACKENDS",
    "Fabric",
    "FabricStats",
    "Forward",
    "LinkStats",
    "Message",
    "RemoteOp",
    "SwitchedFabric",
    "TokenRing",
    "Transport",
    "make_fabric",
]
