"""A switched point-to-point interconnect with multicast-tree broadcast.

Where the token ring serialises *all* traffic behind one shared medium,
the switched fabric gives every station a full-duplex link into a
central crossbar: disjoint source/destination pairs communicate
concurrently, and contention is local — per-port FIFO queueing on the
sender's egress (tx) link and the receiver's ingress (rx) link — rather
than global.  This is the Autonet/ATM-class topology of the mid-90s
multicomputer evaluations, and it is what lets the reproduction scale
past the ring's hard O(N) wall to hundred-node runs.

One unicast transmission is three hops, all computed arithmetically at
``send`` time (no intermediate simulator events — only the final
delivery is an event, exactly like the ring):

1. **egress** — the frame waits for the source's tx port
   (``start_tx = max(ready, tx_free[src])``), then occupies it for
   ``occupancy_ns(nbytes)``;
2. **crossbar** — a fixed ``switch_latency`` between the egress and
   ingress links;
3. **ingress** — the frame waits for the destination's rx port, then
   occupies it for the same occupancy, followed by ``delivery_latency``
   of receiver DMA.

Broadcast is **not** free snooping: it is an explicit k-ary multicast
tree over the targets in sorted station order.  The source feeds the
first ``k`` targets directly; the target at tree position ``p`` relays
to positions ``k*(p+1) .. k*(p+1)+k-1``, becoming ready to forward
``relay_cost`` after its own frame arrives.  Every relay transmission
pays real egress/ingress occupancy, so broadcast-manager algorithms are
charged genuine fan-out cost.

Loss semantics match the ring: the drop decision (explorer
``drop_policy`` first, then the random draw) is made once per *final
target* in sorted order, and a drop suppresses only that station's
delivery event — the NIC-level tree forwarding has already happened by
the time host software loses the frame, so timing and port bookkeeping
are independent of loss and the transport's retransmission protocol
recovers exactly the dropped receiver.
"""

from __future__ import annotations

import numpy as np

from repro.config import FabricConfig
from repro.net.fabric import Fabric, LinkStats
from repro.net.packet import BROADCAST, Message
from repro.obs import NULL_OBS, Observability
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACE, TraceRecorder

__all__ = ["SwitchedFabric", "SwitchedStats"]


class SwitchedStats:
    """Aggregate and per-port statistics for the switched fabric.

    The flat counters mirror :class:`repro.net.ring.RingStats` so every
    existing consumer works unchanged; ``busy_ns`` here is *summed link
    occupancy* across all ports (it can exceed wall-clock time — that
    is the concurrency the crossbar buys).  ``relays`` counts multicast
    tree re-transmissions, the real cost of broadcast off-ring.
    """

    __slots__ = (
        "messages",
        "broadcasts",
        "bytes_sent",
        "busy_ns",
        "lost_frames",
        "relays",
        "_tx",
        "_rx",
    )

    def __init__(self, nnodes: int) -> None:
        self.messages = 0
        self.broadcasts = 0
        self.bytes_sent = 0
        self.busy_ns = 0
        self.lost_frames = 0
        self.relays = 0
        self._tx = [LinkStats() for _ in range(nnodes)]
        self._rx = [LinkStats() for _ in range(nnodes)]

    def snapshot(self) -> dict[str, int]:
        return {
            "messages": self.messages,
            "broadcasts": self.broadcasts,
            "bytes_sent": self.bytes_sent,
            "busy_ns": self.busy_ns,
            "lost_frames": self.lost_frames,
            "relays": self.relays,
        }

    def links(self) -> dict[str, LinkStats]:
        out: dict[str, LinkStats] = {}
        for i, link in enumerate(self._tx):
            out[f"tx[{i}]"] = link
        for i, link in enumerate(self._rx):
            out[f"rx[{i}]"] = link
        return out


class SwitchedFabric(Fabric):
    """Crossbar-switched point-to-point network of ``nnodes`` stations."""

    name = "switched"

    def __init__(
        self,
        sim: Simulator,
        config: FabricConfig,
        nnodes: int,
        rng: np.random.Generator | None = None,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        super().__init__(sim, nnodes, trace, obs)
        self.config = config
        self.rng = rng
        #: Loss is configured once; a lossless fabric skips the per-target
        #: random draw entirely.
        self._lossy = config.loss_rate > 0.0 and rng is not None
        self.stats: SwitchedStats = SwitchedStats(nnodes)
        #: Per-station port bookings: the absolute time each egress/
        #: ingress link becomes free.  FIFO queueing falls out of always
        #: booking at ``max(ready, free_at)``.
        self._tx_free = [0] * nnodes
        self._rx_free = [0] * nnodes

    # ------------------------------------------------------------------

    def occupancy_ns(self, nbytes: int) -> int:
        """Link time one message of ``nbytes`` occupies one port for."""
        cfg = self.config
        fragments = max(1, -(-nbytes // cfg.max_frame_bytes))  # ceil div
        wire = (nbytes * 8 * 1_000_000_000) // cfg.link_bandwidth_bps
        return fragments * cfg.link_overhead + wire

    def _hop(self, src: int, dst: int, ready: int, occupancy: int) -> int:
        """Transmit one frame ``src -> dst`` starting no earlier than
        ``ready``; book both ports and return the delivery time."""
        cfg = self.config
        stats = self.stats
        tx_free = self._tx_free[src]
        start_tx = ready if ready >= tx_free else tx_free
        self._tx_free[src] = start_tx + occupancy
        tx_link = stats._tx[src]
        tx_link.messages += 1
        tx_link.busy_ns += occupancy
        backlog = start_tx - ready
        if backlog > tx_link.peak_backlog_ns:
            tx_link.peak_backlog_ns = backlog
        if self._obs_on:
            # Egress queueing delay — the switched fabric's analogue of
            # the ring's shared-medium wait (histogrammed in ns).
            self.obs.observe("fabric.queue_ns", backlog)

        at_switch = start_tx + occupancy + cfg.switch_latency
        rx_free = self._rx_free[dst]
        start_rx = at_switch if at_switch >= rx_free else rx_free
        self._rx_free[dst] = start_rx + occupancy
        rx_link = stats._rx[dst]
        rx_link.messages += 1
        rx_link.busy_ns += occupancy
        backlog = start_rx - at_switch
        if backlog > rx_link.peak_backlog_ns:
            rx_link.peak_backlog_ns = backlog

        stats.busy_ns += 2 * occupancy
        if self._timeline is not None:
            # Windowed busy accounting per port; both bookings above are
            # already final, so this observes only.
            self._timeline.link_busy(f"tx[{src}]", start_tx, start_tx + occupancy)
            self._timeline.link_busy(f"rx[{dst}]", start_rx, start_rx + occupancy)
        return start_rx + occupancy + cfg.delivery_latency

    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Queue ``msg`` for transmission; delivery is scheduled events.

        Returns immediately (the sending *software* cost is charged by
        the transport layer, not here — the medium only models wire
        time)."""
        if msg.dst != BROADCAST and not 0 <= msg.dst < self.nnodes:
            raise ValueError(f"destination {msg.dst} out of range")
        if msg.dst == msg.src:
            raise ValueError("a station does not transmit to itself")
        now = self.sim.now
        occupancy = self.occupancy_ns(msg.nbytes)
        stats = self.stats
        stats.messages += 1

        if msg.dst == BROADCAST:
            stats.broadcasts += 1
            targets = [n for n in range(self.nnodes) if n != msg.src]
            arrivals = self._multicast(msg, targets, now, occupancy)
        else:
            targets = [msg.dst]
            stats.bytes_sent += msg.nbytes
            arrivals = [self._hop(msg.src, msg.dst, now, occupancy)]

        if self.trace:
            self.trace.emit(
                "fabric.send", src=msg.src, dst=msg.dst, op=msg.op,
                kind=msg.kind, nbytes=msg.nbytes, arrival=arrivals[-1],
            )
        drop_policy = self.drop_policy
        for target, arrival in zip(targets, arrivals):
            forced = drop_policy is not None and drop_policy(msg, target)
            if forced or (self._lossy and self._drop()):
                stats.lost_frames += 1
                if self.trace:
                    self.trace.emit(
                        "fabric.drop", src=msg.src, dst=target, op=msg.op
                    )
                continue
            self._schedule_delivery(arrival, target, msg)

    def _multicast(
        self, msg: Message, targets: list[int], now: int, occupancy: int
    ) -> list[int]:
        """Book the k-ary multicast tree over ``targets`` (already in
        sorted station order) and return each target's arrival time.

        Tree position ``p < k`` is fed directly by the source; position
        ``p >= k`` is fed by the target at position ``p // k - 1``, which
        becomes ready to forward ``relay_cost`` after its own arrival.
        Parents always occupy earlier positions, so one forward pass
        computes the whole tree.
        """
        cfg = self.config
        k = cfg.multicast_fanout
        stats = self.stats
        arrivals: list[int] = []
        for pos, target in enumerate(targets):
            if pos < k:
                sender, ready = msg.src, now
            else:
                parent = pos // k - 1
                sender = targets[parent]
                ready = arrivals[parent] + cfg.relay_cost
                stats.relays += 1
            stats.bytes_sent += msg.nbytes
            arrivals.append(self._hop(sender, target, ready, occupancy))
        return arrivals

    def _drop(self) -> bool:
        loss = self.config.loss_rate
        if loss <= 0.0 or self.rng is None:
            return False
        return bool(self.rng.random() < loss)
