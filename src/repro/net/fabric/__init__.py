"""Pluggable network fabric: the transmission-medium abstraction.

Everything above the medium — the reliable transport, the remote-
operation layer, the coherence protocols — speaks to the network
through the :class:`Fabric` interface: ``attach`` a delivery callback
per station, ``send`` a :class:`repro.net.packet.Message`, read
aggregate :class:`FabricStats`.  What the medium *is* is a backend
choice (``ClusterConfig.fabric.backend``):

- ``"ring"`` — :class:`repro.net.ring.TokenRing`, the Apollo Domain
  12 Mbit/s shared medium of the paper.  One frame in flight at a time;
  broadcast is free snooping.  The default, and the backend every
  committed golden schedule assumes.
- ``"switched"`` — :class:`repro.net.fabric.switched.SwitchedFabric`,
  a switched point-to-point interconnect: per-station full-duplex
  links into a crossbar, concurrent transmission on disjoint links,
  per-port FIFO queueing, and broadcast as an explicit multicast tree.

The contract every backend must honour (and the transport relies on):

- delivery is by simulator events only — ``send`` returns immediately
  and never calls a receiver synchronously;
- when a :class:`~repro.sim.kernel.Scheduler` is installed, every
  delivery event is stamped with
  :func:`repro.net.packet.delivery_label` so the schedule explorer can
  order same-tick deliveries (the label grammar is backend-agnostic:
  ``parse_delivery_label`` works identically on both fabrics);
- the :attr:`Fabric.drop_policy` hook is consulted once per
  ``(msg, target)`` delivery attempt, in deterministic target order,
  *before* any random loss draw — the explorer's delay-injection
  strategy numbers attempts through it;
- all arithmetic is integer nanoseconds: a fabric is a pure function
  of its inputs, never of the host (the determinism lint covers this
  package).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.net.packet import Message, delivery_label
from repro.net.pool import MessagePool, PagePool
from repro.obs import NULL_OBS, Observability
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACE, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.config import ClusterConfig
    from repro.sim.rng import RngStreams

__all__ = [
    "FABRIC_BACKENDS",
    "Fabric",
    "FabricStats",
    "LinkStats",
    "make_fabric",
]


class LinkStats:
    """Per-link medium accounting: one row of a fabric's utilisation map.

    ``busy_ns`` is how long the link carried bits, ``messages`` how many
    transmissions it carried, and ``peak_backlog_ns`` the furthest ahead
    of the sender's "now" the link was ever booked — the FIFO queueing
    depth expressed in time (0 on an uncontended link).
    """

    __slots__ = ("busy_ns", "messages", "peak_backlog_ns")

    def __init__(self) -> None:
        self.busy_ns = 0
        self.messages = 0
        self.peak_backlog_ns = 0

    def utilisation(self, total_ns: int) -> float:
        """Fraction of ``total_ns`` this link spent carrying bits."""
        return self.busy_ns / total_ns if total_ns > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LinkStats busy={self.busy_ns}ns msgs={self.messages} "
            f"backlog<= {self.peak_backlog_ns}ns>"
        )


class FabricStats(Protocol):
    """What every medium's statistics object must expose.

    The flat counters keep the historical ``RingStats`` names so
    existing consumers (ablation tables, ``RunResult.ring_stats``) work
    on any backend; :meth:`links` is the generalisation — the shared
    ring is a single link named ``"medium"``, the switched fabric one
    egress (``tx[i]``) and one ingress (``rx[i]``) link per station.
    """

    messages: int
    broadcasts: int
    bytes_sent: int
    lost_frames: int

    def snapshot(self) -> dict[str, int]:
        """Flat counter dict (stable keys per backend)."""
        ...  # pragma: no cover - protocol

    def links(self) -> dict[str, LinkStats]:
        """Per-link utilisation/queueing map, keyed by link name."""
        ...  # pragma: no cover - protocol


class Fabric:
    """Base class for transmission media connecting ``nnodes`` stations.

    Subclasses implement :meth:`send` (and set :attr:`stats`); station
    attachment, delivery dispatch and the explorer's deterministic drop
    hook are shared here so the transport — and the schedule explorer —
    see identical behaviour on every backend.
    """

    #: Backend name (the ``ClusterConfig.fabric.backend`` key).
    name = "?"

    def __init__(
        self,
        sim: Simulator,
        nnodes: int,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        if nnodes < 1:
            raise ValueError(f"{type(self).__name__} needs at least one station")
        self.sim = sim
        self.nnodes = nnodes
        self.trace = trace
        self.obs = obs
        #: ``enabled`` is fixed at construction; caching the truth value
        #: saves a __bool__ dispatch on every send.
        self._obs_on = bool(obs)
        #: Windowed per-link busy accounting (None unless a timeline is
        #: configured); backends report each booked transmission to it.
        #: Purely observational: the booking times are computed first,
        #: identically, whether or not anyone records them.
        self._timeline = obs.timeline if self._obs_on else None
        self.stats: FabricStats
        #: Free-list pools for the zero-allocation message path, shared
        #: by every transport endpoint on this fabric: envelopes are
        #: acquired by the transport, retained per scheduled delivery in
        #: :meth:`_schedule_delivery`, and released in :meth:`_deliver`
        #: once the receiver callback returns.  ``pages`` recycles the
        #: page-sized snapshot buffers the coherence servers ship.
        self.pool = MessagePool()
        self.pages = PagePool()
        self._receivers: dict[int, Callable[[Message], None]] = {}
        #: Deterministic drop hook for the schedule explorer's delay-
        #: injection strategy: consulted once per (msg, target) delivery
        #: attempt *before* any random loss draw; returning True drops
        #: the frame (the transport's retransmission protocol recovers
        #: it, creating the delayed/reordered delivery being explored).
        self.drop_policy: Callable[[Message, int], bool] | None = None

    # ------------------------------------------------------------------

    def attach(self, node_id: int, receiver: Callable[[Message], None]) -> None:
        """Register the delivery callback for a station."""
        if not 0 <= node_id < self.nnodes:
            raise ValueError(f"station {node_id} out of range")
        if node_id in self._receivers:
            raise ValueError(f"station {node_id} already attached")
        self._receivers[node_id] = receiver

    def send(self, msg: Message) -> None:
        """Queue ``msg`` for transmission; delivery is scheduled events.

        Returns immediately (the sending *software* cost is charged by
        the transport layer, not here — the medium only models wire
        time)."""
        raise NotImplementedError

    def occupancy_ns(self, nbytes: int) -> int:
        """Medium time one message of ``nbytes`` occupies one link for."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def _schedule_delivery(self, arrival: int, target: int, msg: Message) -> None:
        """Schedule ``msg``'s delivery at ``target`` for absolute time
        ``arrival``, labelled for the explorer when one is installed."""
        # In-flight reference, dropped by _deliver: the creator may
        # complete (and release) the envelope while copies are en route.
        msg.refs += 1
        sim = self.sim
        if sim.scheduler is not None:
            # Labels matter only to an installed Scheduler; building one
            # per delivery is measurable on the hot path, so skip it on
            # uncontrolled runs.
            sim.schedule_at_nocancel(
                arrival, self._deliver, target, msg,
                label=delivery_label(target, msg),
            )
        else:
            sim.schedule_at_nocancel(arrival, self._deliver, target, msg)

    def _deliver(self, target: int, msg: Message) -> None:
        receiver = self._receivers.get(target)
        if receiver is None:
            raise RuntimeError(f"no receiver attached at station {target}")
        receiver(msg)
        # A server that keeps handling past this point took its own
        # reference in RemoteOp._dispatch; the in-flight one ends here.
        self.pool.release(msg)


#: Known backend names -> human summary (the registry ``make_fabric``
#: dispatches on; the summaries feed error messages and docs).
FABRIC_BACKENDS: dict[str, str] = {
    "ring": "shared-medium token ring (the paper's Apollo Domain hardware)",
    "switched": "switched point-to-point crossbar with multicast-tree broadcast",
}


def make_fabric(
    sim: Simulator,
    config: "ClusterConfig",
    rngs: "RngStreams",
    trace: TraceRecorder = NULL_TRACE,
    obs: Observability = NULL_OBS,
) -> Fabric:
    """Instantiate the configured network backend for one cluster.

    An unknown ``config.fabric.backend`` raises a structured
    :class:`repro.config.ConfigError` carrying the known names and, for
    near-misses, the exact name the caller probably meant.
    """
    backend = config.fabric.backend
    if backend == "ring":
        from repro.net.ring import TokenRing

        # The rng stream name predates the fabric abstraction; keeping
        # it preserves every committed golden schedule bit-for-bit.
        return TokenRing(
            sim, config.ring, config.nodes, rngs.stream("ring"), trace, obs=obs
        )
    if backend == "switched":
        from repro.net.fabric.switched import SwitchedFabric

        rng: "np.random.Generator | None" = (
            rngs.stream("fabric") if config.fabric.loss_rate > 0.0 else None
        )
        return SwitchedFabric(
            sim, config.fabric, config.nodes, rng, trace, obs=obs
        )

    import difflib

    from repro.config import ConfigError

    known = tuple(sorted(FABRIC_BACKENDS))
    close = difflib.get_close_matches(str(backend), known, n=1, cutoff=0.6)
    raise ConfigError(
        "fabric.backend", backend, known, suggestion=close[0] if close else None
    )
