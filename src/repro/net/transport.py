"""Reliable request/reply transport over the network fabric.

The transport is backend-agnostic: it speaks to the medium only through
the :class:`repro.net.fabric.Fabric` interface, so retransmission, the
reply cache, forwarding and the delivery-label grammar behave
identically on the token ring and the switched fabric.

Implements the paper's retransmission philosophy: *resend replies only
when necessary*.  A server caches the reply of every executed request;
when a duplicate request arrives (because the original reply was lost)
the cached reply is resent without re-executing the operation.  Execution
is therefore at-most-once, under the paper's two assumptions — local
computation is always correct, and a received packet's content is
correct.

The transport also implements the pieces IVY's remote-operation layer
needs that ordinary RPC lacks:

- **Forwarding**: a request can hop through intermediate processors; only
  the final executor replies, directly to the origin.  A node that
  forwarded a request re-forwards duplicates (it may not re-execute,
  because it never executed), so a loss on any hop is recovered by the
  origin's retransmission timer.
- **Broadcast** with three reply schemes: ``"any"`` (first reply wins),
  ``"all"`` (collect one reply per other station), ``"none"`` (fire and
  forget).
- **Load hints**: every outgoing message carries the sender's current
  process count; receivers feed it to the scheduler's hint table.

Requests made to the local node bypass the ring with a small local
delivery delay, so protocol code treats all destinations uniformly
(e.g. when the fixed distributed manager maps a page to the faulting
processor itself).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.config import MICROSECOND, ClusterConfig
from repro.net.fabric import Fabric
from repro.net.packet import BROADCAST, HEADER_BYTES, Message, delivery_label, op_page
from repro.sim.kernel import CancelHandle, Simulator
from repro.sim.process import Compute, Effect, SimDriver
from repro.sim.sync import Gate
from repro.sim.trace import NULL_TRACE, TraceRecorder

__all__ = ["Transport", "TransportError", "TransportStats"]

#: Delivery delay for messages a node sends to itself (no ring involved).
LOCAL_DELIVERY_NS = 20 * MICROSECOND


class TransportError(RuntimeError):
    """A request exhausted its retransmission budget."""


class TransportStats:
    """Per-node transport counters."""

    __slots__ = (
        "requests_sent",
        "replies_sent",
        "forwards_sent",
        "broadcasts_sent",
        "retransmits",
        "duplicates_dropped",
        "replies_resent",
    )

    requests_sent: int
    replies_sent: int
    forwards_sent: int
    broadcasts_sent: int
    retransmits: int
    duplicates_dropped: int
    replies_resent: int

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Pending:
    """Book-keeping for one outstanding request or broadcast."""

    __slots__ = ("msg", "gate", "timer", "retries", "want", "replies")

    def __init__(self, msg: Message, want: int) -> None:
        self.msg = msg
        self.gate = Gate()
        self.timer: CancelHandle | None = None
        self.retries = 0
        #: Number of replies still needed (1 for unicast/any, N-1 for all).
        self.want = want
        #: src -> value, for broadcast-all.
        self.replies: dict[int, Any] = {}


# Reply-cache states (dedup table).
_IN_PROGRESS = ("inprogress",)


class Transport:
    """One reliable transport endpoint per simulated processor."""

    def __init__(
        self,
        sim: Simulator,
        driver: SimDriver,
        ring: Fabric,
        node_id: int,
        config: ClusterConfig,
        trace: TraceRecorder = NULL_TRACE,
    ) -> None:
        self.sim = sim
        self.driver = driver
        #: The transmission medium.  Kept under the historical name
        #: ``ring`` (the attribute predates pluggable fabrics) but typed
        #: against the backend-agnostic Fabric interface — retransmission
        #: and labelling below never assume a shared medium.
        self.ring = ring
        self.node_id = node_id
        self.config = config
        self.trace = trace
        #: Envelope free-list, shared fabric-wide (see repro.net.pool).
        #: Lifetime protocol: the _Pending record (or the reply cache,
        #: for forwards) holds the creator reference; the fabric holds
        #: one per in-flight delivery; RemoteOp holds one per running
        #: handler.  Release sites below mirror exactly those holders.
        self.pool = ring.pool
        self.stats = TransportStats()
        self._next_id = 0
        self._pending: dict[int, _Pending] = {}
        self._reply_cache: dict[tuple[int, int], tuple[Any, ...]] = {}
        #: Upcall into the remote-operation layer for incoming requests.
        self._request_handler: Callable[[Message], None] | None = None
        #: Asked on duplicates of *forwarded* requests: "would this node
        #: execute the operation locally now?"  If yes the stale sticky
        #: route is discarded and the handler re-runs — breaking the
        #: routing loop that forms when ownership moves TO a node that
        #: earlier forwarded the same request elsewhere (its sticky entry
        #: would otherwise bounce every retransmission away forever).
        self.duplicate_probe: Callable[[Message], bool] = lambda msg: False
        #: Provides this node's load byte, piggybacked on every message.
        self.load_provider: Callable[[], int] = lambda: 0
        #: Consumes load hints observed on incoming messages.
        self.hint_sink: Callable[[int, int], None] = lambda src, load: None
        ring.attach(node_id, self._on_message)

    # ------------------------------------------------------------------
    # wiring

    def set_request_handler(self, handler: Callable[[Message], None]) -> None:
        self._request_handler = handler

    # ------------------------------------------------------------------
    # client side

    def request(
        self,
        dst: int,
        op: str,
        payload: Any,
        nbytes: int = HEADER_BYTES,
        span_id: int = 0,
    ) -> Generator[Effect, Any, Any]:
        """Send a request and wait for the (possibly forwarded) reply.

        Runs in the caller's task; the caller's CPU is busy for the
        software send cost, then released until the reply arrives.
        """
        self._next_id += 1
        msg = self.pool.acquire(
            self.node_id, dst, "req", op, self.node_id, self._next_id,
            payload, nbytes, span=span_id,
        )
        pending = _Pending(msg, want=1)
        self._pending[msg.msg_id] = pending
        self.stats.requests_sent += 1
        yield Compute(self.config.transport_cpu)
        self._transmit(msg)
        self._arm_timer(pending)
        value = yield from pending.gate.wait()
        if isinstance(value, TransportError):
            raise value
        return value

    def broadcast(
        self,
        op: str,
        payload: Any,
        nbytes: int = HEADER_BYTES,
        scheme: str = "all",
        span_id: int = 0,
    ) -> Generator[Effect, Any, Any]:
        """Broadcast a request to every other station.

        Returns the single winning reply for ``scheme="any"``, a dict
        ``{station: value}`` for ``"all"``, and ``None`` immediately for
        ``"none"``.  On a single-node cluster there is nobody to hear the
        broadcast: "any" would wait forever, so it is rejected.
        """
        others = self.ring.nnodes - 1
        if scheme not in ("any", "all", "none"):
            raise ValueError(f"unknown reply scheme {scheme!r}")
        self._next_id += 1
        msg = self.pool.acquire(
            self.node_id, BROADCAST, "bcast", op, self.node_id, self._next_id,
            payload, nbytes, reply_scheme=scheme, span=span_id,
        )
        self.stats.broadcasts_sent += 1
        yield Compute(self.config.transport_cpu)
        if others == 0:
            self.pool.release(msg)
            if scheme == "any":
                raise TransportError("broadcast 'any' with no other stations")
            return {} if scheme == "all" else None
        self._transmit(msg)
        if scheme == "none":
            # Fire and forget: no _Pending record, so the creator
            # reference ends here (in-flight deliveries hold their own).
            self.pool.release(msg)
            return None
        pending = _Pending(msg, want=1 if scheme == "any" else others)
        self._pending[msg.msg_id] = pending
        self._arm_timer(pending)
        value = yield from pending.gate.wait()
        if isinstance(value, TransportError):
            raise value
        return value

    def multicast(
        self,
        targets: tuple[int, ...],
        op: str,
        payload: Any,
        nbytes: int = HEADER_BYTES,
        span_id: int = 0,
    ) -> Generator[Effect, Any, dict[int, Any]]:
        """One ring transmission processed only by ``targets``; collect a
        reply from each (the paper's invalidation pattern).

        Returns ``{station: value}``.  An empty target set is a no-op.
        """
        targets = tuple(sorted(set(targets)))
        if self.node_id in targets:
            raise ValueError("multicast to self is a protocol bug")
        if not targets:
            return {}
        self._next_id += 1
        msg = self.pool.acquire(
            self.node_id, BROADCAST, "bcast", op, self.node_id, self._next_id,
            payload, nbytes, reply_scheme="all", targets=targets, span=span_id,
        )
        pending = _Pending(msg, want=len(targets))
        self._pending[msg.msg_id] = pending
        self.stats.broadcasts_sent += 1
        yield Compute(self.config.transport_cpu)
        self._transmit(msg)
        self._arm_timer(pending)
        value = yield from pending.gate.wait()
        if isinstance(value, TransportError):
            raise value
        return value

    # ------------------------------------------------------------------
    # server side (called from the remote-operation layer)

    def send_reply(
        self, msg: Message, value: Any, nbytes: int = HEADER_BYTES
    ) -> Generator[Effect, Any, None]:
        """Reply to ``msg``'s origin and cache the reply for duplicates."""
        self._reply_cache[(msg.origin, msg.msg_id)] = ("done", value, nbytes)
        self.stats.replies_sent += 1
        yield Compute(self.config.transport_cpu)
        rep = self.pool.acquire(
            self.node_id, msg.origin, "rep", msg.op, msg.origin,
            msg.msg_id, value, nbytes, span=msg.span,
        )
        self._transmit(rep)
        # Replies are single-delivery transients: the cache keeps the
        # *value*, never the envelope, so the creator reference ends at
        # hand-off (lost replies are recovered by request retransmission).
        self.pool.release(rep)

    def forward(
        self,
        dst: int,
        msg: Message,
        payload: Any = None,
        nbytes: int | None = None,
        span_id: int | None = None,
    ) -> Generator[Effect, Any, None]:
        """Forward ``msg`` to ``dst`` keeping origin/msg_id; no local reply.

        The eventual executor replies straight to the origin.  Forwarding
        is *sticky*: a duplicate of this request (origin retransmission)
        is re-sent along the same recorded hop rather than re-routed
        through the handler.  Re-routing would chase ownership hints that
        were updated by the first pass — including hints that now point
        back at the (still blocked) origin itself — while the recorded
        hop provably leads to the executor whose reply cache can answer.
        """
        self.stats.forwards_sent += 1
        forwarded = self.pool.acquire(
            self.node_id, dst, "req", msg.op, msg.origin, msg.msg_id,
            msg.payload if payload is None else payload,
            msg.nbytes if nbytes is None else nbytes,
            span=msg.span if span_id is None else span_id,
        )
        # The sticky-route cache entry holds the creator reference (it
        # retransmits this envelope on duplicates); released when the
        # route is discarded (cycle/probe breakout, clear_request).
        self._reply_cache[(msg.origin, msg.msg_id)] = ("forwarded", forwarded)
        yield Compute(self.config.transport_cpu)
        self._transmit(forwarded)

    def mark_no_reply(self, msg: Message) -> None:
        """Record completion of an operation that sends no reply (the
        ``"none"`` broadcast scheme); duplicates are dropped."""
        self._reply_cache[(msg.origin, msg.msg_id)] = ("noreply",)

    def clear_request(self, msg: Message) -> None:
        """Forget a request entirely so a duplicate re-executes.

        Used when a handler answered NO_REPLY to a broadcast location
        request: staying silent has no side effects, and the state that
        made it silent (not being the owner) may have changed by the time
        the origin retransmits — e.g. a broadcast that lands in the
        window between an old owner relinquishing a page and the new
        owner installing it gets no reply from *anyone*, and only the
        retransmission finding the settled owner recovers."""
        cached = self._reply_cache.pop((msg.origin, msg.msg_id), None)
        if cached is not None and cached[0] == "forwarded":
            self.pool.release(cached[1])

    # ------------------------------------------------------------------
    # internals

    def _transmit(self, msg: Message) -> None:
        msg.load_hint = self.load_provider()
        if msg.dst == self.node_id:
            # Local deliveries bypass the fabric, so the in-flight
            # reference (fabric._schedule_delivery's job) is taken here
            # and dropped by _deliver_local after the callback returns.
            msg.refs += 1
            if self.sim.scheduler is not None:
                self.sim.schedule_nocancel(
                    LOCAL_DELIVERY_NS, self._deliver_local, msg,
                    label=delivery_label(self.node_id, msg),
                )
            else:
                self.sim.schedule_nocancel(LOCAL_DELIVERY_NS, self._deliver_local, msg)
        else:
            self.ring.send(msg)

    def _deliver_local(self, msg: Message) -> None:
        self._on_message(msg)
        self.pool.release(msg)

    def _arm_timer(self, pending: _Pending) -> None:
        # The timer event is labelled so the schedule explorer can order a
        # retransmission against same-tick deliveries: a retransmitted
        # request racing its own original (or a stale reply) is exactly
        # the reordering the delay-injection strategy exists to exercise.
        if self.sim.scheduler is None:
            # The label is never read without a scheduler installed;
            # op_page + the f-string are pure overhead per request.
            pending.timer = self.sim.schedule(
                self.config.retransmit_timeout, self._retransmit, pending
            )
            return
        msg = pending.msg
        page = op_page(msg.op, msg.payload)
        ptag = "p?" if page is None else f"p{page}"
        pending.timer = self.sim.schedule(
            self.config.retransmit_timeout, self._retransmit, pending,
            label=f"retransmit:n{self.node_id}:{ptag}:{msg.op}:o{msg.origin}.{msg.msg_id}",
        )

    def _retransmit(self, pending: _Pending) -> None:
        if pending.gate.posted or pending.msg.msg_id not in self._pending:
            return
        pending.retries += 1
        if pending.retries > self.config.max_retransmits:
            del self._pending[pending.msg.msg_id]
            error = TransportError(
                f"request {pending.msg.op} from {self.node_id} to "
                f"{pending.msg.dst} gave up after {pending.retries - 1} retransmits"
            )
            self.pool.release(pending.msg)
            pending.gate.post(error)
            return
        self.stats.retransmits += 1
        if self.trace:
            self.trace.emit(
                "transport.retransmit", node=self.node_id,
                op=pending.msg.op, msg_id=pending.msg.msg_id,
            )
        self._transmit(pending.msg)
        self._arm_timer(pending)

    def _on_message(self, msg: Message) -> None:
        self.hint_sink(msg.src, msg.load_hint)
        if msg.targets is not None and self.node_id not in msg.targets:
            return  # multicast frame filtered out by the ring interface
        if msg.kind == "rep":
            self._on_reply(msg)
        else:
            self._on_request(msg)

    def _on_reply(self, msg: Message) -> None:
        pending = self._pending.get(msg.msg_id)
        if pending is None or pending.gate.posted:
            return  # stale or duplicate reply — ignore
        if pending.msg.kind == "bcast" and pending.msg.reply_scheme == "all":
            if msg.src in pending.replies:
                return
            pending.replies[msg.src] = msg.payload
            if len(pending.replies) < pending.want:
                return
            result: Any = dict(pending.replies)
        else:
            result = msg.payload
        del self._pending[msg.msg_id]
        if pending.timer is not None:
            pending.timer.cancel()
        # Request complete: drop the creator reference.  Retransmitted
        # copies still in flight hold their own references, so this is a
        # decrement, not necessarily the recycle.
        self.pool.release(pending.msg)
        pending.gate.post(result)

    def _on_request(self, msg: Message) -> None:
        key = (msg.origin, msg.msg_id)
        cached = self._reply_cache.get(key)
        if cached is None:
            self._reply_cache[key] = _IN_PROGRESS
            if self._request_handler is None:
                raise RuntimeError(f"node {self.node_id}: no request handler")
            self._request_handler(msg)
            return
        if cached is _IN_PROGRESS:
            self.stats.duplicates_dropped += 1
            return
        if cached[0] == "forwarded":
            if cached[1].dst == msg.src or self.duplicate_probe(msg):
                # Drop the stale route and re-run the handler, in two cases.
                # Cycle: the very node we recorded as the next hop has sent
                # the request back at us — both ends hold stale routes (the
                # owner moved away from the pair entirely), and bouncing the
                # cached forwards would ping-pong forever while the origin's
                # retransmissions burn out.  Re-routing with *current* state
                # converges because ownership updates (chown, manager table
                # writes) progress independently of this request.
                # Probe: this node can serve the request itself now (e.g. it
                # has become the page's owner since it forwarded).
                del self._reply_cache[key]
                self.pool.release(cached[1])
                self._on_request(msg)
                return
            # Sticky re-forward along the recorded hop (see `forward`):
            # the recorded path provably leads to wherever the request
            # first executed, whose reply cache can answer — fresh routing
            # hints may by now point back at the still-blocked origin.
            self.stats.duplicates_dropped += 1
            self._transmit(cached[1])
            return
        if cached[0] == "noreply":
            self.stats.duplicates_dropped += 1
            return
        _tag, value, nbytes = cached
        self.stats.replies_resent += 1
        # The resend task reads the request envelope long after this
        # delivery callback returned; hold it until the task finishes.
        self.pool.retain(msg)
        self.driver.spawn(
            self._resend_reply(msg, value, nbytes),
            f"resend-reply-{self.node_id}-{msg.msg_id}",
        )

    def _resend_reply(
        self, msg: Message, value: Any, nbytes: int
    ) -> Generator[Effect, Any, None]:
        try:
            yield from self.send_reply(msg, value, nbytes)
        finally:
            self.pool.release(msg)
