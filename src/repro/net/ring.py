"""The Apollo Domain 12 Mbit/s baseband single token ring.

The ring is modelled as what it physically is: a **shared medium**.  Only
one station transmits at a time, so every message occupies the medium for
``n_fragments * frame_overhead + payload_bits / bandwidth`` and
transmissions queue FIFO behind each other.  This global serialisation is
the honest source of communication contention in the experiments — it is
why the dot-product benchmark (lots of data movement, little compute)
scales poorly while Jacobi scales almost linearly.

Broadcast is native on a ring: a single transmission is heard by every
other station (the paper exploits this for owner location and
invalidation).  Frame loss is drawn per *receiver*, which exercises the
transport's retransmission protocol.

The ring is the first — and default — implementation of the
:class:`repro.net.fabric.Fabric` medium interface; see
:mod:`repro.net.fabric.switched` for the point-to-point alternative.
"""

from __future__ import annotations

import numpy as np

from repro.config import RingConfig
from repro.net.fabric import Fabric, LinkStats
from repro.net.packet import BROADCAST, Message
from repro.obs import NULL_OBS, Observability
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACE, TraceRecorder

__all__ = ["TokenRing", "RingStats"]


class RingStats:
    """Aggregate medium statistics for the shared ring.

    A shared medium is a single link, so the
    :class:`~repro.net.fabric.FabricStats` per-link view
    (:meth:`links`) exposes exactly one entry named ``"medium"``;
    ``peak_backlog_ns`` is the worst queueing delay any transmission
    ever saw behind it.
    """

    __slots__ = (
        "messages",
        "broadcasts",
        "bytes_sent",
        "busy_ns",
        "lost_frames",
        "peak_backlog_ns",
    )

    def __init__(self) -> None:
        self.messages = 0
        self.broadcasts = 0
        self.bytes_sent = 0
        self.busy_ns = 0
        self.lost_frames = 0
        self.peak_backlog_ns = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def links(self) -> dict[str, LinkStats]:
        medium = LinkStats()
        medium.busy_ns = self.busy_ns
        medium.messages = self.messages
        medium.peak_backlog_ns = self.peak_backlog_ns
        return {"medium": medium}


class TokenRing(Fabric):
    """A serialised shared-medium network connecting ``nnodes`` stations."""

    name = "ring"

    def __init__(
        self,
        sim: Simulator,
        config: RingConfig,
        nnodes: int,
        rng: np.random.Generator | None = None,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        super().__init__(sim, nnodes, trace, obs)
        self.config = config
        self.rng = rng
        #: Loss is configured once; a lossless ring skips the per-target
        #: random draw entirely.
        self._lossy = config.loss_rate > 0.0 and rng is not None
        self.stats: RingStats = RingStats()
        self._free_at = 0  # medium is idle from this time onward

    # ------------------------------------------------------------------

    def occupancy_ns(self, nbytes: int) -> int:
        """Medium time consumed by one message of ``nbytes``."""
        cfg = self.config
        fragments = max(1, -(-nbytes // cfg.max_frame_bytes))  # ceil div
        wire = (nbytes * 8 * 1_000_000_000) // cfg.bandwidth_bps
        return fragments * cfg.frame_overhead + wire

    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Queue ``msg`` for transmission; delivery is scheduled events.

        Returns immediately (the sending *software* cost is charged by the
        transport layer, not here — the medium only models wire time).
        """
        if msg.dst != BROADCAST and not 0 <= msg.dst < self.nnodes:
            raise ValueError(f"destination {msg.dst} out of range")
        if msg.dst == msg.src:
            raise ValueError("a station does not ring-transmit to itself")
        now = self.sim.now
        free_at = self._free_at
        start = now if now >= free_at else free_at
        backlog = start - now
        if self._obs_on:
            # Queueing delay behind the shared medium — the contention
            # that caps dot-product's speedup (histogrammed in ns).
            self.obs.observe("ring.queue_ns", backlog)
        occupancy = self.occupancy_ns(msg.nbytes)
        self._free_at = free_at = start + occupancy
        arrival = free_at + self.config.delivery_latency
        if self._timeline is not None:
            # Windowed busy accounting for the single shared link; the
            # booking above is already final, so this observes only.
            self._timeline.link_busy("medium", start, free_at)

        stats = self.stats
        stats.messages += 1
        stats.bytes_sent += msg.nbytes
        stats.busy_ns += occupancy
        if backlog > stats.peak_backlog_ns:
            stats.peak_backlog_ns = backlog
        if msg.dst == BROADCAST:
            stats.broadcasts += 1
            targets = [n for n in range(self.nnodes) if n != msg.src]
        else:
            targets = [msg.dst]
        if self.trace:
            self.trace.emit(
                "ring.send", src=msg.src, dst=msg.dst, op=msg.op,
                kind=msg.kind, nbytes=msg.nbytes, arrival=arrival,
            )
        drop_policy = self.drop_policy
        for target in targets:
            forced = drop_policy is not None and drop_policy(msg, target)
            if forced or (self._lossy and self._drop()):
                stats.lost_frames += 1
                if self.trace:
                    self.trace.emit("ring.drop", src=msg.src, dst=target, op=msg.op)
                continue
            self._schedule_delivery(arrival, target, msg)

    def _drop(self) -> bool:
        loss = self.config.loss_rate
        if loss <= 0.0 or self.rng is None:
            return False
        return bool(self.rng.random() < loss)
