"""Free-list pools for the message hot path.

The transport builds one :class:`~repro.net.packet.Message` per request,
reply, forward and retransmission, and the coherence servers build one
page-sized numpy snapshot per page transfer.  Both are textbook
free-list candidates: the objects are homogeneous, short-lived, and
their lifetimes are fully visible to the net layer.  Pooling them turns
the per-event allocator traffic of a run into a handful of allocations
at warm-up.

**Message lifetime is reference-counted**, because a request envelope
has three concurrent holders with independent lifetimes:

- the *creator* (the ``_Pending`` record, or the reply cache for a
  forwarded request) holds one reference until the request completes or
  the cache entry dies;
- every *scheduled delivery* holds one from ``send`` until the receiver
  callback returns — a retransmission can put several copies of the
  same envelope in flight at once;
- a *server* holds one while its handler task runs (handling spans
  simulated time, long after the delivery event returned).

A release that merely drops ``refs`` is free; the last release clears
the payload references and returns the object to the free list.  The
discipline is deliberately asymmetric in its failure modes: a missing
*release* is a benign leak (the object falls back to the garbage
collector), while a missing *retain* would recycle a live envelope —
which the 42 golden schedule fixtures and every application result
check would catch loudly.

**Page buffers are not reference-counted**: a pooled page snapshot is
given back exactly once, by the unicast requester that installed it
(``memory.install`` copies the bytes into the frame, so the buffer is
dead the moment install returns).  Reply-cache resends may still ship a
recycled buffer, but only to an origin whose request already completed
— the transport drops the duplicate before anything reads the payload.
Multicast payloads (the update policy's page pushes) are shared by
every receiver of one frame and are therefore *never* pooled — there is
no single point that could return them.

Pools are deterministic by construction: they hold no clock and no
randomness, and reuse order is a pure function of the (deterministic)
schedule.  ``repro.sim``/``repro.net`` determinism lint covers this
module; nothing here may key anything on ``id()``.
"""

from __future__ import annotations

import numpy as np

from repro.net.packet import HEADER_BYTES, Message, next_serial

__all__ = ["MessagePool", "PagePool"]


class MessagePool:
    """Free-list of :class:`Message` envelopes, one per fabric."""

    __slots__ = ("_free", "allocated", "reused")

    def __init__(self) -> None:
        self._free: list[Message] = []
        #: Envelopes constructed because the free list was empty.
        self.allocated = 0
        #: Envelopes served from the free list (the pool's hit count).
        self.reused = 0

    def acquire(
        self,
        src: int,
        dst: int,
        kind: str,
        op: str,
        origin: int,
        msg_id: int,
        payload: object,
        nbytes: int,
        reply_scheme: str = "all",
        targets: tuple[int, ...] | None = None,
        span: int = 0,
    ) -> Message:
        """A fresh envelope (``refs == 1``), recycled when possible.

        Field-for-field equivalent to constructing a :class:`Message`,
        including a *fresh* ``serial`` — pooling must be invisible to
        anything keying on message identity.
        """
        free = self._free
        if not free:
            self.allocated += 1
            return Message(
                src, dst, kind, op, origin, msg_id, payload, nbytes,
                reply_scheme=reply_scheme, targets=targets, span=span,
            )
        msg = free.pop()
        msg.src = src
        msg.dst = dst
        msg.kind = kind
        msg.op = op
        msg.origin = origin
        msg.msg_id = msg_id
        msg.payload = payload
        msg.nbytes = nbytes if nbytes >= HEADER_BYTES else HEADER_BYTES
        msg.load_hint = 0
        msg.reply_scheme = reply_scheme
        msg.targets = targets
        msg.span = span
        msg.serial = next_serial()
        msg.refs = 1
        self.reused += 1
        return msg

    def retain(self, msg: Message) -> None:
        """Add a reference (delivery in flight, server handling, ...)."""
        msg.refs += 1

    def release(self, msg: Message) -> None:
        """Drop a reference; the last one recycles the envelope."""
        refs = msg.refs - 1
        msg.refs = refs
        if refs == 0:
            # Drop payload references so recycled envelopes do not pin
            # page snapshots (or anything else) past their lifetime.
            msg.payload = None
            msg.targets = None
            self._free.append(msg)
        elif refs < 0:
            raise RuntimeError(
                f"message over-released (refs={refs}): {msg.describe()}"
            )


class PagePool:
    """Free-list of page-sized ``uint8`` snapshot buffers, one per fabric.

    Buffers are keyed by length — one cluster has one page size, but the
    pool does not need to assume it.
    """

    __slots__ = ("_free", "allocated", "reused")

    def __init__(self) -> None:
        self._free: dict[int, list[np.ndarray]] = {}
        self.allocated = 0
        self.reused = 0

    def copy_of(self, frame: np.ndarray) -> np.ndarray:
        """A snapshot of ``frame`` in a pooled buffer (contents copied)."""
        stack = self._free.get(frame.nbytes)
        if stack:
            buf = stack.pop()
            buf[:] = frame
            self.reused += 1
            return buf
        self.allocated += 1
        return frame.copy()

    def give(self, buf: np.ndarray) -> None:
        """Return a buffer whose contents are dead (installed or stale).

        Callers must give each buffer back at most once, from exactly
        one place — the unicast requester that consumed it.
        """
        self._free.setdefault(buf.nbytes, []).append(buf)
