"""Deterministic head-based span sampling.

At 256 nodes, tracing every fault is unaffordable: a fig5-class run
emits hundreds of thousands of spans.  Head-based sampling keeps 1/N of
the *root* spans (and, via the id that rides on ``Message.span``, every
descendant of a kept root), cutting cost to ~1/N while preserving whole
causal trees.

The keep/drop decision must not perturb the simulation or vary between
runs, so it is a pure function of the span id — no RNG stream, no wall
clock, no global state: the id is fed through the splitmix64 finalizer
(a full-avalanche 64-bit mixer) and kept when the hash is 0 modulo the
sampling rate.  Span ids are allocated in emission order either way, so
sampled and unsampled runs agree on every id and two identical runs
sample the identical set.
"""

from __future__ import annotations

__all__ = ["mix64", "keep_root"]

_MASK = 0xFFFFFFFFFFFFFFFF


def mix64(x: int) -> int:
    """splitmix64 finalizer: a bijective full-avalanche 64-bit mix."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def keep_root(sid: int, sample_every: int) -> bool:
    """Keep roughly 1 in ``sample_every`` root spans, deterministically."""
    if sample_every <= 1:
        return True
    return mix64(sid) % sample_every == 0
