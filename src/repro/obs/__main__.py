"""Command-line entry points for the observability layer.

::

    # Run a benchmark with full observability and print the report:
    # latency/fan-out/occupancy instruments, then the per-node
    # simulated-time profile (compute / fault / network / disk / idle).
    python -m repro.obs report --app dotprod --nodes 2

    # The Figure 4 story: run the PDE under memory pressure and watch
    # the disk share collapse from one node to two.
    python -m repro.obs report --app pde --capacity --nodes 1
    python -m repro.obs report --app pde --capacity --nodes 2

    # Export a Perfetto-loadable Chrome trace (open at ui.perfetto.dev),
    # optionally alongside the raw span stream (JSONL):
    python -m repro.obs export --app dotprod --nodes 2 \
        --out dotprod_trace.json --spans dotprod_spans.jsonl

    # Aggregate spans: where does simulated time actually go?
    python -m repro.obs top --app jacobi --nodes 4

    # Validate an exported trace against the trace-event schema:
    python -m repro.obs validate dotprod_trace.json

    # Windowed timeline: per-window profile, busiest links over time,
    # SLO verdicts; JSONL + OpenMetrics exports.  --sample-every keeps
    # 1/N of span trees (pure hash of the span id — reproducible).
    python -m repro.obs timeline --app dotprod --nodes 64 \
        --fabric switched --window-ms 500 --sample-every 64 \
        --slo "p99(fault.read_ns) < 60ms" --slo "link_utilisation < 90%" \
        --out timeline.jsonl --metrics-out metrics.om

    # Evaluate SLOs only (exit 1 on violation with --fail-on-violation):
    python -m repro.obs slo --app jacobi --nodes 4 --window-ms 20 \
        --spec "p99(fault.read_ns) < 10ms"

    # Validate exported artifacts against their schemas:
    python -m repro.obs validate-timeline timeline.jsonl
    python -m repro.obs validate-metrics metrics.om

Exit status is non-zero when a run fails its numerical check or a trace
fails validation, so CI can gate on it (the ``obs-smoke`` job does).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.config import MILLISECOND, ClusterConfig
from repro.obs import Observability
from repro.obs.export import (
    openmetrics,
    save_chrome_trace,
    save_timeline_jsonl,
    validate_chrome_trace,
    validate_openmetrics,
    validate_timeline_jsonl,
)

#: Pages of one PDE vector at the smoke sizes below (for --capacity).
_PDE_M = 14


def _build_app(name: str, nprocs: int) -> Any:
    # Sizes are scaled down from the paper's: observability multiplies
    # nothing, but the CLI is for interactive looks, not calibration.
    if name == "dotprod":
        from repro.apps.dotprod import DotProductApp

        return DotProductApp(nprocs, n=8192)
    if name == "jacobi":
        from repro.apps.jacobi import JacobiApp

        return JacobiApp(nprocs, n=64, iters=4)
    if name == "tsp":
        from repro.apps.tsp import TspApp

        return TspApp(nprocs, ncities=8)
    if name == "pde":
        from repro.apps.pde3d import Pde3dApp

        return Pde3dApp(nprocs, m=_PDE_M, iters=4)
    raise SystemExit(f"unknown app {name!r} (expected dotprod, jacobi, tsp or pde)")


def _run_observed(args: argparse.Namespace) -> tuple[Any, Observability]:
    from repro.api.ivy import Ivy

    config = ClusterConfig(nodes=args.nodes, obs=True).with_svm(
        algorithm=args.algorithm
    )
    fabric = getattr(args, "fabric", "ring")
    if fabric != "ring":
        config = config.with_fabric(backend=fabric)
    if getattr(args, "capacity", False):
        # The Figure 4 / Table 1 regime: one node's frames hold ~1.8 of
        # the working set per vector, with Aegis-style randomised
        # replacement (see repro.exps.presets.pde_capacity).
        page = config.svm.page_size
        vector_pages = (_PDE_M**3 * 8 + page - 1) // page
        config = config.with_memory(
            frames=int(1.8 * vector_pages), replacement="random"
        )
    window_ms = getattr(args, "window_ms", 0.0)
    obs = Observability(
        timeline_window_ns=int(window_ms * MILLISECOND),
        sample_every=getattr(args, "sample_every", 1),
        hist_backend=getattr(args, "hist_backend", "exact"),
    )
    ivy = Ivy(config, obs=obs)
    app = _build_app(args.app, args.nodes)
    result = ivy.run(app.main)
    app.check(result)
    return ivy, obs


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.metrics.report import format_instruments, format_profile

    ivy, obs = _run_observed(args)
    total = ivy.time_ns
    print(
        f"{args.app} on {args.nodes} nodes ({args.algorithm}): "
        f"T = {total / 1e6:.1f} ms simulated, {len(obs.spans)} spans"
    )
    print()
    print(format_instruments(obs.metrics))
    print()
    print(format_profile(obs.breakdown(args.nodes, total), total))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    ivy, obs = _run_observed(args)
    count = save_chrome_trace(args.out, obs, total_ns=ivy.time_ns)
    print(f"saved {count} trace events to {args.out} (open at ui.perfetto.dev)")
    if args.spans:
        n = obs.spans.save(args.spans)
        print(f"saved {n} spans to {args.spans}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.metrics.report import format_span_stats

    ivy, obs = _run_observed(args)
    print(
        f"{args.app} on {args.nodes} nodes ({args.algorithm}): "
        f"T = {ivy.time_ns / 1e6:.1f} ms simulated"
    )
    print()
    print(format_span_stats(obs.span_stats(), limit=args.limit))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.trace, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.trace}")
    except json.JSONDecodeError as exc:
        print(f"{args.trace}: not valid JSON: {exc}")
        return 1
    problems = validate_chrome_trace(doc)
    for problem in problems:
        print(f"{args.trace}: {problem}")
    if problems:
        print(f"{len(problems)} problem(s)")
        return 1
    events = doc.get("traceEvents", [])
    print(f"{args.trace}: valid trace-event JSON ({len(events)} events)")
    return 0


def _timeline_or_die(obs: Observability) -> Any:
    if obs.timeline is None:
        raise SystemExit("this command needs a timeline; pass --window-ms > 0")
    return obs.timeline


def _parse_specs(texts: list[str]) -> list[Any]:
    from repro.obs.slo import parse_slo

    try:
        return [parse_slo(text) for text in texts]
    except ValueError as exc:
        raise SystemExit(str(exc))


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.metrics.report import (
        format_busiest_links,
        format_slo_report,
        format_window_profile,
    )
    from repro.obs.slo import evaluate

    specs = _parse_specs(args.slo)
    ivy, obs = _run_observed(args)
    tl = _timeline_or_die(obs)
    total = ivy.time_ns
    print(
        f"{args.app} on {args.nodes} nodes ({args.algorithm}, {args.fabric}): "
        f"T = {total / 1e6:.1f} ms simulated, {tl.nwindows(total)} windows of "
        f"{tl.window_ns / 1e6:.0f} ms, {len(obs.spans)} spans recorded "
        f"({obs.spans.dropped} sampled out)"
    )
    print()
    print(
        format_window_profile(
            obs.window_breakdowns(args.nodes, total), tl.window_ns, total
        )
    )
    print()
    print(format_busiest_links(tl.busiest_links(total)))
    if specs:
        print()
        print(format_slo_report(evaluate(tl, total, specs)))
    if args.out:
        n = save_timeline_jsonl(args.out, obs, args.nodes, total)
        print(f"\nsaved {n} timeline records to {args.out}")
    if args.metrics_out:
        text = openmetrics(obs, args.nodes, total)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"saved OpenMetrics exposition to {args.metrics_out}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.metrics.report import format_slo_report
    from repro.obs.slo import evaluate

    if not args.spec:
        raise SystemExit("pass at least one --spec")
    specs = _parse_specs(args.spec)
    ivy, obs = _run_observed(args)
    tl = _timeline_or_die(obs)
    report = evaluate(tl, ivy.time_ns, specs)
    print(format_slo_report(report))
    if args.fail_on_violation and not report.ok:
        return 1
    return 0


def _cmd_validate_timeline(args: argparse.Namespace) -> int:
    try:
        with open(args.file, encoding="utf-8") as fh:
            lines = fh.readlines()
    except FileNotFoundError:
        raise SystemExit(f"no such timeline file: {args.file}")
    problems = validate_timeline_jsonl(lines)
    for problem in problems:
        print(f"{args.file}: {problem}")
    if problems:
        print(f"{len(problems)} problem(s)")
        return 1
    nrecords = sum(1 for line in lines if line.strip())
    print(f"{args.file}: valid timeline JSONL ({nrecords} records)")
    return 0


def _cmd_validate_metrics(args: argparse.Namespace) -> int:
    try:
        with open(args.file, encoding="utf-8") as fh:
            text = fh.read()
    except FileNotFoundError:
        raise SystemExit(f"no such metrics file: {args.file}")
    problems = validate_openmetrics(text)
    for problem in problems:
        print(f"{args.file}: {problem}")
    if problems:
        print(f"{len(problems)} problem(s)")
        return 1
    nsamples = sum(
        1 for line in text.split("\n") if line and not line.startswith("#")
    )
    print(f"{args.file}: valid OpenMetrics exposition ({nsamples} samples)")
    return 0


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", default="dotprod", help="dotprod | jacobi | tsp | pde")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument(
        "--algorithm", default="dynamic",
        help="centralized | fixed | dynamic | broadcast",
    )
    parser.add_argument(
        "--capacity", action="store_true",
        help="bound frames below the working set (the Figure 4 regime)",
    )
    parser.add_argument(
        "--fabric", default="ring", choices=("ring", "switched"),
        help="network backend (default ring)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=0.0,
        help="timeline window width in simulated ms (0 = no timeline)",
    )
    parser.add_argument(
        "--sample-every", type=int, default=1,
        help="keep ~1/N of span trees by a pure hash of the span id",
    )
    parser.add_argument(
        "--hist-backend", default="exact", choices=("exact", "logbucket"),
        help="histogram backend (logbucket = bounded memory)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="span tracing, instruments and profiling for the SVM simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run a benchmark and print the obs report")
    _add_run_args(report)
    report.set_defaults(func=_cmd_report)

    export = sub.add_parser("export", help="run a benchmark and export a Chrome trace")
    _add_run_args(export)
    export.add_argument("--out", default="trace.json", help="Chrome trace JSON path")
    export.add_argument("--spans", default="", help="also save raw spans (JSONL)")
    export.set_defaults(func=_cmd_export)

    top = sub.add_parser("top", help="aggregate spans by name, heaviest first")
    _add_run_args(top)
    top.add_argument("-n", "--limit", type=int, default=20)
    top.set_defaults(func=_cmd_top)

    validate = sub.add_parser("validate", help="check an exported Chrome trace")
    validate.add_argument("trace", help="JSON file written by `export`")
    validate.set_defaults(func=_cmd_validate)

    timeline = sub.add_parser(
        "timeline", help="windowed profile, busiest links, SLOs, exports"
    )
    _add_run_args(timeline)
    timeline.set_defaults(window_ms=50.0)
    timeline.add_argument(
        "--slo", action="append", default=[],
        help='SLO spec, repeatable (e.g. "p99(fault.read_ns) < 60ms")',
    )
    timeline.add_argument("--out", default="", help="timeline JSONL path")
    timeline.add_argument(
        "--metrics-out", default="", help="OpenMetrics exposition path"
    )
    timeline.set_defaults(func=_cmd_timeline)

    slo = sub.add_parser("slo", help="evaluate SLO specs over a windowed run")
    _add_run_args(slo)
    slo.set_defaults(window_ms=50.0)
    slo.add_argument(
        "--spec", action="append", default=[],
        help='SLO spec, repeatable (e.g. "link_utilisation < 90%%")',
    )
    slo.add_argument(
        "--fail-on-violation", action="store_true",
        help="exit 1 when any spec is violated in any window",
    )
    slo.set_defaults(func=_cmd_slo)

    vtl = sub.add_parser(
        "validate-timeline", help="check a timeline JSONL export"
    )
    vtl.add_argument("file", help="JSONL file written by `timeline --out`")
    vtl.set_defaults(func=_cmd_validate_timeline)

    vom = sub.add_parser(
        "validate-metrics", help="check an OpenMetrics exposition"
    )
    vom.add_argument("file", help="file written by `timeline --metrics-out`")
    vom.set_defaults(func=_cmd_validate_metrics)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
