"""Exporters: Chrome trace-event JSON, timeline JSONL, OpenMetrics text.

**Chrome trace-event** (Perfetto-loadable) is the JSON object form::

    {"displayTimeUnit": "ms", "traceEvents": [
        {"name": "fault.read", "ph": "X", "ts": 12.5, "dur": 3170.0,
         "pid": 1, "tid": 0, "cat": "fault", "args": {...}}, ...]}

- ``pid`` is the simulated node (each node renders as one process);
- ``tid`` is a display lane: children share their parent's lane (they
  nest inside it by construction), and unrelated overlapping spans get
  separate lanes, because complete ("X") events on one track must nest
  properly or viewers drop them;
- ``ts``/``dur`` are microseconds (floats), the format's unit; simulated
  nanoseconds divide by 1e3 exactly, so nothing is rounded away;
- events are sorted by ``ts`` (monotone), metadata ("M") events first.

**Timeline JSONL** (schema ``repro.timeline/1``) serialises a windowed
run: one ``meta`` record first, then one record per (window, series)
with ``kind`` in ``hist`` / ``counter`` / ``gauge`` / ``link`` /
``profile``, sorted by window then kind then name so identical runs
write byte-identical files.

**OpenMetrics** is the text exposition format: ``# TYPE`` declarations,
label-annotated samples, and a final ``# EOF``.  Whole-run histograms
export as ``summary`` families; windowed series export as ``gauge``
families with a ``window`` label.

Each format has a ``validate_*`` twin checking the invariants the
obs-smoke CI job gates on, so an export a consumer would reject fails
loudly here.
"""

from __future__ import annotations

import json
import re
from typing import Any, TYPE_CHECKING

from repro.obs.span import UNSTAMPED, Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs import Observability

__all__ = [
    "chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "TIMELINE_SCHEMA",
    "timeline_records",
    "save_timeline_jsonl",
    "validate_timeline_jsonl",
    "openmetrics",
    "validate_openmetrics",
]


def _span_category(name: str) -> str:
    return name.split(".", 1)[0].split(":", 1)[0] or "span"


def _assign_lanes(spans: list[Span], total_ns: int) -> dict[int, int]:
    """Display lane per span id: parent's lane when known, else the first
    lane free at the span's start (so same-lane spans always nest)."""
    lanes: dict[int, int] = {}
    node_of: dict[int, int] = {}
    free_at: dict[int, list[int]] = {}  # node -> per-lane busy-until
    for span in sorted(spans, key=lambda s: (s.node, s.start, s.sid)):
        node_of[span.sid] = span.node
        end = total_ns if span.open else span.end
        parent_lane = lanes.get(span.parent)
        if parent_lane is not None and node_of.get(span.parent) == span.node:
            # Same-node children nest inside their parent by construction.
            lanes[span.sid] = parent_lane
            continue
        node_lanes = free_at.setdefault(span.node, [])
        for lane, busy_until in enumerate(node_lanes):
            if busy_until <= span.start:
                node_lanes[lane] = end
                lanes[span.sid] = lane
                break
        else:
            node_lanes.append(end)
            lanes[span.sid] = len(node_lanes) - 1
    return lanes


def chrome_trace(obs: "Observability", total_ns: int | None = None) -> dict[str, Any]:
    """Render the recorded spans as a Chrome trace-event document."""
    spans = [s for s in obs.spans if s.start != UNSTAMPED]
    if total_ns is None:
        total_ns = max((s.end for s in spans if not s.open), default=0)
    lanes = _assign_lanes(spans, total_ns)
    events: list[dict[str, Any]] = []
    nodes = sorted({s.node for s in spans})
    for node in nodes:
        events.append(
            {
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": node, "tid": 0,
                "args": {"name": f"node {node}"},
            }
        )
    for span in spans:
        end = total_ns if span.open else span.end
        args: dict[str, Any] = {"sid": span.sid, "parent": span.parent}
        args.update(span.attrs)
        if span.open:
            args["open"] = True
        events.append(
            {
                "name": span.name,
                "cat": _span_category(span.name),
                "ph": "X",
                "ts": span.start / 1e3,
                "dur": max(0, end - span.start) / 1e3,
                "pid": span.node,
                "tid": lanes[span.sid],
                "args": args,
            }
        )
    events.sort(key=lambda ev: (ev["ts"], ev["ph"] != "M", ev["pid"], ev["tid"]))
    return {"displayTimeUnit": "ms", "traceEvents": events}


def save_chrome_trace(
    path: str, obs: "Observability", total_ns: int | None = None
) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    doc = chrome_trace(obs, total_ns=total_ns)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])


def validate_chrome_trace(doc: Any) -> list[str]:
    """Check a trace-event document against the schema the viewers
    actually enforce; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    last_ts: float | None = None
    for index, ev in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "I"):
            problems.append(f"{where}: unsupported phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        elif last_ts is not None and ts < last_ts:
            problems.append(f"{where}: ts {ts} is not monotone (prev {last_ts})")
        else:
            last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


# ----------------------------------------------------------------------
# timeline JSONL

#: Schema tag of the windowed-timeline JSONL export.
TIMELINE_SCHEMA = "repro.timeline/1"

_TIMELINE_KINDS = ("hist", "counter", "gauge", "link", "profile")


def timeline_records(
    obs: "Observability", nnodes: int, total_ns: int
) -> list[dict[str, Any]]:
    """Serialise a windowed run as timeline records (meta first).

    Sparse series emit only the windows that hold data; the profiler
    records are dense (every node, every window up to ``total_ns``)
    because each one is a proof-carrying partition of its window.
    """
    tl = obs.timeline
    if tl is None:
        raise ValueError("timeline export requires a timeline "
                         "(Observability(timeline_window_ns=...))")
    nwin = tl.nwindows(total_ns)
    meta: dict[str, Any] = {
        "kind": "meta",
        "schema": TIMELINE_SCHEMA,
        "window_ns": tl.window_ns,
        "windows": nwin,
        "total_ns": total_ns,
        "nodes": nnodes,
    }
    body: list[dict[str, Any]] = []
    for name, wh in tl.metrics.histograms.items():
        for window, hist in wh.windows.items():
            rec: dict[str, Any] = {"kind": "hist", "window": window, "name": name}
            rec.update(hist.summary())
            body.append(rec)
    for name, wc in tl.metrics.counters.items():
        for window, value in wc.windows.items():
            body.append(
                {"kind": "counter", "window": window, "name": name, "value": value}
            )
    for name, wg in tl.metrics.gauges.items():
        for window, (last, peak) in wg.windows.items():
            body.append(
                {
                    "kind": "gauge", "window": window, "name": name,
                    "last": last, "peak": peak,
                }
            )
    for link in tl.links():
        per = tl._links[link]
        for window, busy in sorted(per.items()):
            body.append(
                {
                    "kind": "link", "window": window, "name": link,
                    "busy_ns": busy, "utilisation": busy / tl.window_ns,
                }
            )
    for node, windows in obs.window_breakdowns(nnodes, total_ns).items():
        for window, cats in enumerate(windows):
            rec = {"kind": "profile", "window": window, "node": node}
            rec.update(cats)
            body.append(rec)
    body.sort(
        key=lambda r: (
            r["window"],
            _TIMELINE_KINDS.index(r["kind"]),
            r.get("name", ""),
            r.get("node", -1),
        )
    )
    return [meta, *body]


def save_timeline_jsonl(
    path: str, obs: "Observability", nnodes: int, total_ns: int
) -> int:
    """Write the timeline as JSON lines; returns the record count."""
    records = timeline_records(obs, nnodes, total_ns)
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec))
            fh.write("\n")
    return len(records)


def validate_timeline_jsonl(lines: list[str]) -> list[str]:
    """Check timeline JSONL content against schema ``repro.timeline/1``;
    returns a list of problems (empty = valid)."""
    problems: list[str] = []
    records: list[tuple[int, dict[str, Any]]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            problems.append(f"line {lineno}: not an object")
            continue
        records.append((lineno, rec))
    if not records:
        return problems + ["no records"]
    first_lineno, meta = records[0]
    if meta.get("kind") != "meta":
        return problems + [f"line {first_lineno}: first record must be meta"]
    if meta.get("schema") != TIMELINE_SCHEMA:
        problems.append(
            f"line {first_lineno}: schema {meta.get('schema')!r} != {TIMELINE_SCHEMA!r}"
        )
    window_ns = meta.get("window_ns")
    windows = meta.get("windows")
    total_ns = meta.get("total_ns")
    nodes = meta.get("nodes")
    for key, value in (
        ("window_ns", window_ns), ("windows", windows),
        ("total_ns", total_ns), ("nodes", nodes),
    ):
        if not isinstance(value, int) or value <= 0:
            problems.append(f"line {first_lineno}: meta.{key} must be a positive int")
    if problems:
        return problems
    assert isinstance(window_ns, int) and isinstance(windows, int)
    assert isinstance(total_ns, int) and isinstance(nodes, int)
    profile_windows = max(1, -(-total_ns // window_ns))
    from repro.obs.profiler import CATEGORIES

    for lineno, rec in records[1:]:
        where = f"line {lineno}"
        kind = rec.get("kind")
        if kind == "meta":
            problems.append(f"{where}: duplicate meta record")
            continue
        if kind not in _TIMELINE_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        window = rec.get("window")
        if not isinstance(window, int) or not 0 <= window < windows:
            problems.append(f"{where}: window {window!r} out of [0, {windows})")
            continue
        if kind == "hist":
            if not isinstance(rec.get("name"), str) or not rec["name"]:
                problems.append(f"{where}: hist record needs a name")
            if not isinstance(rec.get("count"), int) or rec["count"] < 1:
                problems.append(f"{where}: hist count must be >= 1")
        elif kind == "counter":
            if not isinstance(rec.get("name"), str) or not rec["name"]:
                problems.append(f"{where}: counter record needs a name")
            if not isinstance(rec.get("value"), int):
                problems.append(f"{where}: counter value must be an int")
        elif kind == "gauge":
            for key in ("name", "last", "peak"):
                if key not in rec:
                    problems.append(f"{where}: gauge record missing {key!r}")
        elif kind == "link":
            busy = rec.get("busy_ns")
            if not isinstance(rec.get("name"), str) or not rec["name"]:
                problems.append(f"{where}: link record needs a name")
            if not isinstance(busy, int) or not 0 <= busy <= window_ns:
                problems.append(
                    f"{where}: link busy_ns {busy!r} out of [0, {window_ns}]"
                )
        elif kind == "profile":
            node = rec.get("node")
            if not isinstance(node, int) or not 0 <= node < nodes:
                problems.append(f"{where}: profile node {node!r} out of [0, {nodes})")
            if window >= profile_windows:
                problems.append(
                    f"{where}: profile window {window} beyond the run's "
                    f"{profile_windows} windows"
                )
                continue
            missing = [cat for cat in CATEGORIES if not isinstance(rec.get(cat), int)]
            if missing:
                problems.append(f"{where}: profile record missing {missing}")
                continue
            expected = min(window_ns, total_ns - window * window_ns)
            got = sum(rec[cat] for cat in CATEGORIES)
            if got != expected:
                problems.append(
                    f"{where}: profile categories sum to {got}, window holds {expected}"
                )
    return problems


# ----------------------------------------------------------------------
# OpenMetrics text exposition

_OM_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: ``# TYPE`` declaration: family name + type.
_OM_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")

#: One sample line: name, optional {labels}, value.
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|NaN|Inf|-Inf))$"
)


def _om_name(name: str) -> str:
    """Sanitise an instrument name into a metric-name fragment."""
    return _OM_BAD.sub("_", name).strip("_")


def _om_labels(**labels: Any) -> str:
    parts = []
    for key, value in labels.items():
        text = str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{key}="{text}"')
    return "{" + ",".join(parts) + "}"


def _om_value(value: float | int | None) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def openmetrics(obs: "Observability", nnodes: int, total_ns: int) -> str:
    """Render whole-run and windowed instruments as OpenMetrics text.

    Whole-run histograms become ``summary`` families (quantile labels
    plus ``_count``/``_sum``); gauges become ``gauge`` families; every
    windowed series (instrument percentiles/counts, per-link busy-ns
    and utilisation, per-node profiler attribution) becomes a ``gauge``
    family with a ``window`` label.  Ends with ``# EOF``.
    """
    out: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        out.append(f"# TYPE {name} {kind}")
        out.append(f"# HELP {name} {help_text}")

    for name, hist in sorted(obs.metrics.histograms.items()):
        fam = f"repro_{_om_name(name)}"
        family(fam, "summary", f"whole-run distribution of {name}")
        for q in (0.5, 0.95, 0.99):
            out.append(
                f"{fam}{_om_labels(quantile=q)} {_om_value(hist.percentile(q * 100))}"
            )
        out.append(f"{fam}_count {hist.count}")
        out.append(f"{fam}_sum {_om_value(hist.total)}")
    for name, gauge in sorted(obs.metrics.gauges.items()):
        fam = f"repro_{_om_name(name)}"
        family(fam, "gauge", f"whole-run level of {name}")
        out.append(f"{fam} {_om_value(gauge.value)}")

    tl = obs.timeline
    if tl is not None:
        for name, wh in sorted(tl.metrics.histograms.items()):
            base = f"repro_tl_{_om_name(name)}"
            for stat in ("p99", "count"):
                fam = f"{base}_{stat}"
                family(fam, "gauge", f"per-window {stat} of {name}")
                for window, hist in sorted(wh.windows.items()):
                    value = hist.count if stat == "count" else hist.percentile(99.0)
                    out.append(f"{fam}{_om_labels(window=window)} {_om_value(value)}")
        for name, wc in sorted(tl.metrics.counters.items()):
            fam = f"repro_tl_{_om_name(name)}"
            family(fam, "gauge", f"per-window count of {name}")
            for window, value in sorted(wc.windows.items()):
                out.append(f"{fam}{_om_labels(window=window)} {value}")
        if tl.links():
            family("repro_link_busy_ns", "gauge", "per-window link busy time")
            nwin = tl.nwindows(total_ns)
            for link in tl.links():
                for window, busy in sorted(tl._links[link].items()):
                    out.append(
                        f"repro_link_busy_ns{_om_labels(link=link, window=window)} "
                        f"{busy}"
                    )
            family(
                "repro_link_utilisation", "gauge",
                "busiest link's busy fraction per window",
            )
            for window in range(nwin):
                out.append(
                    f"repro_link_utilisation{_om_labels(window=window)} "
                    f"{_om_value(tl.link_utilisation(window))}"
                )
        family("repro_profile_ns", "gauge", "per-node per-window attribution")
        for node, windows in sorted(obs.window_breakdowns(nnodes, total_ns).items()):
            for window, cats in enumerate(windows):
                for cat, ns in cats.items():
                    out.append(
                        f"repro_profile_ns"
                        f"{_om_labels(node=node, category=cat, window=window)} {ns}"
                    )
    out.append("# EOF")
    return "\n".join(out) + "\n"


def validate_openmetrics(text: str) -> list[str]:
    """Check OpenMetrics text for the exposition-format invariants;
    returns a list of problems (empty = valid)."""
    problems: list[str] = []
    lines = [line for line in text.split("\n") if line]
    if not lines:
        return ["empty exposition"]
    if lines[-1] != "# EOF":
        problems.append("must end with '# EOF'")
    declared: dict[str, str] = {}
    for lineno, line in enumerate(lines, start=1):
        where = f"line {lineno}"
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"{where}: content after # EOF")
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            m = _OM_TYPE_RE.match(line)
            if m is None:
                problems.append(f"{where}: malformed comment/metadata {line!r}")
                continue
            fam, kind = m.group(1), m.group(2)
            if kind not in ("gauge", "counter", "summary"):
                problems.append(f"{where}: unsupported type {kind!r}")
            if fam in declared:
                problems.append(f"{where}: duplicate TYPE for {fam}")
            declared[fam] = kind
            continue
        m = _OM_SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"{where}: malformed sample {line!r}")
            continue
        name = m.group("name")
        fam = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                fam = name[: -len(suffix)]
                break
        if fam not in declared:
            problems.append(f"{where}: sample {name!r} has no TYPE declaration")
            continue
        labels = m.group("labels") or ""
        if "quantile=" in labels and declared[fam] != "summary":
            problems.append(
                f"{where}: quantile label on non-summary family {fam!r}"
            )
        if declared[fam] == "summary" and fam == name and "quantile=" not in labels:
            problems.append(
                f"{where}: summary sample {name!r} without quantile label"
            )
    return problems
