"""Exporters: Chrome trace-event JSON (Perfetto-loadable) from spans.

The trace-event format is the JSON object form::

    {"displayTimeUnit": "ms", "traceEvents": [
        {"name": "fault.read", "ph": "X", "ts": 12.5, "dur": 3170.0,
         "pid": 1, "tid": 0, "cat": "fault", "args": {...}}, ...]}

- ``pid`` is the simulated node (each node renders as one process);
- ``tid`` is a display lane: children share their parent's lane (they
  nest inside it by construction), and unrelated overlapping spans get
  separate lanes, because complete ("X") events on one track must nest
  properly or viewers drop them;
- ``ts``/``dur`` are microseconds (floats), the format's unit; simulated
  nanoseconds divide by 1e3 exactly, so nothing is rounded away;
- events are sorted by ``ts`` (monotone), metadata ("M") events first.

``validate_chrome_trace`` checks the invariants the obs-smoke CI job
gates on, so an export that Perfetto would reject fails loudly here.
"""

from __future__ import annotations

import json
from typing import Any, TYPE_CHECKING

from repro.obs.span import UNSTAMPED, Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs import Observability

__all__ = ["chrome_trace", "save_chrome_trace", "validate_chrome_trace"]


def _span_category(name: str) -> str:
    return name.split(".", 1)[0].split(":", 1)[0] or "span"


def _assign_lanes(spans: list[Span], total_ns: int) -> dict[int, int]:
    """Display lane per span id: parent's lane when known, else the first
    lane free at the span's start (so same-lane spans always nest)."""
    lanes: dict[int, int] = {}
    node_of: dict[int, int] = {}
    free_at: dict[int, list[int]] = {}  # node -> per-lane busy-until
    for span in sorted(spans, key=lambda s: (s.node, s.start, s.sid)):
        node_of[span.sid] = span.node
        end = total_ns if span.open else span.end
        parent_lane = lanes.get(span.parent)
        if parent_lane is not None and node_of.get(span.parent) == span.node:
            # Same-node children nest inside their parent by construction.
            lanes[span.sid] = parent_lane
            continue
        node_lanes = free_at.setdefault(span.node, [])
        for lane, busy_until in enumerate(node_lanes):
            if busy_until <= span.start:
                node_lanes[lane] = end
                lanes[span.sid] = lane
                break
        else:
            node_lanes.append(end)
            lanes[span.sid] = len(node_lanes) - 1
    return lanes


def chrome_trace(obs: "Observability", total_ns: int | None = None) -> dict[str, Any]:
    """Render the recorded spans as a Chrome trace-event document."""
    spans = [s for s in obs.spans if s.start != UNSTAMPED]
    if total_ns is None:
        total_ns = max((s.end for s in spans if not s.open), default=0)
    lanes = _assign_lanes(spans, total_ns)
    events: list[dict[str, Any]] = []
    nodes = sorted({s.node for s in spans})
    for node in nodes:
        events.append(
            {
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": node, "tid": 0,
                "args": {"name": f"node {node}"},
            }
        )
    for span in spans:
        end = total_ns if span.open else span.end
        args: dict[str, Any] = {"sid": span.sid, "parent": span.parent}
        args.update(span.attrs)
        if span.open:
            args["open"] = True
        events.append(
            {
                "name": span.name,
                "cat": _span_category(span.name),
                "ph": "X",
                "ts": span.start / 1e3,
                "dur": max(0, end - span.start) / 1e3,
                "pid": span.node,
                "tid": lanes[span.sid],
                "args": args,
            }
        )
    events.sort(key=lambda ev: (ev["ts"], ev["ph"] != "M", ev["pid"], ev["tid"]))
    return {"displayTimeUnit": "ms", "traceEvents": events}


def save_chrome_trace(
    path: str, obs: "Observability", total_ns: int | None = None
) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    doc = chrome_trace(obs, total_ns=total_ns)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])


def validate_chrome_trace(doc: Any) -> list[str]:
    """Check a trace-event document against the schema the viewers
    actually enforce; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    last_ts: float | None = None
    for index, ev in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "I"):
            problems.append(f"{where}: unsupported phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        elif last_ts is not None and ts < last_ts:
            problems.append(f"{where}: ts {ts} is not monotone (prev {last_ts})")
        else:
            last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems
