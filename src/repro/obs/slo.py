"""Declarative SLO engine over the windowed timeline.

An SLO spec is a one-line predicate evaluated against every window of a
:class:`repro.obs.timeline.Timeline`::

    p99(fault.read_ns) < 60ms        # windowed-histogram quantile
    mean(fault.write_ns) <= 2ms
    count(span.serve:svm.read.busy_ns) < 5000
    link_utilisation < 0.90          # busiest link's busy-ns / window
    link_utilisation < 90%

Grammar: ``agg(instrument) op threshold[unit]`` where ``agg`` is one of
``p50 p90 p95 p99 max mean count``, ``op`` is ``<`` or ``<=``, and the
threshold accepts ``ns/us/ms/s`` suffixes (or ``%`` / a bare ratio for
``link_utilisation``).  ``count`` reads the windowed counter of the same
name when no histogram exists, so it works on ``span.*.busy_ns`` series
as well as on observed instruments.

:func:`evaluate` scores every spec in every window; a window with no
data for an instrument does not violate (an idle tail must not read as
saturation).  The report's headline is :attr:`SloReport.saturation_onset`
— the first window in which any spec fails, i.e. when the run stopped
meeting its objectives.  This is the quantitative instrument the
multi-tenant driver consumes per tenant (ROADMAP: "DSM as a service").

Evaluation is offline post-processing of an already-collected timeline:
it never touches the simulation and cannot perturb schedules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.obs.timeline import Timeline

__all__ = ["SloSpec", "SloResult", "SloReport", "parse_slo", "evaluate"]

#: Aggregations usable on the left-hand side of a spec.
AGGS = ("p50", "p90", "p95", "p99", "max", "mean", "count")

_UNITS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}

_AGG_RE = re.compile(
    r"^\s*(?P<agg>p50|p90|p95|p99|max|mean|count)\s*"
    r"\(\s*(?P<inst>[A-Za-z0-9_.:\[\]-]+)\s*\)\s*"
    r"(?P<op><=|<)\s*"
    r"(?P<thr>[0-9]+(?:\.[0-9]+)?)\s*(?P<unit>ns|us|ms|s|%)?\s*$"
)

_LINK_RE = re.compile(
    r"^\s*link_utilisation\s*(?P<op><=|<)\s*"
    r"(?P<thr>[0-9]+(?:\.[0-9]+)?)\s*(?P<unit>%)?\s*$"
)


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective: ``agg(instrument) op threshold``."""

    raw: str
    agg: str
    instrument: str  # "" for link_utilisation
    op: str  # "<" or "<="
    threshold: float

    def holds(self, value: float) -> bool:
        return value < self.threshold if self.op == "<" else value <= self.threshold


def parse_slo(text: str) -> SloSpec:
    """Parse one spec line; raises ValueError with the grammar on junk."""
    m = _LINK_RE.match(text)
    if m is not None:
        thr = float(m.group("thr"))
        if m.group("unit") == "%":
            thr /= 100.0
        return SloSpec(text.strip(), "link_utilisation", "", m.group("op"), thr)
    m = _AGG_RE.match(text)
    if m is not None:
        thr = float(m.group("thr"))
        unit = m.group("unit")
        if unit == "%":
            raise ValueError(f"% threshold only applies to link_utilisation: {text!r}")
        if unit is not None:
            thr *= _UNITS[unit]
        return SloSpec(
            text.strip(), m.group("agg"), m.group("inst"), m.group("op"), thr
        )
    raise ValueError(
        f"cannot parse SLO {text!r}; expected 'agg(instrument) < threshold[unit]' "
        f"with agg in {AGGS} or 'link_utilisation < ratio|%'"
    )


@dataclass
class SloResult:
    """One spec scored over every window."""

    spec: SloSpec
    #: Per-window aggregate value; None where the window has no data.
    values: list[float | None] = field(default_factory=list)
    #: First window index violating the spec, or None if it always held.
    first_violation: int | None = None

    @property
    def ok(self) -> bool:
        return self.first_violation is None


@dataclass
class SloReport:
    """Every spec's verdict over one timeline."""

    window_ns: int
    windows: int
    results: list[SloResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def saturation_onset(self) -> int | None:
        """Earliest violating window across all specs (None = never)."""
        onsets = [r.first_violation for r in self.results if r.first_violation is not None]
        return min(onsets) if onsets else None

    def summary(self) -> dict[str, object]:
        return {
            "window_ns": self.window_ns,
            "windows": self.windows,
            "ok": self.ok,
            "saturation_onset_window": self.saturation_onset,
            "specs": [
                {
                    "spec": r.spec.raw,
                    "ok": r.ok,
                    "first_violation_window": r.first_violation,
                    "values": r.values,
                }
                for r in self.results
            ],
        }


def _window_value(tl: Timeline, spec: SloSpec, window: int) -> float | None:
    if spec.agg == "link_utilisation":
        util = tl.link_utilisation(window)
        return util if util > 0.0 else (0.0 if tl.links() else None)
    hist = tl.metrics.hist_window(spec.instrument, window)
    if hist is None:
        if spec.agg == "count":
            c = tl.metrics.counters.get(spec.instrument)
            if c is not None and window in c.windows:
                return float(c.windows[window])
        return None
    if spec.agg == "count":
        return float(hist.count)
    if spec.agg == "max":
        return hist.max
    if spec.agg == "mean":
        return hist.mean()
    return hist.percentile(float(spec.agg[1:]))


def evaluate(tl: Timeline, total_ns: int, specs: list[SloSpec]) -> SloReport:
    """Score every spec across every window of the timeline."""
    nwin = tl.nwindows(total_ns)
    report = SloReport(window_ns=tl.window_ns, windows=nwin)
    for spec in specs:
        result = SloResult(spec=spec)
        for w in range(nwin):
            value = _window_value(tl, spec, w)
            result.values.append(value)
            if (
                value is not None
                and not spec.holds(value)
                and result.first_violation is None
            ):
                result.first_violation = w
        report.results.append(result)
    return report
