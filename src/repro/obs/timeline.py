"""Windowed telemetry timeline over simulated time.

The whole-run instruments in :mod:`repro.obs` answer "how much, in
total"; saturation is a *when* question.  A :class:`Timeline` buckets
every observation into fixed-width simulated-time windows (via
:class:`repro.metrics.windowed.WindowedMetrics`) and additionally
accounts two interval-shaped series that plain instruments cannot
express:

- **link busy time** — fabric backends report every booked transmission
  as ``link_busy(link, start, end)``; the busy nanoseconds are credited
  to each window the interval crosses, making per-link utilisation a
  curve and "busiest links over time" a report;
- **span time** — closed spans are credited the same way (busy-ns per
  window plus a per-window duration histogram at the closing window),
  so fault/serve/disk activity becomes visible per window even when
  head-based sampling drops the span record itself.

Feeding a timeline is pure observation: every timestamp is simulated
(from the bound cluster clock or an interval already stamped by the
simulation), no RNG is consumed, no event is scheduled, and no wall
clock is read.  The simulated schedule is bit-for-bit identical with
the timeline on or off.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.metrics.windowed import WindowedMetrics
from repro.sim.trace import UNSTAMPED

__all__ = ["Timeline"]


class Timeline:
    """Windowed counters/gauges/histograms plus link and span series."""

    def __init__(
        self, window_ns: int, hist_backend: str = "exact", alpha: float = 0.01
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.window_ns = window_ns
        self.metrics = WindowedMetrics(window_ns, hist_backend, alpha)
        #: link name -> window -> busy ns inside that window
        self._links: dict[str, dict[int, int]] = {}
        self._clock: Callable[[], int] | None = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def _now(self) -> int:
        return self._clock() if self._clock is not None else UNSTAMPED

    # ------------------------------------------------------------------
    # recording

    def observe(self, name: str, value: float, t: int | None = None) -> None:
        at = self._now() if t is None else t
        if at != UNSTAMPED:
            self.metrics.observe(name, at, value)

    def count(self, name: str, by: int = 1, t: int | None = None) -> None:
        at = self._now() if t is None else t
        if at != UNSTAMPED:
            self.metrics.count(name, at, by)

    def gauge(self, name: str, value: float, t: int | None = None) -> None:
        at = self._now() if t is None else t
        if at != UNSTAMPED:
            self.metrics.gauge(name, at, value)

    def _credit(
        self, out: dict[int, int], start: int, end: int
    ) -> None:
        """Split ``[start, end)`` across window boundaries into ``out``."""
        if end <= start:
            return
        w = self.window_ns
        win = start // w
        at = start
        while at < end:
            edge = (win + 1) * w
            stop = end if end < edge else edge
            out[win] = out.get(win, 0) + (stop - at)
            at = stop
            win += 1

    def link_busy(self, link: str, start: int, end: int) -> None:
        """Credit a booked transmission on ``link`` to its windows."""
        if start == UNSTAMPED or end == UNSTAMPED or end <= start:
            return
        per = self._links.get(link)
        if per is None:
            per = self._links[link] = {}
        self._credit(per, start, end)

    def span(self, name: str, start: int, end: int) -> None:
        """Credit a closed span: busy-ns per window it crosses, plus its
        duration observed at the window it closed in."""
        if start == UNSTAMPED or end == UNSTAMPED or end < start:
            return
        c = self.metrics.counters.get(f"span.{name}.busy_ns")
        if c is None:
            self.metrics.count(f"span.{name}.busy_ns", start, 0)
            c = self.metrics.counters[f"span.{name}.busy_ns"]
        self._credit(c.windows, start, end)
        self.metrics.observe(f"span.{name}.ns", end, end - start)

    # ------------------------------------------------------------------
    # queries

    def nwindows(self, total_ns: int) -> int:
        """Window count covering ``[0, total_ns]`` plus any data beyond."""
        by_time = -(-total_ns // self.window_ns) if total_ns > 0 else 1
        by_data = self.max_window() + 1
        return max(1, by_time, by_data)

    def max_window(self) -> int:
        out = self.metrics.max_window()
        for per in self._links.values():
            if per:
                out = max(out, max(per))
        return out

    def links(self) -> list[str]:
        return sorted(self._links)

    def link_window(self, link: str, window: int) -> int:
        per = self._links.get(link)
        return per.get(window, 0) if per is not None else 0

    def link_utilisation(self, window: int) -> float:
        """Utilisation of the *busiest* link inside ``window`` (0..1)."""
        best = 0
        for per in self._links.values():
            busy = per.get(window, 0)
            if busy > best:
                best = busy
        return best / self.window_ns

    def busiest_links(
        self, total_ns: int, limit: int = 8
    ) -> list[tuple[str, int, float]]:
        """Top links by total busy-ns: (name, busy_ns, peak window util).

        Sorted by descending busy time then name, so the report is
        deterministic under ties.
        """
        rows: list[tuple[str, int, float]] = []
        for link, per in self._links.items():
            busy = sum(per.values())
            peak = max(per.values()) / self.window_ns if per else 0.0
            rows.append((link, busy, peak))
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[:limit]

    def link_series(
        self, links: Iterable[str], nwindows: int
    ) -> dict[str, list[int]]:
        """Busy-ns per window for each named link, dense over windows."""
        return {
            link: [self.link_window(link, w) for w in range(nwindows)]
            for link in links
        }
