"""``repro.obs`` — causal span tracing, metric instruments, and the
simulated-time profiler.

One :class:`Observability` object per run bundles the three layers:

- :class:`repro.obs.span.SpanTracer` — fault/rpc/serve/disk span trees
  with per-hop simulated durations (span ids propagate on messages);
- :class:`repro.metrics.hist.Metrics` — histograms and gauges (fault
  latency, ring queueing delay, invalidation fan-out, frame occupancy);
- :class:`repro.obs.profiler.SimProfiler` — per-node attribution of
  simulated time to compute / fault-stall / network / disk / idle.

Enable it per run (``ClusterConfig(obs=True)``, or pass an
``Observability`` to :class:`repro.api.ivy.Ivy` / ``run_app`` to keep the
handle).  Like :data:`repro.sim.trace.NULL_TRACE`, the default
:data:`NULL_OBS` is a disabled instance whose hooks are no-ops, so the
hot paths pay one truthiness check and nothing else.  Every hook is pure
observation — no simulation events, no effects, no RNG — so enabling
observability never changes simulated times, event counts, or golden
schedules.

Exporters live in :mod:`repro.obs.export` (Chrome trace-event JSON,
loadable in Perfetto) and the CLI in ``python -m repro.obs``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.metrics.hist import Metrics
from repro.obs.profiler import CATEGORIES, PRECEDENCE, SimProfiler
from repro.obs.span import NULL_SPAN, Span, SpanTracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "SimProfiler",
    "Metrics",
    "CATEGORIES",
    "PRECEDENCE",
    "SPAN_CATEGORIES",
]

#: Span-name prefixes that feed the profiler, mapped to its categories.
#: ``fault.*`` roots are the faulting process's stall; ``serve:*`` spans
#: are interrupt-level handler work (network service); ``disk.*`` spans
#: are transfers that stall the node.  ``rpc:*`` and ``inv`` spans are
#: structure-only: their time is already covered by the fault root.
SPAN_CATEGORIES = {"fault": "fault", "serve": "network", "disk": "disk"}


def _span_category(name: str) -> str | None:
    prefix = name.split(".", 1)[0].split(":", 1)[0]
    return SPAN_CATEGORIES.get(prefix)


class Observability:
    """Spans + instruments + profiler behind one opt-in handle."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans = SpanTracer(enabled=enabled)
        self.metrics = Metrics()
        self.profiler = SimProfiler()

    def __bool__(self) -> bool:
        return self.enabled

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self.spans.bind_clock(clock)

    # ------------------------------------------------------------------
    # span facade (no-ops when disabled; see SpanTracer)

    def span_begin(
        self,
        name: str,
        parent: Span | int | None = 0,
        node: int = -1,
        start: int | None = None,
        **attrs: Any,
    ) -> Span:
        if not self.enabled:
            return NULL_SPAN
        return self.spans.span_begin(name, parent=parent, node=node, start=start, **attrs)

    def span_end(self, span: Span, end: int | None = None) -> None:
        self.spans.span_end(span, end=end)

    # ------------------------------------------------------------------
    # instruments

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name, value)

    # ------------------------------------------------------------------
    # profiler

    def interval(self, node: int, category: str, start: int, end: int) -> None:
        if self.enabled:
            self.profiler.interval(node, category, start, end)

    def _profile(self, total_ns: int) -> SimProfiler:
        """The recorded intervals plus the categorised spans, with open
        spans clamped to the end of the run."""
        merged = self.profiler.merged(SimProfiler())
        for span in self.spans:
            category = _span_category(span.name)
            if category is None or span.start == span.end:
                continue
            end = total_ns if span.open else span.end
            merged.interval(span.node, category, span.start, end)
        return merged

    def breakdown(self, nnodes: int, total_ns: int) -> dict[int, dict[str, int]]:
        """Per-node partition of ``[0, total_ns]``; each node's values
        sum to ``total_ns`` exactly (see :mod:`repro.obs.profiler`)."""
        return self._profile(total_ns).per_node(nnodes, total_ns)

    @staticmethod
    def cluster_breakdown(per_node: dict[int, dict[str, int]]) -> dict[str, int]:
        return SimProfiler.cluster(per_node)

    # ------------------------------------------------------------------
    # aggregate span statistics (the CLI's `top`)

    def span_stats(self) -> dict[str, dict[str, float | int | None]]:
        """Per-span-name aggregates: count, total/mean/p95 duration."""
        groups = Metrics()
        for span in self.spans:
            duration = span.duration
            if duration is not None:
                groups.observe(span.name, duration)
        out: dict[str, dict[str, float | int | None]] = {}
        for name, hist in groups.histograms.items():
            out[name] = {
                "count": hist.count,
                "total_ns": hist.total,
                "mean_ns": hist.mean(),
                "p95_ns": hist.percentile(95),
                "max_ns": hist.max,
            }
        return out


#: Shared disabled instance — the default everywhere, like NULL_TRACE.
NULL_OBS = Observability(enabled=False)
