"""``repro.obs`` — causal span tracing, metric instruments, and the
simulated-time profiler.

One :class:`Observability` object per run bundles the three layers:

- :class:`repro.obs.span.SpanTracer` — fault/rpc/serve/disk span trees
  with per-hop simulated durations (span ids propagate on messages);
- :class:`repro.metrics.hist.Metrics` — histograms and gauges (fault
  latency, ring queueing delay, invalidation fan-out, frame occupancy);
- :class:`repro.obs.profiler.SimProfiler` — per-node attribution of
  simulated time to compute / fault-stall / network / disk / idle.

Two scale features ride the same handle, both opt-in and both pure
observation:

- a windowed **timeline** (:class:`repro.obs.timeline.Timeline`,
  ``timeline_window_ns > 0``) that buckets instruments, closed-span
  time, per-window profiler attribution, and per-link busy-ns into
  fixed simulated-time windows — the substrate for SLO evaluation
  (:mod:`repro.obs.slo`) and saturation-onset detection;
- deterministic **head-based span sampling** (``sample_every > 1``)
  keeping ~1/N of root-span trees by a pure hash of the span id
  (:mod:`repro.obs.sample`).  Dropped spans still feed the profiler
  and the timeline at close time via :meth:`Observability.span_end`
  / :meth:`Observability.span_account`, so attribution stays complete
  while the recorded span list shrinks ~N-fold.

Enable it per run (``ClusterConfig(obs=True)`` or
``ClusterConfig(obs=ObsConfig(...))``, or pass an ``Observability`` to
:class:`repro.api.ivy.Ivy` / ``run_app`` to keep the handle).  Like
:data:`repro.sim.trace.NULL_TRACE`, the default :data:`NULL_OBS` is a
disabled instance whose hooks are no-ops, so the hot paths pay one
truthiness check and nothing else.  Every hook is pure observation — no
simulation events, no effects, no RNG — so enabling observability never
changes simulated times, event counts, or golden schedules.

Exporters live in :mod:`repro.obs.export` (Chrome trace-event JSON,
loadable in Perfetto; timeline JSONL; OpenMetrics text) and the CLI in
``python -m repro.obs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.metrics.hist import Metrics
from repro.obs.profiler import CATEGORIES, PRECEDENCE, SimProfiler
from repro.obs.span import NULL_SPAN, UNSTAMPED, Span, SpanTracer
from repro.obs.timeline import Timeline

if TYPE_CHECKING:
    from repro.config import ObsConfig

__all__ = [
    "Observability",
    "NULL_OBS",
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "SimProfiler",
    "Metrics",
    "Timeline",
    "CATEGORIES",
    "PRECEDENCE",
    "SPAN_CATEGORIES",
]

#: Span-name prefixes that feed the profiler, mapped to its categories.
#: ``fault.*`` roots are the faulting process's stall; ``serve:*`` spans
#: are interrupt-level handler work (network service); ``disk.*`` spans
#: are transfers that stall the node.  ``rpc:*`` and ``inv`` spans are
#: structure-only: their time is already covered by the fault root.
SPAN_CATEGORIES = {"fault": "fault", "serve": "network", "disk": "disk"}


def _span_category(name: str) -> str | None:
    prefix = name.split(".", 1)[0].split(":", 1)[0]
    return SPAN_CATEGORIES.get(prefix)


class Observability:
    """Spans + instruments + profiler behind one opt-in handle."""

    def __init__(
        self,
        enabled: bool = True,
        *,
        timeline_window_ns: int = 0,
        sample_every: int = 1,
        hist_backend: str = "exact",
    ) -> None:
        self.enabled = enabled
        self.spans = SpanTracer(enabled=enabled, sample_every=sample_every)
        self.metrics = Metrics(default_backend=hist_backend)
        self.profiler = SimProfiler()
        self.timeline: Timeline | None = (
            Timeline(timeline_window_ns, hist_backend=hist_backend)
            if enabled and timeline_window_ns > 0
            else None
        )

    @classmethod
    def from_config(cls, config: "ObsConfig") -> "Observability":
        return cls(
            enabled=config.enabled,
            timeline_window_ns=config.timeline_window_ns,
            sample_every=config.sample_every,
            hist_backend=config.hist_backend,
        )

    def __bool__(self) -> bool:
        return self.enabled

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self.spans.bind_clock(clock)
        if self.timeline is not None:
            self.timeline.bind_clock(clock)

    # ------------------------------------------------------------------
    # span facade (no-ops when disabled; see SpanTracer)

    def span_begin(
        self,
        name: str,
        parent: Span | int | None = 0,
        node: int = -1,
        start: int | None = None,
        **attrs: Any,
    ) -> Span:
        if not self.enabled:
            return NULL_SPAN
        return self.spans.span_begin(name, parent=parent, node=node, start=start, **attrs)

    def span_end(self, span: Span, end: int | None = None) -> None:
        self.spans.span_end(span, end=end)
        if span.sid != 0:
            self._account(span)

    def span_account(self, span: Span, end: int | None = None) -> None:
        """Close a span *and* fold its interval into the aggregates.

        The explicit name for sites where the aggregates — not the span
        record — are the point: under head-based sampling the span
        itself may be dropped (negative id), but its time still feeds
        the profiler's attribution and the timeline's per-window series.
        :meth:`span_end` does the same accounting; this alias exists so
        accumulation-first call sites read as what they are.
        """
        self.span_end(span, end=end)

    def _account(self, span: Span) -> None:
        """Fold one just-closed span into profiler/timeline aggregates.

        Kept spans reach the profiler later via :meth:`_profile`;
        dropped (negative-id) spans are not in the tracer's list, so
        their categorised interval is recorded here — whole-run and
        windowed attribution stay complete at any sampling rate.
        """
        if span.start == UNSTAMPED or span.end == UNSTAMPED:
            return
        if span.sid < 0:
            category = _span_category(span.name)
            if category is not None:
                self.profiler.interval(span.node, category, span.start, span.end)
        if self.timeline is not None and span.end > span.start:
            self.timeline.span(span.name, span.start, span.end)

    # ------------------------------------------------------------------
    # instruments

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)
            if self.timeline is not None:
                self.timeline.observe(name, value)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name, value)
            if self.timeline is not None:
                self.timeline.gauge(name, value)

    # ------------------------------------------------------------------
    # profiler

    def interval(self, node: int, category: str, start: int, end: int) -> None:
        if self.enabled:
            self.profiler.interval(node, category, start, end)

    def _profile(self, total_ns: int) -> SimProfiler:
        """The recorded intervals plus the categorised spans, with open
        spans clamped to the end of the run."""
        merged = self.profiler.merged(SimProfiler())
        for span in self.spans:
            category = _span_category(span.name)
            if category is None or span.start == span.end:
                continue
            end = total_ns if span.open else span.end
            merged.interval(span.node, category, span.start, end)
        return merged

    def breakdown(self, nnodes: int, total_ns: int) -> dict[int, dict[str, int]]:
        """Per-node partition of ``[0, total_ns]``; each node's values
        sum to ``total_ns`` exactly (see :mod:`repro.obs.profiler`)."""
        return self._profile(total_ns).per_node(nnodes, total_ns)

    @staticmethod
    def cluster_breakdown(per_node: dict[int, dict[str, int]]) -> dict[str, int]:
        return SimProfiler.cluster(per_node)

    def window_breakdowns(
        self, nnodes: int, total_ns: int
    ) -> dict[int, list[dict[str, int]]]:
        """Per-node, per-window partition of ``[0, total_ns]`` using the
        timeline's window width; requires a timeline."""
        if self.timeline is None:
            raise ValueError("window_breakdowns requires a timeline "
                             "(Observability(timeline_window_ns=...))")
        return self._profile(total_ns).per_node_windows(
            nnodes, total_ns, self.timeline.window_ns
        )

    # ------------------------------------------------------------------
    # aggregate span statistics (the CLI's `top`)

    def span_stats(self) -> dict[str, dict[str, float | int | None]]:
        """Per-span-name aggregates: count, total/mean/p95 duration."""
        groups = Metrics()
        for span in self.spans:
            duration = span.duration
            if duration is not None:
                groups.observe(span.name, duration)
        out: dict[str, dict[str, float | int | None]] = {}
        for name, hist in groups.histograms.items():
            out[name] = {
                "count": hist.count,
                "total_ns": hist.total,
                "mean_ns": hist.mean(),
                "p95_ns": hist.percentile(95),
                "max_ns": hist.max,
            }
        return out


#: Shared disabled instance — the default everywhere, like NULL_TRACE.
NULL_OBS = Observability(enabled=False)
