"""Causal spans over simulated time.

A :class:`Span` is one timed section of work on one node — a page fault,
an rpc round-trip, a server handler, a disk transfer.  Spans form trees:
a fault opens a root span, its span id rides on every message the fault
sends (``Message.span``), and the receiving node's handler opens a child
span under it, so a read fault becomes::

    fault.read (node 1)
    └── rpc:svm.read (node 1)                 client round-trip
        └── serve:svm.read (node 0)           manager handler
            └── serve:svm.read (node 2)       forwarded to the owner
                └── disk.read (node 2)        owner paged the frame in

with per-hop simulated-time durations.  Span ids are small integers
allocated in emission order; id 0 means "no span" (the :data:`NULL_SPAN`
parent of roots, and the id that rides on messages when observability is
off).

Tracing is opt-in with a no-op fast path: a disabled tracer hands back
:data:`NULL_SPAN` from :meth:`SpanTracer.span_begin` and ignores it in
:meth:`SpanTracer.span_end`, so instrumented code needs no conditionals
and the hot path pays one attribute check.  Recording is pure
observation — it never schedules events, yields effects, or consumes
RNG, so enabling it cannot change simulated times or event counts.

Head-based sampling (``sample_every > 1``) keeps ~1/N of root spans by
a pure hash of the span id (:func:`repro.obs.sample.keep_root`).  Ids
are allocated identically whether or not a span is kept, so schedules
and id assignment never depend on the sampling rate.  A dropped span
carries the *negated* id: the sign rides ``Message.span`` exactly like
a positive id would, so a receiver can parent its handler span under a
dropped ancestor and drop it too — whole causal trees are kept or
dropped together (0 still means "no span at all").

Like :class:`repro.sim.trace.TraceRecorder`, a tracer used before the
cluster binds its clock stamps :data:`UNSTAMPED` rather than a plausible
zero, and streams round-trip through :meth:`save` / :meth:`load` using
the repo's JSONL conventions.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator

from repro.obs.sample import keep_root
from repro.sim.trace import UNSTAMPED, jsonable

__all__ = ["Span", "SpanTracer", "NULL_SPAN", "UNSTAMPED"]


class Span:
    """One timed, attributed section of simulated work on one node."""

    __slots__ = ("sid", "parent", "name", "node", "start", "end", "attrs")

    def __init__(
        self,
        sid: int,
        parent: int,
        name: str,
        node: int,
        start: int,
        end: int = UNSTAMPED,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.sid = sid
        self.parent = parent
        self.name = name
        self.node = node
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def open(self) -> bool:
        return self.end == UNSTAMPED

    @property
    def duration(self) -> int | None:
        """Simulated duration in ns, or None while the span is open or
        when it was begun before the clock was bound."""
        if self.open or self.start == UNSTAMPED:
            return None
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.sid}, {self.name!r}, node={self.node}, "
            f"[{self.start}, {self.end}], parent={self.parent})"
        )


#: The span handed out by a disabled tracer (and the parent of roots).
#: Its id 0 is what rides on messages when observability is off.
NULL_SPAN = Span(0, 0, "", -1, UNSTAMPED, UNSTAMPED, {})


class SpanTracer:
    """Collects spans; disabled instances are no-ops returning NULL_SPAN."""

    def __init__(self, enabled: bool = True, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.enabled = enabled
        self.sample_every = sample_every
        self.spans: list[Span] = []
        self.dropped = 0
        self._by_sid: dict[int, Span] = {}
        self._next_sid = 0
        self._clock: Callable[[], int] | None = None

    def __bool__(self) -> bool:
        return self.enabled

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulator clock; called by the cluster at boot."""
        self._clock = clock

    def _now(self) -> int:
        return self._clock() if self._clock is not None else UNSTAMPED

    # ------------------------------------------------------------------
    # recording

    def span_begin(
        self,
        name: str,
        parent: "Span | int | None" = 0,
        node: int = -1,
        start: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; returns :data:`NULL_SPAN` when disabled.

        ``parent`` accepts a :class:`Span`, a raw span id (e.g. the id
        that arrived on a message), or None (a root).  ``start``
        overrides the clock for sections whose measurement began before
        the span could be opened (a write fault's latency clock starts
        before the owner-materialisation step that decides whether the
        fault is real).
        """
        if not self.enabled:
            return NULL_SPAN
        pid = parent.sid if isinstance(parent, Span) else int(parent or 0)
        self._next_sid += 1
        sid = self._next_sid
        at = self._now() if start is None else start
        if pid < 0 or (
            pid == 0
            and self.sample_every > 1
            and not keep_root(sid, self.sample_every)
        ):
            # Dropped: id allocation and timing are identical to the
            # kept path (sampling must not perturb either), but the
            # span is not recorded and its negated id propagates the
            # drop decision to descendants.
            self.dropped += 1
            return Span(-sid, pid, name, node, at, UNSTAMPED, attrs if attrs else {})
        span = Span(sid, pid, name, node, at, UNSTAMPED, attrs if attrs else {})
        self.spans.append(span)
        self._by_sid[span.sid] = span
        return span

    def span_end(self, span: Span, end: int | None = None) -> None:
        """Close a span; :data:`NULL_SPAN` (id 0) is ignored.

        Dropped (negative-id) spans are stamped too: they were never
        recorded, but timeline accumulation still reads their interval,
        and each is a fresh object (unlike the shared NULL_SPAN).
        """
        if span.sid == 0:
            return
        span.end = self._now() if end is None else end

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def get(self, sid: int) -> Span | None:
        return self._by_sid.get(sid)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent == 0]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def select(self, name: str, **match: Any) -> list[Span]:
        """Spans named ``name`` whose attrs match all of ``match``."""
        return [
            s
            for s in self.spans
            if s.name == name
            and all(s.attrs.get(k) == v for k, v in match.items())
        ]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` and every descendant, in emission order."""
        wanted = {span.sid}
        out = [span]
        for s in self.spans:
            if s.parent in wanted and s.sid not in wanted:
                wanted.add(s.sid)
                out.append(s)
        return out

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if s.open]

    # ------------------------------------------------------------------
    # persistence (same JSONL conventions as TraceRecorder)

    def save(self, path: str) -> int:
        """Write the spans as JSON lines; returns the span count."""
        with open(path, "w", encoding="utf-8") as fh:
            for s in self.spans:
                fh.write(
                    json.dumps(
                        {
                            "sid": s.sid, "parent": s.parent, "name": s.name,
                            "node": s.node, "start": s.start, "end": s.end,
                            "attrs": s.attrs,
                        },
                        default=jsonable,
                    )
                )
                fh.write("\n")
        return len(self.spans)

    @classmethod
    def load(cls, path: str) -> "SpanTracer":
        tracer = cls()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                span = Span(
                    int(raw["sid"]), int(raw["parent"]), raw["name"],
                    int(raw["node"]), int(raw["start"]), int(raw["end"]),
                    raw.get("attrs") or {},
                )
                tracer.spans.append(span)
                tracer._by_sid[span.sid] = span
                tracer._next_sid = max(tracer._next_sid, span.sid)
        return tracer
