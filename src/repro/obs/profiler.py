"""Simulated-time profiler: where did each node's wall of time go?

The experiments' explanations live at this granularity — "dot-product
does not scale because the nodes sit in fault stalls", "one-node PDE
spends its life on the disk" (Figure 4's super-linear region).  The
profiler collects per-node **intervals** of simulated time, each tagged
with a category, and partitions every node's ``[0, T]`` timeline into

    disk > compute > network > fault > idle

by a line sweep: at each instant the node is attributed to the
highest-precedence category with an active interval, and to ``idle``
when none is active.  Because the sweep partitions the timeline, the
per-node breakdown sums to ``T`` exactly (±0) by construction — overlap
(an app process computing while another's fault is in flight) is
resolved, never double-counted.

Interval sources (wired by the cluster):

- ``compute`` — :class:`repro.proc.scheduler.NodeScheduler` records every
  application ``Compute`` effect and context switch;
- ``disk``    — :class:`repro.machine.disk.Disk` spans its transfers;
- ``network`` — ``serve:*`` spans (interrupt-level request handlers);
- ``fault``   — ``fault.*`` root spans (the faulting process is stalled).

The precedence encodes the model's stall semantics: a disk transfer
stalls the whole node (IVY had no I/O overlap), compute is real CPU use
even when it happens *during* someone else's fault (that overlap is the
win being measured), handler service is network work, and what remains
of a fault is pure stall.  ``idle`` also absorbs unattributed system
activity (migration traffic, timers), which is not worth a category.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["SimProfiler", "CATEGORIES", "PRECEDENCE"]

#: Every category a breakdown reports, in display order.
CATEGORIES = ("compute", "fault", "network", "disk", "idle")

#: Attribution precedence for overlapping intervals (idle is the rest).
PRECEDENCE = ("disk", "compute", "network", "fault")


class SimProfiler:
    """Per-node interval store + line-sweep attribution."""

    def __init__(self) -> None:
        #: node -> category -> list of (start, end) in simulated ns.
        self._intervals: defaultdict[int, defaultdict[str, list[tuple[int, int]]]] = (
            defaultdict(lambda: defaultdict(list))
        )

    def interval(self, node: int, category: str, start: int, end: int) -> None:
        """Record that ``node`` spent ``[start, end)`` in ``category``.

        Empty, inverted, and pre-boot (negative start) intervals are
        dropped — they carry no time.
        """
        if start < 0 or end <= start:
            return
        self._intervals[node][category].append((start, end))

    def nodes(self) -> list[int]:
        return sorted(self._intervals)

    def merged(self, other: "SimProfiler") -> "SimProfiler":
        """A new profiler holding both interval stores (self unchanged)."""
        out = SimProfiler()
        for src in (self, other):
            for node, cats in src._intervals.items():
                for cat, spans in cats.items():
                    out._intervals[node][cat].extend(spans)
        return out

    # ------------------------------------------------------------------

    def _deltas(
        self, node: int, total_ns: int
    ) -> defaultdict[int, defaultdict[str, int]]:
        """Boundary events: +1/-1 per category at clamped interval edges."""
        deltas: defaultdict[int, defaultdict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        known = set(PRECEDENCE)
        for cat, spans in self._intervals.get(node, {}).items():
            if cat not in known:
                continue  # unknown categories fall through to idle
            for start, end in spans:
                start = max(0, start)
                end = min(end, total_ns)
                if end <= start:
                    continue
                deltas[start][cat] += 1
                deltas[end][cat] -= 1
        return deltas

    def breakdown(self, node: int, total_ns: int) -> dict[str, int]:
        """Partition ``[0, total_ns]`` of one node's timeline.

        Returns ``{category: ns}`` over :data:`CATEGORIES`; the values
        sum to ``total_ns`` exactly.
        """
        out = {cat: 0 for cat in CATEGORIES}
        if total_ns <= 0:
            return out
        deltas = self._deltas(node, total_ns)
        active = {cat: 0 for cat in PRECEDENCE}
        prev = 0
        for t in sorted(deltas):
            if t > prev:
                out[self._pick(active)] += t - prev
                prev = t
            for cat, d in deltas[t].items():
                active[cat] += d
        if prev < total_ns:
            out[self._pick(active)] += total_ns - prev
        return out

    def window_breakdown(
        self, node: int, total_ns: int, window_ns: int
    ) -> list[dict[str, int]]:
        """Per-window partition of one node's ``[0, total_ns]`` timeline.

        The same line sweep as :meth:`breakdown`, but each attributed
        segment is credited across the window boundaries it crosses.
        Returns one ``{category: ns}`` dict per window of width
        ``window_ns``; every full window's values sum to ``window_ns``
        exactly, and the final (possibly partial) window's values sum to
        ``total_ns - (nwindows - 1) * window_ns``.
        """
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        nwin = max(1, -(-total_ns // window_ns))  # ceil
        out = [{cat: 0 for cat in CATEGORIES} for _ in range(nwin)]
        if total_ns <= 0:
            return out

        def credit(start: int, end: int, cat: str) -> None:
            win = start // window_ns
            at = start
            while at < end:
                edge = (win + 1) * window_ns
                stop = end if end < edge else edge
                out[win][cat] += stop - at
                at = stop
                win += 1

        deltas = self._deltas(node, total_ns)
        active = {cat: 0 for cat in PRECEDENCE}
        prev = 0
        for t in sorted(deltas):
            if t > prev:
                credit(prev, t, self._pick(active))
                prev = t
            for cat, d in deltas[t].items():
                active[cat] += d
        if prev < total_ns:
            credit(prev, total_ns, self._pick(active))
        return out

    @staticmethod
    def _pick(active: dict[str, int]) -> str:
        for cat in PRECEDENCE:
            if active[cat] > 0:
                return cat
        return "idle"

    def per_node(self, nnodes: int, total_ns: int) -> dict[int, dict[str, int]]:
        """Breakdown for every node id in ``range(nnodes)``."""
        return {node: self.breakdown(node, total_ns) for node in range(nnodes)}

    def per_node_windows(
        self, nnodes: int, total_ns: int, window_ns: int
    ) -> dict[int, list[dict[str, int]]]:
        """Windowed breakdown for every node id in ``range(nnodes)``."""
        return {
            node: self.window_breakdown(node, total_ns, window_ns)
            for node in range(nnodes)
        }

    @staticmethod
    def cluster(per_node: dict[int, dict[str, int]]) -> dict[str, int]:
        """Sum a per-node breakdown into a cluster-wide one."""
        out = {cat: 0 for cat in CATEGORIES}
        for counts in per_node.values():
            for cat, ns in counts.items():
                out[cat] += ns
        return out
