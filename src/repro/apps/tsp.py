"""Traveling salesman by branch-and-bound with 1-tree lower bounds.

"The available branches, the graph, and the least upper bound are
stored in the shared virtual memory.  The program creates a process for
each processor that performs the branch-and-bound algorithm on a branch
obtained from the shared virtual memory.  These processes run in
parallel until the tour is found.  Each process is not much different
from the sequential one except it needs to access shared data
structures mutually exclusively."

Structure (matching that description):

- the initial process enumerates all depth-2 subtours into a shared
  *branch pool* (fixed-size records, LIFO, guarded by a shared binary
  lock);
- each worker repeatedly takes **one branch** from the pool and runs
  the ordinary sequential branch-and-bound over that branch's subtree
  with a private stack — shared-memory traffic is only the pool pop,
  reads of the incumbent (a read copy that stays cached until some
  improvement invalidates it — the natural DSM pattern), and the rare
  incumbent update under the lock;
- the lower bound for a partial tour is its cost plus the weight of a
  minimum spanning tree over {start, current} + the unvisited cities
  (the simplified 1-tree of the paper's reference [13]).

Because pruning depends on the racing incumbent, the search exhibits
the anomalies the paper cites [19]: node counts vary with the schedule
and speedups can exceed p.  The *result* (the optimal tour cost) is
schedule-independent and is checked against a Held-Karp exact solver.
"""

from __future__ import annotations

import struct
from typing import Any, Generator

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.apps.common import alloc_done_ec, spawn_workers, wait_done

__all__ = ["TspApp", "held_karp", "mst_weight"]

#: Branch record: cost f64 | depth i64 | visited mask i64 | path bytes.
MAX_CITIES = 16
ENTRY_BYTES = 8 + 8 + 8 + MAX_CITIES
#: Pool header: count i64 (plus padding for alignment).
POOL_HEADER = 16
#: Simple ops per Prim-step distance comparison.
PRIM_OPS = 4
#: Branches taken from the pool per critical section (two keeps the
#: best-first order sharp while halving pool-lock traffic).
BATCH = 2
#: Re-read the shared incumbent every this many expanded nodes (the read
#: is a cached local access except right after an improvement, so it is
#: nearly free — checking every node keeps pruning sharp).
BEST_REFRESH = 1


def held_karp(w: Any) -> float:
    """Exact TSP by Held-Karp dynamic programming (golden reference).

    Pure Python over nested lists: the dp loop is scalar indexing, where
    float machinery beats numpy's per-element dispatch by an order of
    magnitude.  Update order matches the original vectorised version, so
    the result is bit-for-bit identical.
    """
    if not isinstance(w, list):
        w = w.tolist()
    n = len(w)
    full = 1 << (n - 1)
    inf = float("inf")
    dp = [[inf] * (n - 1) for _ in range(full)]
    for j in range(n - 1):
        dp[1 << j][j] = w[0][j + 1]
    for mask in range(1, full):
        row = dp[mask]
        for j in range(n - 1):
            base = row[j]
            if not mask & (1 << j) or base == inf:
                continue
            wrow = w[j + 1]
            for k in range(n - 1):
                if mask & (1 << k):
                    continue
                nxt = dp[mask | (1 << k)]
                cand = base + wrow[k + 1]
                if cand < nxt[k]:
                    nxt[k] = cand
    best = inf
    last = dp[full - 1]
    for j in range(n - 1):
        cand = last[j] + w[j + 1][0]
        if cand < best:
            best = cand
    return best


def mst_weight(w: Any, nodes: list[int]) -> float:
    """Prim's MST weight over the induced subgraph.

    ``w`` is the full weight matrix, preferably as nested Python lists
    (``ndarray.tolist()`` once per workload, not per call): this is the
    branch-and-bound inner loop, and at r <= 16 plain floats beat the
    numpy masked-argmin formulation ~20x.  The arithmetic — first-min
    selection, accumulation order, elementwise relaxation — mirrors the
    vectorised version operation for operation, so every bound (and
    therefore every pruning decision and the event schedule downstream)
    is bit-for-bit unchanged.
    """
    r = len(nodes)
    if r <= 1:
        return 0.0
    if not isinstance(w, list):
        w = w.tolist()
    rows = [w[i] for i in nodes]
    row0 = rows[0]
    dist = [row0[i] for i in nodes]
    in_tree = [False] * r
    in_tree[0] = True
    total = 0.0
    inf = float("inf")
    rng = range(r)
    for _ in range(r - 1):
        best = inf
        j = -1
        for k in rng:
            if not in_tree[k] and dist[k] < best:
                best = dist[k]
                j = k
        total += best
        in_tree[j] = True
        wrow = rows[j]
        for k in rng:
            v = wrow[nodes[k]]
            if v < dist[k]:
                dist[k] = v
    return total


class TspApp:
    """One configured instance of the branch-and-bound TSP."""

    name = "tsp"

    def __init__(
        self, nprocs: int, ncities: int = 10, seed: int = 21, metric: str = "random"
    ) -> None:
        if not 4 <= ncities <= MAX_CITIES:
            raise ValueError(f"ncities must be in [4, {MAX_CITIES}]")
        self.nprocs = nprocs
        self.n = ncities
        rng = np.random.default_rng(seed)
        if metric == "euclidean":
            # Road-network-like instance: triangle inequality makes the
            # 1-tree bound sharp and the search shallow.
            pts = rng.uniform(0.0, 100.0, size=(ncities, 2))
            diff = pts[:, None, :] - pts[None, :, :]
            self.w = np.sqrt((diff**2).sum(axis=2))
        elif metric == "random":
            # "The cost of a tour is the sum of the weights of the edges"
            # — a general weighted graph; bounds are weaker, the search
            # deeper, which is the regime where parallel search pays.
            raw = rng.uniform(1.0, 100.0, size=(ncities, ncities))
            self.w = (raw + raw.T) / 2.0
        else:
            raise ValueError(f"unknown metric {metric!r}")
        np.fill_diagonal(self.w, 0.0)

    _golden_cache: dict = {}

    def golden(self) -> float:
        key = (self.n, self.w.tobytes())
        if key not in TspApp._golden_cache:
            TspApp._golden_cache[key] = held_karp(self.w)
        return TspApp._golden_cache[key]

    def nearest_neighbour_tour(self) -> float:
        """Greedy tour cost — the initial upper bound every run starts
        from (sequential and parallel alike, so the comparison is fair)."""
        unvisited = set(range(1, self.n))
        cur, total = 0, 0.0
        while unvisited:
            nxt = min(unvisited, key=lambda c: self.w[cur, c])
            total += float(self.w[cur, nxt])
            unvisited.remove(nxt)
            cur = nxt
        return total + float(self.w[cur, 0])

    def _seed_branches(self) -> list[bytes]:
        """All depth-2 subtours 0 -> b -> c, the units of parallel work,
        ordered so the most promising (smallest lower bound) is popped
        first from the LIFO pool."""
        scored = []
        wl = self.w.tolist()
        for b in range(1, self.n):
            for c in range(1, self.n):
                if c == b:
                    continue
                cost = wl[0][b] + wl[b][c]
                visited = 1 | (1 << b) | (1 << c)
                rest = [0, c] + [
                    x for x in range(1, self.n) if not visited & (1 << x)
                ]
                bound = cost + mst_weight(wl, rest)
                scored.append(
                    (bound, _pack_entry(cost, 3, visited, bytes([0, b, c])))
                )
        scored.sort(key=lambda t: -t[0])  # LIFO pops from the end
        return [entry for _, entry in scored]

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, float]:
        n = self.n
        w_addr = yield from ctx.malloc(8 * n * n)
        yield from ctx.write_array(w_addr, self.w)
        best_addr = yield from ctx.malloc(8)
        # Workers read the incumbent without the lock (a stale bound only
        # weakens pruning, per the paper); declare it so checked runs can
        # allowlist the race via CheckerConfig.known_races.
        ctx.declare_benign_race("tsp.best-bound", best_addr, 8)
        # Start from the nearest-neighbour tour, computed here like any
        # sequential branch-and-bound would.
        yield ctx.flops(self.n * self.n)
        yield from ctx.write_f64(best_addr, self.nearest_neighbour_tour())
        lock_addr = yield from ctx.malloc(1024)
        yield from ctx.lock_init(lock_addr)
        branches = self._seed_branches()
        pool_addr = yield from ctx.malloc(POOL_HEADER + ENTRY_BYTES * len(branches))
        yield ctx.ops(20 * len(branches))
        yield ctx.flops(len(branches) * (self.n - 2) ** 2)  # seeding bounds
        yield from ctx.write_array(
            pool_addr, np.array([len(branches), 0], dtype=np.int64).view(np.uint8)
        )
        yield from ctx.write_bytes(pool_addr + POOL_HEADER, b"".join(branches))
        done = yield from alloc_done_ec(ctx)
        yield from spawn_workers(
            ctx, self._worker, self.nprocs, w_addr, best_addr, lock_addr, pool_addr,
            done_ec=done,
        )
        yield from wait_done(ctx, done, self.nprocs)
        best = yield from ctx.read_f64(best_addr)
        return best

    # ------------------------------------------------------------------

    def _worker(
        self,
        ctx: IvyProcessContext,
        k: int,
        w_addr: int,
        best_addr: int,
        lock_addr: int,
        pool_addr: int,
    ) -> Generator[Any, Any, None]:
        n = self.n
        w_flat = yield from ctx.mem.fetch_array(w_addr, np.float64, n * n)
        # Nested lists, converted once: the search loop below is all
        # scalar indexing, which plain floats do ~20x faster than numpy.
        w = w_flat.reshape(n, n).tolist()
        while True:
            # --- take a batch of branches from the shared pool ----------
            yield from ctx.lock_acquire(lock_addr)
            count = yield from ctx.read_i64(pool_addr)
            if count == 0:
                yield from ctx.lock_release(lock_addr)
                return
            take = min(BATCH, count)
            raw = yield from ctx.read_bytes(
                pool_addr + POOL_HEADER + ENTRY_BYTES * (count - take),
                ENTRY_BYTES * take,
            )
            yield from ctx.write_i64(pool_addr, count - take)
            yield from ctx.lock_release(lock_addr)
            branches = [
                _unpack_entry(raw[ENTRY_BYTES * i :][: ENTRY_BYTES])
                for i in reversed(range(take))  # best bound first
            ]

            # --- sequential branch-and-bound over these subtrees --------
            best_seen = yield from ctx.read_f64(best_addr)
            stack = branches
            since_refresh = 0
            while stack:
                cost, depth, visited, path = stack.pop()
                since_refresh += 1
                if since_refresh >= BEST_REFRESH:
                    since_refresh = 0
                    best_seen = yield from ctx.read_f64(best_addr)
                if cost >= best_seen:
                    continue  # thrown away, per the paper
                last = path[depth - 1]
                wlast = w[last]
                work_ops = 0
                work_flops = 0
                for nxt in range(n):
                    if visited & (1 << nxt):
                        continue
                    step_cost = cost + wlast[nxt]
                    new_depth = depth + 1
                    if new_depth == n:
                        total = step_cost + w[nxt][0]
                        work_flops += 2
                        if total < best_seen:
                            best_seen = yield from self._offer_best(
                                ctx, lock_addr, best_addr, total
                            )
                        continue
                    tree_nodes = [0, nxt] + [
                        c for c in range(n) if not visited & (1 << c) and c != nxt
                    ]
                    work_ops += len(tree_nodes) ** 2 * PRIM_OPS
                    work_flops += len(tree_nodes) ** 2
                    bound = step_cost + mst_weight(w, tree_nodes)
                    if bound < best_seen:
                        stack.append(
                            (step_cost, new_depth, visited | (1 << nxt), path + [nxt])
                        )
                ctx.node.counters.inc("tsp_nodes_expanded")
                yield ctx.ops(work_ops)
                yield ctx.flops(work_flops)

    def _offer_best(
        self, ctx: IvyProcessContext, lock_addr: int, best_addr: int, total: float
    ) -> Generator[Any, Any, float]:
        """Install a better tour cost (mutually exclusive); returns the
        freshest incumbent."""
        yield from ctx.lock_acquire(lock_addr)
        current = yield from ctx.read_f64(best_addr)
        if total < current:
            yield from ctx.write_f64(best_addr, total)
            current = total
            ctx.node.counters.inc("tsp_incumbent_updates")
        yield from ctx.lock_release(lock_addr)
        return current

    # ------------------------------------------------------------------

    def check(self, result: float) -> None:
        expected = self.golden()
        if not np.isclose(result, expected, rtol=1e-9):
            raise AssertionError(f"tsp mismatch: {result} vs optimal {expected}")


#: cost f64 | depth i64 | visited i64, little-endian — byte-identical to
#: the numpy tobytes/frombuffer round-trip it replaces.
_ENTRY_HEAD = struct.Struct("<dqq")


def _pack_entry(cost: float, depth: int, visited: int, path: bytes) -> bytes:
    return _ENTRY_HEAD.pack(cost, depth, visited) + path.ljust(MAX_CITIES, b"\x00")


def _unpack_entry(raw: np.ndarray) -> tuple[float, int, int, list[int]]:
    cost, depth, visited = _ENTRY_HEAD.unpack_from(raw)
    path = list(bytes(raw[24 : 24 + depth]))
    return cost, depth, visited, path
