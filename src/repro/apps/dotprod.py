"""Dot product: the benchmark chosen "to show the weak side of the
shared virtual memory system; dot-product does little computation but
requires a lot of data movement."

``x`` and ``y`` start on one processor ("under the assumption that x
and y are not fully distributed before doing the computation") and, per
the paper, are stored "in a random manner": the element blocks each
worker must read are scattered across the address range rather than
laid out to match the partitioning, so every worker's read set is a
sweep of remote pages.  Each worker computes a partial sum into its own
slot; the initial process adds the slots up.

Two flops per element against a full page transfer per 128 elements —
the ring's serialised medium caps the speedup no matter how many
processors are added.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.apps.common import alloc_done_ec, partition, spawn_workers, wait_done

__all__ = ["DotProductApp"]


class DotProductApp:
    """One configured instance of S = sum(x*y)."""

    name = "dotprod"

    def __init__(self, nprocs: int, n: int = 65536, seed: int = 11) -> None:
        self.nprocs = nprocs
        self.n = n
        rng = np.random.default_rng(seed)
        self.x = rng.uniform(-1.0, 1.0, size=n)
        self.y = rng.uniform(-1.0, 1.0, size=n)
        # "Stored in a random manner": a seeded permutation of element
        # *blocks* scatters each worker's read set over the whole range.
        self.block = 512  # elements per scatter unit (4 pages of 1 KB)
        nblocks = n // self.block
        assert n % self.block == 0, "n must be a multiple of the scatter block"
        self.block_perm = rng.permutation(nblocks)

    def golden(self) -> float:
        return float(self.x @ self.y)

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, float]:
        n = self.n
        x_addr = yield from ctx.malloc(8 * n)
        y_addr = yield from ctx.malloc(8 * n)
        sums_addr = yield from ctx.malloc(8 * max(self.nprocs, 1))
        yield from ctx.write_array(x_addr, self.x)
        yield from ctx.write_array(y_addr, self.y)
        done = yield from alloc_done_ec(ctx)
        nblocks = n // self.block
        shares = partition(nblocks, self.nprocs)
        yield from spawn_workers(
            ctx, self._worker, self.nprocs, x_addr, y_addr, sums_addr, shares,
            done_ec=done,
        )
        yield from wait_done(ctx, done, self.nprocs)
        partials = yield from ctx.read_array(sums_addr, np.float64, self.nprocs)
        yield ctx.flops(self.nprocs)
        return float(np.sum(partials))

    def _worker(
        self,
        ctx: IvyProcessContext,
        k: int,
        x_addr: int,
        y_addr: int,
        sums_addr: int,
        shares: list[tuple[int, int]],
    ) -> Generator[Any, Any, None]:
        lo, hi = shares[k]
        total = 0.0
        for bi in range(lo, hi):
            blk = int(self.block_perm[bi])
            off = 8 * blk * self.block
            xs = yield from ctx.mem.fetch_array(x_addr + off, np.float64, self.block)
            ys = yield from ctx.mem.fetch_array(y_addr + off, np.float64, self.block)
            yield ctx.flops(2 * self.block)
            total += float(xs @ ys)
        yield from ctx.mem.store_array(
            sums_addr + 8 * k, np.array([total], dtype=np.float64)
        )

    # ------------------------------------------------------------------

    def check(self, result: float) -> None:
        expected = self.golden()
        if not np.isclose(result, expected, rtol=1e-9):
            raise AssertionError(f"dotprod mismatch: {result} vs {expected}")
