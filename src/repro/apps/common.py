"""Shared plumbing for the benchmark programs.

The paper's methodology, encoded once: every program "partitions its
problem by creating a certain number of processes according to the
number of processors used", spawns one worker per processor (manual
placement), synchronises with eventcounts/barriers, and reads its
results back out of the shared virtual memory before terminating.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Protocol

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.sync.barrier import BARRIER_RECORD_BYTES, Barrier
from repro.sync.eventcount import EC_RECORD_BYTES

__all__ = [
    "AppProtocol",
    "partition",
    "spawn_workers",
    "alloc_barrier",
    "alloc_done_ec",
    "wait_done",
]


class AppProtocol(Protocol):
    """What the speedup harness requires of an app instance."""

    #: Harness identifier ("jacobi", "pde3d", ...).
    name: str
    #: Number of worker processes (== processors used, per the paper).
    nprocs: int

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, Any]:
        """The complete program; returns the data ``check`` validates."""
        ...

    def check(self, result: Any) -> None:
        """Assert the parallel result matches the sequential golden."""
        ...


def partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal slices."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    bounds = np.linspace(0, n, parts + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]


def alloc_done_ec(ctx: IvyProcessContext) -> Generator[Any, Any, int]:
    """Allocate + initialise a completion eventcount."""
    ec = yield from ctx.malloc(EC_RECORD_BYTES)
    yield from ctx.ec_init(ec)
    return ec


def alloc_barrier(
    ctx: IvyProcessContext, parties: int
) -> Generator[Any, Any, Barrier]:
    """Allocate + initialise an iteration barrier."""
    addr = yield from ctx.malloc(BARRIER_RECORD_BYTES)
    barrier = ctx.barrier(addr, parties)
    yield from barrier.init(ctx)
    return barrier


def spawn_workers(
    ctx: IvyProcessContext,
    fn: Callable[..., Generator],
    nprocs: int,
    *args: Any,
    done_ec: int,
) -> Generator[Any, Any, None]:
    """One worker per processor (the paper's parameterised partitioning);
    worker ``k`` runs on processor ``k`` and gets ``(k, *args)``.

    Each worker advances ``done_ec`` when it finishes.
    """

    def wrapped(wctx: IvyProcessContext, k: int) -> Generator:
        yield from fn(wctx, k, *args)
        yield from wctx.ec_advance(done_ec)

    # Spawn workers destined for *this* processor last: with IVY's
    # non-preemptive LIFO dispatcher, a locally spawned worker would
    # otherwise seize the CPU the first time the spawner blocks on a
    # remote spawn request and delay the creation of the rest.
    order = sorted(range(nprocs), key=lambda k: (k % ctx.nnodes == ctx.node_id, k))
    for k in order:
        yield from ctx.spawn(
            wrapped, k, on=k % ctx.nnodes, name=f"{fn.__name__}-{k}"
        )


def wait_done(
    ctx: IvyProcessContext, done_ec: int, nprocs: int
) -> Generator[Any, Any, None]:
    yield from ctx.ec_wait(done_ec, nprocs)
