"""Block odd-even merge-split sort (Baudet & Stevenson's algorithm).

"At the beginning, the program divides the vector into 2N blocks for N
processors, and creates N processes, one for each processor.  Each
process sorts two blocks by using a quicksort algorithm. ... Each
process then does an odd-even block merge-split sort 2N-1 times."

The vector is 64-byte records with string keys; records are *really*
moved through the shared virtual memory, so the final order checks the
coherence of every exchange.  Comparison-heavy string keys are charged
per comparison (`KEY_COMPARE_OPS`); data movement is charged through
the ordinary copy-cost accessors — this ratio (real compute per block
vs. a block transfer per phase) is what makes the algorithm's speedup
mediocre even before communication, as Figure 6 shows.

A process owns blocks ``2k`` and ``2k+1``.  In a merge-split step for
block pair ``(j, j+1)`` the owner of the left block merges the two and
keeps the lower half in ``j``, the upper in ``j+1``.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.apps.common import alloc_barrier, alloc_done_ec, spawn_workers, wait_done

__all__ = ["MergeSplitSortApp", "RECORD_BYTES"]

RECORD_BYTES = 64
#: Simple ops per string-key comparison plus the per-record bookkeeping
#: of a merge step.  The records "contain random strings"; a byte-wise
#: compare of long string keys plus record shuffling on a 68000-class CPU
#: runs several hundred instructions.  Calibrated so the compute:move
#: ratio lands in the regime of the paper's Figure 6 (see EXPERIMENTS.md).
KEY_COMPARE_OPS = 600

_dtype = np.dtype([("key", "<u8"), ("pad", f"V{RECORD_BYTES - 8}")])


class MergeSplitSortApp:
    """One configured instance of the merge-split sort."""

    name = "sort"

    def __init__(self, nprocs: int, nrecords: int = 4096, seed: int = 3) -> None:
        if nrecords % (2 * nprocs):
            nrecords += 2 * nprocs - nrecords % (2 * nprocs)
        self.nprocs = nprocs
        self.nrecords = nrecords
        rng = np.random.default_rng(seed)
        self.records = np.zeros(nrecords, dtype=_dtype)
        self.records["key"] = rng.integers(0, 2**63, size=nrecords, dtype=np.uint64)
        payload = rng.integers(0, 256, size=(nrecords, RECORD_BYTES - 8), dtype=np.uint8)
        self.records["pad"] = np.ascontiguousarray(payload).view(f"V{RECORD_BYTES - 8}").reshape(-1)

    def golden_keys(self) -> np.ndarray:
        return np.sort(self.records["key"])

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, np.ndarray]:
        nrec = self.nrecords
        vec_addr = yield from ctx.malloc(RECORD_BYTES * nrec)
        yield from ctx.write_array(vec_addr, self.records.view(np.uint8))
        barrier = yield from alloc_barrier(ctx, self.nprocs)
        done = yield from alloc_done_ec(ctx)
        yield from spawn_workers(
            ctx, self._worker, self.nprocs, vec_addr, barrier, done_ec=done
        )
        yield from wait_done(ctx, done, self.nprocs)
        raw = yield from ctx.read_array(vec_addr, np.uint8, RECORD_BYTES * nrec)
        return raw.view(_dtype)

    def _read_block(
        self, ctx, vec_addr: int, blk: int, count: int = 1
    ) -> Generator[Any, Any, np.ndarray]:
        per = self.nrecords // (2 * self.nprocs)
        addr = vec_addr + RECORD_BYTES * per * blk
        raw = yield from ctx.read_bytes(addr, RECORD_BYTES * per * count)
        return raw.view(_dtype)

    def _write_block(self, ctx, vec_addr: int, blk: int, recs: np.ndarray) -> Generator:
        per = self.nrecords // (2 * self.nprocs)
        addr = vec_addr + RECORD_BYTES * per * blk
        yield from ctx.write_bytes(addr, recs.view(np.uint8))

    def _worker(
        self, ctx: IvyProcessContext, k: int, vec_addr: int, barrier
    ) -> Generator[Any, Any, None]:
        nblocks = 2 * self.nprocs
        per = self.nrecords // nblocks
        # Internal sort: quicksort the process's two blocks *as one
        # range* ("each process sorts two blocks"), which is what makes
        # 2N-1 merge phases sufficient — it already is an even phase, so
        # the merge phases below start odd.
        both = yield from self._read_block(ctx, vec_addr, 2 * k, count=2)
        comparisons = int(2 * per * max(np.log2(max(2 * per, 2)), 1.0))
        yield ctx.ops(comparisons * KEY_COMPARE_OPS)
        order = np.argsort(both["key"], kind="stable")
        yield from self._write_block(ctx, vec_addr, 2 * k, both[order])
        yield from barrier.arrive(ctx)
        # 2N-1 odd-even merge-split phases, starting with an odd phase.
        for phase in range(nblocks - 1):
            start = (phase + 1) % 2  # odd first: pairs (1,2),(3,4),...
            for left in (2 * k, 2 * k + 1):
                if (left - start) % 2 == 0 and left + 1 < nblocks and left >= start:
                    lo_block = yield from self._read_block(ctx, vec_addr, left)
                    hi_block = yield from self._read_block(ctx, vec_addr, left + 1)
                    merged = np.concatenate([lo_block, hi_block])
                    yield ctx.ops(2 * per * KEY_COMPARE_OPS)  # one merge pass
                    order = np.argsort(merged["key"], kind="stable")
                    merged = merged[order]
                    yield from self._write_block(ctx, vec_addr, left, merged[:per])
                    yield from self._write_block(ctx, vec_addr, left + 1, merged[per:])
            yield from barrier.arrive(ctx)

    # ------------------------------------------------------------------

    def check(self, result: np.ndarray) -> None:
        keys = result["key"]
        if not np.array_equal(np.sort(keys), self.golden_keys()):
            raise AssertionError("sort lost or duplicated records")
        if not np.all(keys[:-1] <= keys[1:]):
            bad = int(np.argmax(keys[:-1] > keys[1:]))
            raise AssertionError(f"sort order violated at record {bad}")
