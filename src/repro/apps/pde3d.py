"""3-D PDE solver: parallel Jacobi on a 7-point stencil.

The paper's memory-capacity workload (Figure 4 and Table 1).  The
coefficient matrix is sparse and never updated, so — "to be more
realistic" — it is *coded into the program* (the stencil below) rather
than stored; only the solution vectors ``u``/``u_new`` and the
right-hand side ``b`` live in the shared virtual memory.

Two properties drive the famous results:

- ``b`` is initialised **on one processor only** ("the program
  initializes its data structures only on one processor"), so on p >= 2
  that node starts out over-committed and sheds pages as the other
  workers pull their slabs — Table 1's decaying disk-transfer series;
- the total data set can exceed one node's physical memory while
  fitting in the cluster's combined memory — Figure 4's super-linear
  speedup.

Partitioning is by contiguous z-slabs with one ghost plane exchanged at
each end per iteration; iterations are separated by a single eventcount
barrier with the two solution buffers swapping roles (read from one,
write the other).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.apps.common import (
    alloc_barrier,
    alloc_done_ec,
    partition,
    spawn_workers,
    wait_done,
)
from repro.metrics.collect import EpochLog

__all__ = ["Pde3dApp"]

#: Flops per grid point per iteration: 5 adds + 1 multiply (+ index math).
FLOPS_PER_POINT = 8


def stencil_sweep(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One Jacobi sweep of ``(b + sum of 6 neighbours) / 6`` with zero
    (Dirichlet) boundaries.  ``u``/``b`` are (z, y, x) grids."""
    out = np.zeros_like(u)
    acc = b.copy()
    acc[1:, :, :] += u[:-1, :, :]
    acc[:-1, :, :] += u[1:, :, :]
    acc[:, 1:, :] += u[:, :-1, :]
    acc[:, :-1, :] += u[:, 1:, :]
    acc[:, :, 1:] += u[:, :, :-1]
    acc[:, :, :-1] += u[:, :, 1:]
    out[:, :, :] = acc / 6.0
    return out


class Pde3dApp:
    """One configured instance of the 3-D PDE solver."""

    name = "pde3d"

    def __init__(
        self,
        nprocs: int,
        m: int = 16,
        iters: int = 4,
        seed: int = 7,
        epoch_log: EpochLog | None = None,
    ) -> None:
        self.nprocs = nprocs
        self.m = m
        self.iters = iters
        rng = np.random.default_rng(seed)
        self.b = rng.uniform(-1.0, 1.0, size=(m, m, m))
        #: Optional Table 1 instrumentation: one epoch per iteration,
        #: closed at the exact barrier-release instant (see _on_release).
        self.epoch_log = epoch_log
        self._round = 0

    # ------------------------------------------------------------------

    def golden(self) -> np.ndarray:
        u = np.zeros_like(self.b)
        for _ in range(self.iters):
            u = stencil_sweep(u, self.b)
        return u

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, np.ndarray]:
        m = self.m
        plane = m * m  # one z-plane, in elements
        grid_bytes = 8 * m * plane
        b_addr = yield from ctx.malloc(grid_bytes)
        u_addrs = []
        for _ in range(2):  # double buffer; roles swap each iteration
            addr = yield from ctx.malloc(grid_bytes)
            u_addrs.append(addr)
        # The whole right-hand side is initialised here, on this one
        # processor — the paper's setup, and the source of Table 1.
        yield from ctx.write_array(b_addr, self.b.reshape(-1))
        yield from ctx.write_array(u_addrs[0], np.zeros(m * plane))
        barrier = yield from alloc_barrier(ctx, self.nprocs)
        done = yield from alloc_done_ec(ctx)
        slabs = partition(m, self.nprocs)
        yield from spawn_workers(
            ctx, self._worker, self.nprocs,
            b_addr, tuple(u_addrs), slabs, barrier,
            done_ec=done,
        )
        yield from wait_done(ctx, done, self.nprocs)
        final = u_addrs[self.iters % 2]
        u = yield from ctx.read_array(final, np.float64, m * plane)
        return u.reshape(m, m, m)

    def _worker(
        self,
        ctx: IvyProcessContext,
        k: int,
        b_addr: int,
        u_addrs: tuple[int, int],
        slabs: list[tuple[int, int]],
        barrier,
    ) -> Generator[Any, Any, None]:
        m = self.m
        plane = m * m
        lo, hi = slabs[k]
        depth = hi - lo
        if depth == 0:
            for _ in range(self.iters):
                yield from barrier.arrive(ctx, on_release=self._on_release)
            return
        for it in range(self.iters):
            src = u_addrs[it % 2]
            dst = u_addrs[(it + 1) % 2]
            # The program dereferences b afresh every sweep — it lives in
            # shared memory, not in a private copy (this is what keeps the
            # full data set in play for the capacity experiments).
            raw = yield from ctx.mem.fetch_array(
                b_addr + 8 * lo * plane, np.float64, depth * plane
            )
            b_slab = raw.reshape(depth, m, m)
            # Fetch our slab plus ghost planes from the neighbours.
            glo = max(lo - 1, 0)
            ghi = min(hi + 1, m)
            raw = yield from ctx.mem.fetch_array(
                src + 8 * glo * plane, np.float64, (ghi - glo) * plane
            )
            u = raw.reshape(ghi - glo, m, m)
            yield ctx.flops(depth * plane * FLOPS_PER_POINT)
            # Compute on the padded block, keep only our interior rows.
            padded_b = np.zeros_like(u)
            padded_b[lo - glo : lo - glo + depth] = b_slab
            swept = stencil_sweep(u, padded_b)
            u_new = swept[lo - glo : lo - glo + depth]
            yield from ctx.mem.store_array(dst + 8 * lo * plane, u_new)
            yield from barrier.arrive(ctx, on_release=self._on_release)

    def _on_release(self) -> None:
        """Invoked by the round's releasing worker at barrier-open time."""
        self._round += 1
        if self.epoch_log is not None:
            self.epoch_log.mark(f"iteration {self._round}")

    # ------------------------------------------------------------------

    def check(self, result: np.ndarray) -> None:
        expected = self.golden()
        if not np.allclose(result, expected, rtol=1e-10, atol=1e-12):
            worst = np.max(np.abs(result - expected))
            raise AssertionError(f"pde3d mismatch, max abs err {worst:g}")
