"""Matrix multiply written against the message-passing baseline.

The same computation as `repro.apps.matmul`, programmed the way the
paper's introduction describes message-passing systems: a master
explicitly marshals and ships ``A`` plus a column block of ``B`` to each
worker, and each worker ships its ``C`` block back.  Nothing is shared;
all data movement is explicit `repro.msgpass` traffic.

Two things this program demonstrates next to its SVM twin:

- even for *flat bulk arrays*, where marshalling is only a copy and the
  paper's complex-structure argument does not apply, the natural
  master/worker program loses ground: the master re-marshals ``A`` once
  per worker and its sends serialise, where the SVM's demand paging
  lets every worker pull concurrently;
- the programming-model cost is visible in the code: the master must
  know exactly which bytes every worker needs and collect results
  explicitly, where the SVM version just shares addresses.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.api.ivy import Ivy, IvyProcessContext
from repro.apps.common import partition
from repro.msgpass.channel import MessagePassing

__all__ = ["MpMatmulApp"]

#: Master's result mailbox.
RESULT_PORT = 100
#: Worker k's work mailbox.
WORK_PORT = 200


class MpMatmulApp:
    """C = A @ B via explicit message passing (master/worker)."""

    name = "mp_matmul"

    def __init__(self, nprocs: int, n: int = 128, seed: int = 5) -> None:
        self.nprocs = nprocs
        self.n = n
        rng = np.random.default_rng(seed)
        self.A = rng.uniform(-1.0, 1.0, size=(n, n))
        self.B = rng.uniform(-1.0, 1.0, size=(n, n))
        #: Bound by the harness before main() runs (needs the Ivy system).
        self.mp: MessagePassing | None = None

    def bind(self, ivy: Ivy) -> "MpMatmulApp":
        self.mp = MessagePassing(ivy)
        return self

    def golden(self) -> np.ndarray:
        return self.A @ self.B

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, np.ndarray]:
        assert self.mp is not None, "call bind(ivy) before running"
        n = self.n
        cols = partition(n, self.nprocs)
        for k in range(self.nprocs):
            yield from ctx.spawn(self._worker, k, on=k % ctx.nnodes)
        # Ship A and the k-th column block of B to each worker, explicitly.
        for k, (lo, hi) in enumerate(cols):
            payload = {
                "A": self.A,
                "B_block": np.ascontiguousarray(self.B[:, lo:hi]),
                "cols": (lo, hi),
            }
            nbytes = 8 * (n * n + n * (hi - lo)) + 16
            yield from self.mp.send(ctx, k % ctx.nnodes, WORK_PORT + k, payload, nbytes)
        # Collect the C blocks.
        c = np.zeros((n, n))
        for _ in range(self.nprocs):
            result = yield from self.mp.receive(ctx, RESULT_PORT)
            lo, hi = result["cols"]
            c[:, lo:hi] = result["C_block"]
        return c

    def _worker(self, ctx: IvyProcessContext, k: int) -> Generator[Any, Any, None]:
        work = yield from self.mp.receive(ctx, WORK_PORT + k)
        a = work["A"]
        b_block = work["B_block"]
        lo, hi = work["cols"]
        n = self.n
        if hi > lo:
            yield ctx.flops(2 * n * n * (hi - lo))
        c_block = a @ b_block
        yield from self.mp.send(
            ctx, 0, RESULT_PORT,
            {"C_block": c_block, "cols": (lo, hi)},
            nbytes=8 * n * (hi - lo) + 16,
        )

    # ------------------------------------------------------------------

    def check(self, result: np.ndarray) -> None:
        expected = self.golden()
        if not np.allclose(result, expected, rtol=1e-10, atol=1e-10):
            raise AssertionError("mp_matmul mismatch")


def run_mp_matmul(nprocs: int, n: int = 128, seed: int = 5):
    """Convenience: build, bind and run on a fresh cluster; returns
    (app, ivy) after checking the result."""
    from repro.config import ClusterConfig

    ivy = Ivy(ClusterConfig(nodes=nprocs))
    app = MpMatmulApp(nprocs, n=n, seed=seed).bind(ivy)
    result = ivy.run(app.main)
    app.check(result)
    return app, ivy
