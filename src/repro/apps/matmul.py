"""Matrix multiply: ``C = A B``, partitioned by columns of ``B``.

"A number of processes are created to partition the problem by the
number of columns of matrix B.  All the matrices are stored in the
shared virtual memory.  The program assumes that matrix A and B are on
one processor at the beginning and they will be paged to other
processors on demand."

To make a column block a contiguous page range (so the paper's
partitioning maps onto pages instead of striding through every row's
page), ``B`` and ``C`` are stored column-major — i.e. ``B.T``/``C.T``
row-major — a storage choice, not an algorithm change.  ``A`` is
read-shared by everyone: each worker pulls a read copy once (n^2 data
against n^3 compute, so the pull amortises).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.apps.common import alloc_done_ec, partition, spawn_workers, wait_done

__all__ = ["MatmulApp"]


class MatmulApp:
    """One configured instance of C = A @ B."""

    name = "matmul"

    def __init__(self, nprocs: int, n: int = 128, seed: int = 5) -> None:
        self.nprocs = nprocs
        self.n = n
        rng = np.random.default_rng(seed)
        self.A = rng.uniform(-1.0, 1.0, size=(n, n))
        self.B = rng.uniform(-1.0, 1.0, size=(n, n))

    def golden(self) -> np.ndarray:
        return self.A @ self.B

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, np.ndarray]:
        n = self.n
        a_addr = yield from ctx.malloc(8 * n * n)
        b_addr = yield from ctx.malloc(8 * n * n)
        c_addr = yield from ctx.malloc(8 * n * n)
        # A and B start on this one processor, per the paper.
        yield from ctx.write_array(a_addr, self.A)
        yield from ctx.write_array(b_addr, np.ascontiguousarray(self.B.T))
        done = yield from alloc_done_ec(ctx)
        cols = partition(n, self.nprocs)
        yield from spawn_workers(
            ctx, self._worker, self.nprocs, a_addr, b_addr, c_addr, cols,
            done_ec=done,
        )
        yield from wait_done(ctx, done, self.nprocs)
        c_t = yield from ctx.read_array(c_addr, np.float64, n * n)
        return np.ascontiguousarray(c_t.reshape(n, n).T)

    def _worker(
        self,
        ctx: IvyProcessContext,
        k: int,
        a_addr: int,
        b_addr: int,
        c_addr: int,
        cols: list[tuple[int, int]],
    ) -> Generator[Any, Any, None]:
        n = self.n
        lo, hi = cols[k]
        width = hi - lo
        if width == 0:
            return
            yield  # pragma: no cover
        # Page A in (read copies), then our column block of B.
        a_flat = yield from ctx.mem.fetch_array(a_addr, np.float64, n * n)
        a = a_flat.reshape(n, n)
        bt_block = yield from ctx.mem.fetch_array(
            b_addr + 8 * lo * n, np.float64, width * n
        )
        b_block = bt_block.reshape(width, n).T  # (n, width), column block
        yield ctx.flops(2 * n * n * width)
        c_block = a @ b_block  # (n, width)
        yield from ctx.mem.store_array(
            c_addr + 8 * lo * n, np.ascontiguousarray(c_block.T)
        )

    # ------------------------------------------------------------------

    def check(self, result: np.ndarray) -> None:
        expected = self.golden()
        if not np.allclose(result, expected, rtol=1e-10, atol=1e-10):
            worst = np.max(np.abs(result - expected))
            raise AssertionError(f"matmul mismatch, max abs err {worst:g}")
