"""The benchmark suite: the paper's six parallel programs.

Each app module provides a class with the uniform harness protocol
(`repro.apps.common.AppProtocol`): a seeded workload builder, a ``main``
generator that is the complete IVY program (allocate shared structures,
spawn one worker per processor, synchronise, read back results), and a
``check`` that validates the parallel result against a sequential
golden computation — the data plane is real, so coherence bugs fail
these checks.

All six were chosen by the paper for "reasonably fine granularity of
parallelism" and "side-effects in shared data structures":

- `repro.apps.jacobi`  — parallel Jacobi linear equation solver
- `repro.apps.pde3d`   — 3-D PDE solver (sparse Jacobi, matrix coded in
  the program); the Figure 4 / Table 1 workload
- `repro.apps.tsp`     — traveling salesman, branch-and-bound with
  1-tree lower bounds over a shared work pool
- `repro.apps.matmul`  — matrix multiply partitioned by columns of B
- `repro.apps.dotprod` — dot product (the deliberately weak case: lots
  of data movement, almost no computation)
- `repro.apps.sort`    — block odd-even merge-split sort
"""

from repro.apps.jacobi import JacobiApp

ALL_APPS = {JacobiApp.name: JacobiApp}

__all__ = ["JacobiApp", "ALL_APPS"]

# The remaining apps register themselves here as they are imported; the
# exps modules import them explicitly.  (Populated fully below once all
# modules exist.)
try:  # pragma: no cover - import-time wiring
    from repro.apps.pde3d import Pde3dApp
    from repro.apps.matmul import MatmulApp
    from repro.apps.dotprod import DotProductApp
    from repro.apps.sort import MergeSplitSortApp
    from repro.apps.tsp import TspApp

    for _app in (Pde3dApp, TspApp, MatmulApp, DotProductApp, MergeSplitSortApp):
        ALL_APPS[_app.name] = _app
    __all__ += ["Pde3dApp", "TspApp", "MatmulApp", "DotProductApp", "MergeSplitSortApp"]
except ModuleNotFoundError:  # during incremental bring-up
    pass
