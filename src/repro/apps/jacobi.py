"""Parallel Jacobi linear equation solver (the paper's first benchmark).

Solves ``Ax = b`` for a dense, diagonally dominant ``n x n`` system by
Jacobi iteration.  The parallel transformation is the paper's: the rows
of ``A`` are partitioned over one process per processor, all processes
are synchronised at each iteration with an eventcount barrier, and
``A``, ``x``, ``b`` live in the shared virtual memory, accessed "freely
without regard to their location".

Sharing pattern (what makes this a good SVM citizen): each worker's
slice of ``A`` is written once during initialisation and then read-only
— the pages migrate as read copies on the first iteration and stay
local; only the solution vector ``x`` bounces, and it is tiny compared
to the computation per iteration.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.api.ivy import IvyProcessContext
from repro.apps.common import (
    alloc_barrier,
    alloc_done_ec,
    partition,
    spawn_workers,
    wait_done,
)

__all__ = ["JacobiApp"]


class JacobiApp:
    """One configured instance of the linear equation solver."""

    name = "jacobi"

    def __init__(self, nprocs: int, n: int = 160, iters: int = 4, seed: int = 42) -> None:
        self.nprocs = nprocs
        self.n = n
        self.iters = iters
        rng = np.random.default_rng(seed)
        self.A = rng.uniform(-1.0, 1.0, size=(n, n))
        # Diagonal dominance guarantees Jacobi converges.
        self.A[np.arange(n), np.arange(n)] = n + rng.uniform(1.0, 2.0, size=n)
        self.b = rng.uniform(-1.0, 1.0, size=n)

    # ------------------------------------------------------------------

    def golden(self) -> np.ndarray:
        """Sequential Jacobi, same arithmetic, same iteration count."""
        diag = np.diag(self.A).copy()
        x = np.zeros(self.n)
        for _ in range(self.iters):
            x = (self.b - (self.A @ x - diag * x)) / diag
        return x

    def flops_per_row_iter(self) -> int:
        return 2 * self.n + 3

    # ------------------------------------------------------------------

    def main(self, ctx: IvyProcessContext) -> Generator[Any, Any, np.ndarray]:
        n = self.n
        a_addr = yield from ctx.malloc(8 * n * n)
        b_addr = yield from ctx.malloc(8 * n)
        x_addr = yield from ctx.malloc(8 * n)
        xn_addr = yield from ctx.malloc(8 * n)
        # b and x are initialised here; each worker initialises its own
        # slice of A in parallel (the natural way to set up a Jacobi
        # system, and it keeps first-touch ownership with the worker
        # that will read those rows for the rest of the run).
        yield from ctx.write_array(b_addr, self.b)
        yield from ctx.write_array(x_addr, np.zeros(n))
        barrier = yield from alloc_barrier(ctx, self.nprocs)
        done = yield from alloc_done_ec(ctx)
        slices = partition(n, self.nprocs)
        yield from spawn_workers(
            ctx, self._worker, self.nprocs,
            a_addr, b_addr, x_addr, xn_addr, slices, barrier,
            done_ec=done,
        )
        yield from wait_done(ctx, done, self.nprocs)
        x = yield from ctx.read_array(x_addr, np.float64, n)
        return x

    def _worker(
        self,
        ctx: IvyProcessContext,
        k: int,
        a_addr: int,
        b_addr: int,
        x_addr: int,
        xn_addr: int,
        slices: list[tuple[int, int]],
        barrier,
    ) -> Generator[Any, Any, None]:
        n = self.n
        lo, hi = slices[k]
        rows = hi - lo
        if rows == 0:
            yield from barrier.arrive(ctx)
            for _ in range(self.iters):
                yield from barrier.arrive(ctx)
                yield from barrier.arrive(ctx)
            return
        # Per-worker slice of A: read once, then resident read-only.
        yield from ctx.mem.store_array(a_addr + 8 * lo * n, self.A[lo:hi])
        yield from barrier.arrive(ctx)
        for _ in range(self.iters):
            my_b = yield from ctx.mem.fetch_array(b_addr + 8 * lo, np.float64, rows)
            a_block = yield from ctx.mem.fetch_array(
                a_addr + 8 * lo * n, np.float64, rows * n
            )
            a_block = a_block.reshape(rows, n)
            diag = a_block[np.arange(rows), np.arange(lo, hi)]
            x = yield from ctx.mem.fetch_array(x_addr, np.float64, n)
            yield ctx.flops(rows * self.flops_per_row_iter())
            x_new = (my_b - (a_block @ x - diag * x[lo:hi])) / diag
            yield from ctx.mem.store_array(xn_addr + 8 * lo, x_new)
            yield from barrier.arrive(ctx)
            # Publish this block into x for the next iteration.
            yield from ctx.mem.store_array(x_addr + 8 * lo, x_new)
            yield from barrier.arrive(ctx)

    # ------------------------------------------------------------------

    def check(self, result: np.ndarray) -> None:
        expected = self.golden()
        if not np.allclose(result, expected, rtol=1e-10, atol=1e-12):
            worst = np.max(np.abs(result - expected))
            raise AssertionError(f"jacobi mismatch, max abs err {worst:g}")
