"""Vector-clock happens-before race detection for IVY programs.

Sequential consistency (the paper's "the value returned by a read ...
is the value written by the latest write") makes shared memory *look*
like one memory, but it does not order application accesses: two
processes touching the same word without synchronisation are still a
data race, and their outcome depends on fault-arrival interleavings.
:class:`RaceDetector` finds such accesses the way TSan/FastTrack do,
adapted to IVY's primitives:

happens-before edges
    - ``atomic_update`` sections on the same record address form a
      release/acquire chain.  The edge is taken *inside* the wrapped
      mutator, while the page's table-entry lock is held, so the
      detector's order is exactly the cluster-wide execution order —
      hooking at call time instead would reorder edges across the
      fault-handling yields and fabricate races.
    - Remote notification: ``resume``/``resume_async`` publishes the
      waker's clock; the parked process joins it when ``park`` returns.
      This covers lock hand-off, eventcount wake-ups and barriers.
    - ``spawn``: the child starts with the parent's clock.  The clock is
      carried inside the spawn payload because a remotely spawned child
      can start running before the spawn reply reaches the parent.

shadow memory
    Aligned 8-byte words (every IVY synchronisation field and both
    benchmark element types are int64/float64).  Per word: the last
    write epoch and the read epochs since that write, FastTrack-style.
    Words covered by an ``atomic_update`` are classified as
    synchronisation state and exempt from data-race checking (e.g.
    ``Read(ec)`` intentionally reads the count without the record lock).

Races are *recorded*, not raised — a racy program is a finding, not a
checker failure.  Each :class:`RaceReport` carries both access epochs
and the most recent synchronisation operations for diagnosis; every
report also bumps the ``violation.race`` counter on the node that
performed the later access.

Known-benign races can be allowlisted: an application declares a
race-by-design region with :meth:`RaceDetector.declare_benign_race`
(via ``IvyProcessContext``), and the run's configuration lists the
labels it accepts in ``CheckerConfig.known_races``.  Suppression needs
*both* halves — the declaration locates the words, the config
authorises the label — so a program cannot silence its own findings.
Suppressed reports land on :attr:`RaceDetector.suppressed` and the
``race.suppressed`` counter (outside the violation namespace) instead
of vanishing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from repro.proc.pcb import Pid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.cluster import Cluster
    from repro.svm.address_space import SharedAddressSpace

__all__ = ["RaceDetector", "RaceReport", "TrackedMemory"]

#: Shadow-memory granularity: aligned 8-byte words.
WORD = 8

#: How many recent synchronisation operations a report carries.
SYNC_LOG_WINDOW = 16

VectorClock = dict[Pid, int]


@dataclass
class RaceReport:
    """One unsynchronised pair of accesses to the same shared word."""

    kind: str  # "write-write" | "read-write" | "write-read"
    addr: int  # word-aligned shared virtual address
    time: int  # simulated time of the later access
    accessor: Pid  # the process making the later access
    other: Pid  # the process whose earlier access it races with
    other_epoch: int  # the earlier access's clock component
    sync_log: list[tuple[int, str, int, Pid]] = field(default_factory=list)

    def format(self) -> str:
        head = (
            f"[race:{self.kind}] word {self.addr:#x}: {self.accessor} at "
            f"t={self.time} races with {self.other}@{self.other_epoch}"
        )
        lines = [head]
        if self.sync_log:
            lines.append("  recent synchronisation operations:")
            for time, op, addr, pid in self.sync_log:
                lines.append(f"    t={time} {op} addr={addr:#x} by {pid}")
        return "\n".join(lines)


class RaceDetector:
    """Cluster-wide happens-before tracker (one per checker-enabled run)."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        #: Labels the configuration accepts as benign (CheckerConfig).
        #: A bare-bool checker (and the unit-test stub clusters, which
        #: carry no config at all) allowlists nothing.
        checker = getattr(getattr(cluster, "config", None), "checker", True)
        self.known_races: frozenset[str] = frozenset(
            getattr(checker, "known_races", ())
        )
        #: label -> declared word-aligned regions (start, end-exclusive).
        self._benign_regions: dict[str, list[tuple[int, int]]] = {}
        self.clocks: dict[Pid, VectorClock] = {}
        #: Last released clock per atomic_update record address.
        self.sync_clocks: dict[int, VectorClock] = {}
        #: Clocks published by resume() and waiting for the target's park
        #: to return.
        self.pending_wakes: dict[Pid, list[VectorClock]] = {}
        #: word -> (writer, writer-epoch) of the last write.
        self.write_shadow: dict[int, tuple[Pid, int]] = {}
        #: word -> reader epochs since the last write.
        self.read_shadow: dict[int, dict[Pid, int]] = {}
        #: Words inside atomic_update records (synchronisation state).
        self.sync_words: set[int] = set()
        self.races: list[RaceReport] = []
        #: Reports matching a declared + allowlisted benign region:
        #: suppressed from ``races`` but kept for inspection.
        self.suppressed: list[RaceReport] = []
        self._reported: set[tuple[str, int, Pid, Pid]] = set()
        self.sync_log: deque[tuple[int, str, int, Pid]] = deque(
            maxlen=SYNC_LOG_WINDOW
        )

    # ------------------------------------------------------------------
    # vector-clock plumbing

    def clock(self, pid: Pid) -> VectorClock:
        vc = self.clocks.get(pid)
        if vc is None:
            vc = {pid: 1}
            self.clocks[pid] = vc
        return vc

    def capture(self, pid: Pid) -> VectorClock:
        """A snapshot of ``pid``'s clock (for spawn payloads)."""
        return dict(self.clock(pid))

    def _tick(self, pid: Pid) -> None:
        vc = self.clock(pid)
        vc[pid] = vc.get(pid, 0) + 1

    @staticmethod
    def _join(into: VectorClock, other: VectorClock) -> None:
        for pid, component in other.items():
            if component > into.get(pid, 0):
                into[pid] = component

    # ------------------------------------------------------------------
    # happens-before edges

    def fork(self, parent: Pid) -> VectorClock:
        """Snapshot the parent's clock for a spawn and advance the parent
        (later parent accesses are concurrent with the child)."""
        snapshot = self.capture(parent)
        self._tick(parent)
        return snapshot

    def on_spawn(self, child: Pid, parent_clock: VectorClock) -> None:
        """The child inherits everything that happened before the spawn."""
        vc = dict(parent_clock)
        vc[child] = vc.get(child, 0) + 1
        self.clocks[child] = vc

    def on_acquire(self, pid: Pid, addr: int) -> None:
        """Entering an atomic section: join the last releaser's clock."""
        published = self.sync_clocks.get(addr)
        if published is not None:
            self._join(self.clock(pid), published)

    def on_release(self, pid: Pid, addr: int) -> None:
        """Leaving an atomic section: publish our clock on the record."""
        self.sync_clocks[addr] = self.capture(pid)
        self._tick(pid)

    def on_resume(self, src: Pid, dst: Pid) -> None:
        """A wake-up notification carries the waker's clock to ``dst``."""
        self.pending_wakes.setdefault(dst, []).append(self.capture(src))
        self._tick(src)

    def on_wake(self, pid: Pid) -> None:
        """``park`` returned: join every clock published at this process."""
        for published in self.pending_wakes.pop(pid, ()):
            self._join(self.clock(pid), published)

    def note_sync_op(self, op: str, addr: int, pid: Pid) -> None:
        """Record a synchronisation call for race-report context."""
        self.sync_log.append((self.cluster.sim.now, op, addr, pid))

    def declare_benign_race(self, label: str, addr: int, nbytes: int) -> None:
        """Declare ``[addr, addr+nbytes)`` as racy by design under
        ``label``.  The declaration alone changes nothing: reports on
        these words are suppressed only when the run's
        ``CheckerConfig.known_races`` also lists the label."""
        start = addr & ~(WORD - 1)
        self._benign_regions.setdefault(label, []).append((start, addr + nbytes))

    def _benign_label(self, word: int) -> str | None:
        """The allowlisted label covering ``word``, if any."""
        for label in self.known_races:
            for start, end in self._benign_regions.get(label, ()):
                if start <= word < end:
                    return label
        return None

    def register_sync_range(self, addr: int, nbytes: int) -> None:
        """Classify an atomic_update record's words as synchronisation
        state: they are ordered by the record's own release/acquire chain
        and exempt from data-race checking."""
        start = addr & ~(WORD - 1)
        for word in range(start, addr + nbytes, WORD):
            if word not in self.sync_words:
                self.sync_words.add(word)
                self.write_shadow.pop(word, None)
                self.read_shadow.pop(word, None)

    # ------------------------------------------------------------------
    # data accesses

    def on_access(
        self, pid: Pid, addr: int, nbytes: int, *, write: bool, node_id: int
    ) -> None:
        """Check one application access against the shadow memory."""
        if nbytes <= 0:
            return
        vc = self.clock(pid)
        own = vc[pid]
        write_shadow = self.write_shadow
        read_shadow = self.read_shadow
        sync_words = self.sync_words
        for word in range((addr & ~(WORD - 1)), addr + nbytes, WORD):
            if word in sync_words:
                continue
            last = write_shadow.get(word)
            if last is not None:
                wpid, wepoch = last
                if wpid != pid and wepoch > vc.get(wpid, 0):
                    kind = "write-write" if write else "write-read"
                    self._report(kind, word, pid, wpid, wepoch, node_id)
            if write:
                readers = read_shadow.pop(word, None)
                if readers:
                    for rpid, repoch in readers.items():
                        if rpid != pid and repoch > vc.get(rpid, 0):
                            self._report(
                                "read-write", word, pid, rpid, repoch, node_id
                            )
                write_shadow[word] = (pid, own)
            else:
                readers = read_shadow.get(word)
                if readers is None:
                    read_shadow[word] = {pid: own}
                else:
                    readers[pid] = own

    def _report(
        self, kind: str, word: int, accessor: Pid, other: Pid,
        other_epoch: int, node_id: int,
    ) -> None:
        key = (kind, word, accessor, other)
        if key in self._reported:
            return
        self._reported.add(key)
        report = RaceReport(
            kind=kind,
            addr=word,
            time=self.cluster.sim.now,
            accessor=accessor,
            other=other,
            other_epoch=other_epoch,
            sync_log=list(self.sync_log),
        )
        if self._benign_label(word) is not None:
            # Declared and allowlisted: count it, keep it inspectable,
            # but out of the violation namespace.
            self.suppressed.append(report)
            self.cluster.nodes[node_id].counters.inc("race.suppressed")
            return
        self.races.append(report)
        self.cluster.nodes[node_id].counters.inc("violation.race")


class TrackedMemory:
    """A :class:`~repro.svm.address_space.SharedAddressSpace` proxy that
    reports application accesses to the race detector.

    One proxy exists per (process, node) pair —
    :attr:`repro.api.ivy.IvyProcessContext.mem` hands it out in place of
    the raw address space, so applications and synchronisation
    primitives are instrumented without changing a line of their code.
    Accesses are recorded when the accessor generator is *created*,
    which the caller immediately drives; the recording therefore falls
    between the same synchronisation operations as the access itself.
    """

    def __init__(
        self,
        inner: "SharedAddressSpace",
        detector: RaceDetector,
        pid: Pid,
        node_id: int,
    ) -> None:
        self._inner = inner
        self._detector = detector
        self._pid = pid
        self._node_id = node_id

    def __getattr__(self, name: str) -> Any:
        # layout, counters, protocol, ... — anything not instrumented.
        return getattr(self._inner, name)

    # -- reads ----------------------------------------------------------

    def _track(self, addr: int, nbytes: int, write: bool) -> None:
        self._detector.on_access(
            self._pid, addr, nbytes, write=write, node_id=self._node_id
        )

    def read_bytes(self, addr: int, nbytes: int) -> Generator[Any, Any, Any]:
        self._track(addr, nbytes, False)
        return self._inner.read_bytes(addr, nbytes)

    def read_array(self, addr: int, dtype: Any, count: int) -> Generator[Any, Any, Any]:
        self._track(addr, np.dtype(dtype).itemsize * count, False)
        return self._inner.read_array(addr, dtype, count)

    def fetch_array(self, addr: int, dtype: Any, count: int) -> Generator[Any, Any, Any]:
        self._track(addr, np.dtype(dtype).itemsize * count, False)
        return self._inner.fetch_array(addr, dtype, count)

    def read_f64(self, addr: int) -> Generator[Any, Any, Any]:
        self._track(addr, 8, False)
        return self._inner.read_f64(addr)

    def read_i64(self, addr: int) -> Generator[Any, Any, Any]:
        self._track(addr, 8, False)
        return self._inner.read_i64(addr)

    # -- writes ---------------------------------------------------------

    def write_bytes(self, addr: int, data: Any) -> Generator[Any, Any, Any]:
        self._track(addr, len(data), True)
        return self._inner.write_bytes(addr, data)

    def write_array(self, addr: int, values: Any) -> Generator[Any, Any, Any]:
        self._track(addr, np.asarray(values).nbytes, True)
        return self._inner.write_array(addr, values)

    def store_array(self, addr: int, values: Any) -> Generator[Any, Any, Any]:
        self._track(addr, np.asarray(values).nbytes, True)
        return self._inner.store_array(addr, values)

    def write_f64(self, addr: int, value: float) -> Generator[Any, Any, Any]:
        self._track(addr, 8, True)
        return self._inner.write_f64(addr, value)

    def write_i64(self, addr: int, value: int) -> Generator[Any, Any, Any]:
        self._track(addr, 8, True)
        return self._inner.write_i64(addr, value)

    # -- synchronisation ------------------------------------------------

    def atomic_update(
        self, addr: int, nbytes: int, fn: Callable[[np.ndarray], Any]
    ) -> Generator[Any, Any, Any]:
        """Wrap the mutator so the release/acquire edge is taken while
        the page's entry lock is held — the only point where the
        detector's edge order provably matches execution order."""
        detector = self._detector
        pid = self._pid
        detector.register_sync_range(addr, nbytes)

        def ordered(view: np.ndarray) -> Any:
            detector.on_acquire(pid, addr)
            try:
                return fn(view)
            finally:
                detector.on_release(pid, addr)

        return self._inner.atomic_update(addr, nbytes, ordered)
